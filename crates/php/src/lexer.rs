//! Hand-written PHP lexer.
//!
//! Handles the mixed HTML/PHP structure of web application source files:
//! text outside `<?php ... ?>` regions becomes [`TokenKind::InlineHtml`],
//! `<?=` opens an echo region, and within PHP mode the lexer understands
//! single-quoted strings, double-quoted strings *with interpolation*
//! (decomposed into [`StrPart`]s so taint can flow through string
//! construction), heredoc/nowdoc, comments, and the full operator set used
//! by the parser.

use crate::error::{ParseError, ParseResult};
use crate::intern::Symbol;
use crate::span::Span;
use crate::token::{IndexKey, StrPart, Token, TokenKind};

/// Tokenizes a full PHP source file (which may contain inline HTML).
///
/// # Errors
///
/// Returns a [`ParseError`] for unterminated strings/comments/heredocs and
/// characters that cannot start any token.
///
/// # Examples
///
/// ```
/// use wap_php::lexer::tokenize;
/// let tokens = tokenize("<?php echo $x; ?>")?;
/// assert!(tokens.len() >= 3);
/// # Ok::<(), wap_php::ParseError>(())
/// ```
pub fn tokenize(src: &str) -> ParseResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> ParseResult<Vec<Token>> {
        self.lex_html()?;
        let end = self.src.len() as u32;
        self.tokens
            .push(Token::new(TokenKind::Eof, Span::new(end, end, self.line)));
        Ok(self.tokens)
    }

    // ---- low-level helpers ----

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos.min(self.bytes.len())..].starts_with(s.as_bytes())
    }

    /// Case-insensitive prefix check (for `<?PHP` and friends).
    fn starts_with_ci(&self, s: &str) -> bool {
        let rest = &self.bytes[self.pos.min(self.bytes.len())..];
        rest.len() >= s.len()
            && rest
                .iter()
                .zip(s.as_bytes())
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token::new(
            kind,
            Span::new(start as u32, self.pos as u32, line),
        ));
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, Span::new(self.pos as u32, self.pos as u32, self.line))
    }

    // ---- HTML mode ----

    fn lex_html(&mut self) -> ParseResult<()> {
        loop {
            let start = self.pos;
            let line = self.line;
            while self.pos < self.bytes.len() {
                if self.starts_with_ci("<?php") || self.starts_with("<?=") {
                    break;
                }
                self.bump();
            }
            if self.pos > start {
                let text = self.src[start..self.pos].to_string();
                self.push(TokenKind::InlineHtml(text), start, line);
            }
            if self.pos >= self.bytes.len() {
                return Ok(());
            }
            // at an opening tag
            let tag_start = self.pos;
            let tag_line = self.line;
            if self.starts_with("<?=") {
                self.advance(3);
                self.push(TokenKind::Echo, tag_start, tag_line);
            } else {
                self.advance(5); // <?php
            }
            self.lex_php()?;
            if self.pos >= self.bytes.len() {
                return Ok(());
            }
        }
    }

    // ---- PHP mode ----

    /// Lexes PHP tokens until `?>` or end of input.
    fn lex_php(&mut self) -> ParseResult<()> {
        loop {
            self.skip_trivia()?;
            if self.pos >= self.bytes.len() {
                return Ok(());
            }
            if self.starts_with("?>") {
                // close tag implies a statement terminator in PHP — but only
                // when one is actually needed (after an unterminated
                // expression statement)
                let start = self.pos;
                let line = self.line;
                self.advance(2);
                // swallow one newline directly after ?>, as PHP does
                if self.peek() == Some(b'\n') {
                    self.bump();
                }
                let needs_semi = !matches!(
                    self.tokens.last().map(|t| &t.kind),
                    None | Some(
                        TokenKind::Semi
                            | TokenKind::LBrace
                            | TokenKind::RBrace
                            | TokenKind::Colon
                            | TokenKind::InlineHtml(_)
                    )
                );
                if needs_semi {
                    self.push(TokenKind::Semi, start, line);
                }
                return Ok(());
            }
            self.lex_token()?;
        }
    }

    fn skip_trivia(&mut self) -> ParseResult<()> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => self.skip_line_comment(),
                Some(b'#') => self.skip_line_comment(),
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    self.advance(2);
                    loop {
                        if self.pos >= self.bytes.len() {
                            return Err(self.err("unterminated block comment"));
                        }
                        if self.starts_with("*/") {
                            self.advance(2);
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn skip_line_comment(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' || self.starts_with("?>") {
                break;
            }
            self.bump();
        }
    }

    fn lex_token(&mut self) -> ParseResult<()> {
        let start = self.pos;
        let line = self.line;
        let b = self.peek().expect("lex_token called at eof");
        match b {
            b'$' => {
                self.bump();
                let name = self.scan_ident_sym();
                if name.is_empty() {
                    return Err(self.err("expected variable name after `$`"));
                }
                self.push(TokenKind::Variable(name), start, line);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let text = self.scan_ident_slice();
                let kind = TokenKind::keyword_bytes(text.as_bytes())
                    .unwrap_or_else(|| TokenKind::Ident(Symbol::intern(text)));
                self.push(kind, start, line);
            }
            b'0'..=b'9' => {
                let kind = self.scan_number()?;
                self.push(kind, start, line);
            }
            b'\'' => {
                let s = self.scan_single_quoted()?;
                self.push(TokenKind::SingleStr(s), start, line);
            }
            b'"' => {
                let parts = self.scan_double_quoted()?;
                self.push(TokenKind::TemplateStr(parts), start, line);
            }
            b'<' if self.starts_with("<<<") => {
                let parts = self.scan_heredoc()?;
                self.push(TokenKind::TemplateStr(parts), start, line);
            }
            b'`' => {
                self.bump(); // opening backtick
                let parts = self.scan_interpolated(
                    |lx| lx.peek() == Some(b'`'),
                    "unterminated shell-exec string",
                )?;
                self.bump(); // closing backtick
                self.push(TokenKind::ShellStr(parts), start, line);
            }
            _ => {
                let kind = self.scan_operator()?;
                self.push(kind, start, line);
            }
        }
        Ok(())
    }

    /// Scans an identifier and returns the source slice — no allocation.
    /// Identifier bytes never include `\n`, so no line tracking is needed.
    fn scan_ident_slice(&mut self) -> &'s str {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        &self.src[start..self.pos]
    }

    /// Scans an identifier straight into the interner: repeated names cost
    /// one hash lookup and zero allocations.
    fn scan_ident_sym(&mut self) -> Symbol {
        let text = self.scan_ident_slice();
        if text.is_empty() {
            Symbol::empty()
        } else {
            Symbol::intern(text)
        }
    }

    fn scan_ident_text(&mut self) -> String {
        self.scan_ident_slice().to_string()
    }

    fn scan_number(&mut self) -> ParseResult<TokenKind> {
        let start = self.pos;
        if self.starts_with("0x") || self.starts_with("0X") {
            self.advance(2);
            let hs = self.pos;
            while matches!(self.peek(), Some(b) if b.is_ascii_hexdigit()) {
                self.bump();
            }
            let v = i64::from_str_radix(&self.src[hs..self.pos], 16)
                .map_err(|_| self.err("invalid hex literal"))?;
            return Ok(TokenKind::Int(v));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(b'0'..=b'9')) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E'))
            && matches!(self.peek_at(1), Some(b'0'..=b'9' | b'+' | b'-'))
        {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| self.err("invalid float literal"))
        } else {
            // overflowing integers degrade to float, like PHP
            match text.parse::<i64>() {
                Ok(v) => Ok(TokenKind::Int(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(TokenKind::Float)
                    .map_err(|_| self.err("invalid integer literal")),
            }
        }
    }

    fn scan_single_quoted(&mut self) -> ParseResult<String> {
        self.bump(); // opening '
        // Fast path: no escapes before the closing quote — one bulk copy of
        // the source slice instead of a char-at-a-time rebuild.
        let start = self.pos;
        let mut p = self.pos;
        while p < self.bytes.len() {
            match self.bytes[p] {
                b'\'' => {
                    let out = self.src[start..p].to_string();
                    self.line += self.bytes[start..p].iter().filter(|&&b| b == b'\n').count() as u32;
                    self.pos = p + 1; // past the closing quote
                    return Ok(out);
                }
                b'\\' => break,
                _ => p += 1,
            }
        }
        if p >= self.bytes.len() {
            return Err(self.err("unterminated single-quoted string"));
        }
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated single-quoted string")),
                Some(b'\'') => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.bump();
                    match self.bump() {
                        Some(b'\'') => out.push('\''),
                        Some(b'\\') => out.push('\\'),
                        Some(other) => {
                            // PHP keeps unknown escapes literally
                            out.push('\\');
                            out.push(other as char);
                        }
                        None => return Err(self.err("unterminated single-quoted string")),
                    }
                }
                Some(b) if b.is_ascii() => {
                    self.bump();
                    out.push(b as char);
                }
                Some(_) => {
                    // copy a full UTF-8 scalar
                    match self.src.get(self.pos..).and_then(|r| r.chars().next()) {
                        Some(ch) => {
                            for _ in 0..ch.len_utf8() {
                                self.bump();
                            }
                            out.push(ch);
                        }
                        None => {
                            let b = self.bump().expect("in bounds");
                            out.push(b as char);
                        }
                    }
                }
            }
        }
    }

    fn scan_double_quoted(&mut self) -> ParseResult<Vec<StrPart>> {
        self.bump(); // opening "
        self.scan_interpolated(
            |lx| lx.peek() == Some(b'"'),
            "unterminated double-quoted string",
        )
        .inspect(|_| {
            self.bump(); // closing "
        })
    }

    /// Scans interpolated string content until `is_end` returns true.
    /// Does not consume the terminator.
    fn scan_interpolated(
        &mut self,
        is_end: impl Fn(&Self) -> bool,
        unterminated: &str,
    ) -> ParseResult<Vec<StrPart>> {
        let mut parts: Vec<StrPart> = Vec::new();
        let mut lit = String::new();
        macro_rules! flush {
            () => {
                if !lit.is_empty() {
                    parts.push(StrPart::Lit(std::mem::take(&mut lit)));
                }
            };
        }
        loop {
            if is_end(self) {
                flush!();
                if parts.is_empty() {
                    parts.push(StrPart::Lit(String::new()));
                }
                return Ok(parts);
            }
            if self.pos >= self.bytes.len() {
                return Err(self.err(unterminated));
            }
            let b = self.peek().expect("checked above");
            match b {
                b'\\' => {
                    self.bump();
                    match self.bump() {
                        Some(b'n') => lit.push('\n'),
                        Some(b't') => lit.push('\t'),
                        Some(b'r') => lit.push('\r'),
                        Some(b'"') => lit.push('"'),
                        Some(b'\\') => lit.push('\\'),
                        Some(b'$') => lit.push('$'),
                        Some(b'0') => lit.push('\0'),
                        Some(other) => {
                            lit.push('\\');
                            lit.push(other as char);
                        }
                        None => return Err(self.err(unterminated)),
                    }
                }
                b'$' if matches!(self.peek_at(1), Some(c) if c.is_ascii_alphabetic() || c == b'_') =>
                {
                    self.bump();
                    let name = self.scan_ident_sym();
                    flush!();
                    parts.push(self.scan_simple_interp_suffix(name)?);
                }
                b'{' if self.peek_at(1) == Some(b'$') => {
                    self.advance(2);
                    let name = self.scan_ident_sym();
                    if name.is_empty() {
                        return Err(self.err("expected variable in `{$...}` interpolation"));
                    }
                    flush!();
                    let part = self.scan_braced_interp_suffix(name)?;
                    if self.bump() != Some(b'}') {
                        return Err(self.err("expected `}` to close interpolation"));
                    }
                    parts.push(part);
                }
                _ => {
                    // copy a full UTF-8 scalar when aligned; fall back to a
                    // byte if an escape left us mid-character
                    match self.src.get(self.pos..).and_then(|r| r.chars().next()) {
                        Some(ch) => {
                            for _ in 0..ch.len_utf8() {
                                self.bump();
                            }
                            lit.push(ch);
                        }
                        None => {
                            let b = self.bump().expect("in bounds");
                            lit.push(b as char);
                        }
                    }
                }
            }
        }
    }

    /// After `$name` inside a string: optional `[key]` or `->prop`.
    fn scan_simple_interp_suffix(&mut self, name: Symbol) -> ParseResult<StrPart> {
        if self.peek() == Some(b'[') {
            self.bump();
            let key = match self.peek() {
                Some(b'$') => {
                    self.bump();
                    IndexKey::Var(self.scan_ident_sym())
                }
                Some(b'0'..=b'9') => {
                    let s = self.pos;
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.bump();
                    }
                    IndexKey::Int(
                        self.src[s..self.pos]
                            .parse()
                            .map_err(|_| self.err("bad index"))?,
                    )
                }
                Some(b'\'') => {
                    let s = self.scan_single_quoted()?;
                    IndexKey::Str(s)
                }
                _ => IndexKey::Str(self.scan_ident_text()),
            };
            if self.bump() != Some(b']') {
                return Err(self.err("expected `]` in string interpolation"));
            }
            Ok(StrPart::Index(name, key))
        } else if self.starts_with("->")
            && matches!(self.peek_at(2), Some(c) if c.is_ascii_alphabetic() || c == b'_')
        {
            self.advance(2);
            let prop = self.scan_ident_sym();
            Ok(StrPart::Prop(name, prop))
        } else {
            Ok(StrPart::Var(name))
        }
    }

    /// After `{$name` inside a string: optional `['key']`, `[num]`, `[$v]`,
    /// or `->prop`, then the caller consumes the closing `}`.
    fn scan_braced_interp_suffix(&mut self, name: Symbol) -> ParseResult<StrPart> {
        if self.peek() == Some(b'[') {
            self.bump();
            let key = match self.peek() {
                Some(b'\'') => IndexKey::Str(self.scan_single_quoted()?),
                Some(b'"') => {
                    let parts = self.scan_double_quoted()?;
                    let mut s = String::new();
                    for p in parts {
                        if let StrPart::Lit(t) = p {
                            s.push_str(&t);
                        }
                    }
                    IndexKey::Str(s)
                }
                Some(b'$') => {
                    self.bump();
                    IndexKey::Var(self.scan_ident_sym())
                }
                Some(b'0'..=b'9') => {
                    let s = self.pos;
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.bump();
                    }
                    IndexKey::Int(
                        self.src[s..self.pos]
                            .parse()
                            .map_err(|_| self.err("bad index"))?,
                    )
                }
                _ => IndexKey::Str(self.scan_ident_text()),
            };
            if self.bump() != Some(b']') {
                return Err(self.err("expected `]` in `{$...}` interpolation"));
            }
            Ok(StrPart::Index(name, key))
        } else if self.starts_with("->") {
            self.advance(2);
            let prop = self.scan_ident_sym();
            Ok(StrPart::Prop(name, prop))
        } else {
            Ok(StrPart::Var(name))
        }
    }

    fn scan_heredoc(&mut self) -> ParseResult<Vec<StrPart>> {
        self.advance(3); // <<<
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.bump();
        }
        let nowdoc = self.peek() == Some(b'\'');
        let quoted = nowdoc || self.peek() == Some(b'"');
        if quoted {
            self.bump();
        }
        let label = self.scan_ident_text();
        if label.is_empty() {
            return Err(self.err("expected heredoc label"));
        }
        if quoted {
            self.bump(); // closing quote
        }
        if self.bump() != Some(b'\n') {
            // allow \r\n
            if self.peek() == Some(b'\n') {
                self.bump();
            } else {
                return Err(self.err("expected newline after heredoc label"));
            }
        }
        // find terminator line: optional whitespace + label + optional ; at line start
        let body_start = self.pos;
        let mut body_end = None;
        let mut search = self.pos;
        let bytes = self.bytes;
        while search < bytes.len() {
            // `search` is at a line start
            let mut p = search;
            while p < bytes.len() && matches!(bytes[p], b' ' | b'\t') {
                p += 1;
            }
            if bytes[p..].starts_with(label.as_bytes()) {
                let after = p + label.len();
                let term_ok = matches!(
                    bytes.get(after),
                    None | Some(b';' | b'\n' | b'\r' | b',' | b')')
                );
                if term_ok {
                    body_end = Some((search, p + label.len()));
                    break;
                }
            }
            // advance to the next line
            while search < bytes.len() && bytes[search] != b'\n' {
                search += 1;
            }
            search += 1;
        }
        let (body_end, label_end) = body_end.ok_or_else(|| self.err("unterminated heredoc"))?;
        let body = &self.src[body_start..body_end];
        // drop the trailing newline that belongs to the terminator line
        let body = body.strip_suffix('\n').unwrap_or(body);
        let body = body.strip_suffix('\r').unwrap_or(body);
        let parts = if nowdoc {
            vec![StrPart::Lit(body.to_string())]
        } else {
            let mut sub = Lexer::new(body);
            sub.scan_interpolated(|lx| lx.pos >= lx.bytes.len(), "unterminated heredoc")?
        };
        // advance the real cursor past the body and the terminator label
        while self.pos < label_end {
            self.bump();
        }
        Ok(parts)
    }

    fn scan_operator(&mut self) -> ParseResult<TokenKind> {
        macro_rules! op {
            ($len:expr, $kind:expr) => {{
                self.advance($len);
                return Ok($kind);
            }};
        }
        // three-byte operators first
        if self.starts_with("===") {
            op!(3, TokenKind::Identical);
        }
        if self.starts_with("!==") {
            op!(3, TokenKind::NotIdentical);
        }
        if self.starts_with("<=>") {
            op!(3, TokenKind::Spaceship);
        }
        if self.starts_with("**=") {
            op!(3, TokenKind::StarAssign);
        }
        if self.starts_with("??=") {
            op!(3, TokenKind::CoalesceAssign);
        }
        if self.starts_with("...") {
            op!(3, TokenKind::Ellipsis);
        }
        if self.starts_with("==") {
            op!(2, TokenKind::Eq);
        }
        if self.starts_with("!=") || self.starts_with("<>") {
            op!(2, TokenKind::NotEq);
        }
        if self.starts_with("<=") {
            op!(2, TokenKind::Le);
        }
        if self.starts_with(">=") {
            op!(2, TokenKind::Ge);
        }
        if self.starts_with("&&") {
            op!(2, TokenKind::AndAnd);
        }
        if self.starts_with("||") {
            op!(2, TokenKind::OrOr);
        }
        if self.starts_with("++") {
            op!(2, TokenKind::Inc);
        }
        if self.starts_with("--") {
            op!(2, TokenKind::Dec);
        }
        if self.starts_with("->") {
            op!(2, TokenKind::Arrow);
        }
        if self.starts_with("=>") {
            op!(2, TokenKind::DoubleArrow);
        }
        if self.starts_with("::") {
            op!(2, TokenKind::DoubleColon);
        }
        if self.starts_with("+=") {
            op!(2, TokenKind::PlusAssign);
        }
        if self.starts_with("-=") {
            op!(2, TokenKind::MinusAssign);
        }
        if self.starts_with("*=") {
            op!(2, TokenKind::StarAssign);
        }
        if self.starts_with("/=") {
            op!(2, TokenKind::SlashAssign);
        }
        if self.starts_with(".=") {
            op!(2, TokenKind::DotAssign);
        }
        if self.starts_with("%=") {
            op!(2, TokenKind::PercentAssign);
        }
        if self.starts_with("??") {
            op!(2, TokenKind::Coalesce);
        }
        if self.starts_with("<<") && !self.starts_with("<<<") {
            op!(2, TokenKind::Shl);
        }
        if self.starts_with(">>") {
            op!(2, TokenKind::Shr);
        }
        if self.starts_with("**") {
            op!(2, TokenKind::Star);
        }
        let b = self.peek().expect("scan_operator at eof");
        let kind = match b {
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'.' => TokenKind::Dot,
            b'=' => TokenKind::Assign,
            b'<' => TokenKind::Lt,
            b'>' => TokenKind::Gt,
            b'!' => TokenKind::Bang,
            b'?' => TokenKind::Question,
            b':' => TokenKind::Colon,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b'@' => TokenKind::At,
            b'&' => TokenKind::Amp,
            b'|' => TokenKind::Pipe,
            b'^' => TokenKind::Caret,
            b'~' => TokenKind::Tilde,
            b'\\' => TokenKind::Backslash,
            other => {
                return Err(self.err(format!(
                    "unexpected character `{}`",
                    (other as char).escape_default()
                )))
            }
        };
        self.bump();
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_simple_statement() {
        let ks = kinds("<?php $x = 1; ?>");
        assert_eq!(
            ks,
            vec![
                TokenKind::Variable("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_html_around_php() {
        let ks = kinds("<html><?php echo 1; ?></html>");
        assert!(matches!(ks[0], TokenKind::InlineHtml(ref h) if h == "<html>"));
        assert!(matches!(ks.last(), Some(TokenKind::Eof)));
        assert!(ks
            .iter()
            .any(|k| matches!(k, TokenKind::InlineHtml(h) if h == "</html>")));
    }

    #[test]
    fn lex_short_echo_tag() {
        let ks = kinds("<?= $_GET['id'] ?>");
        assert_eq!(ks[0], TokenKind::Echo);
        assert_eq!(ks[1], TokenKind::Variable("_GET".into()));
    }

    #[test]
    fn lex_single_quoted_escapes() {
        let ks = kinds(r#"<?php $s = 'it\'s \\ ok \n';"#);
        assert!(ks.contains(&TokenKind::SingleStr("it's \\ ok \\n".into())));
    }

    #[test]
    fn lex_double_quoted_interpolation() {
        let ks = kinds(r#"<?php $q = "SELECT * FROM t WHERE id = $id";"#);
        let parts = ks
            .iter()
            .find_map(|k| match k {
                TokenKind::TemplateStr(p) => Some(p.clone()),
                _ => None,
            })
            .expect("template string");
        assert_eq!(
            parts,
            vec![
                StrPart::Lit("SELECT * FROM t WHERE id = ".into()),
                StrPart::Var("id".into()),
            ]
        );
    }

    #[test]
    fn lex_interpolated_array_and_prop() {
        let ks = kinds(r#"<?php $q = "a $_GET[id] b {$row['name']} c $u->mail";"#);
        let parts = ks
            .iter()
            .find_map(|k| match k {
                TokenKind::TemplateStr(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap();
        assert!(parts.contains(&StrPart::Index("_GET".into(), IndexKey::Str("id".into()))));
        assert!(parts.contains(&StrPart::Index("row".into(), IndexKey::Str("name".into()))));
        assert!(parts.contains(&StrPart::Prop("u".into(), "mail".into())));
    }

    #[test]
    fn lex_escaped_dollar_is_literal() {
        let ks = kinds(r#"<?php $s = "price \$5";"#);
        let parts = ks
            .iter()
            .find_map(|k| match k {
                TokenKind::TemplateStr(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(parts, vec![StrPart::Lit("price $5".into())]);
    }

    #[test]
    fn lex_heredoc_with_interpolation() {
        let src = "<?php $q = <<<SQL\nSELECT * FROM t WHERE id = $id\nSQL;\n";
        let ks = kinds(src);
        let parts = ks
            .iter()
            .find_map(|k| match k {
                TokenKind::TemplateStr(p) => Some(p.clone()),
                _ => None,
            })
            .expect("heredoc lexed");
        assert!(parts.contains(&StrPart::Var("id".into())));
        // statement terminator still present
        assert!(ks.contains(&TokenKind::Semi));
    }

    #[test]
    fn lex_nowdoc_is_literal() {
        let src = "<?php $q = <<<'TXT'\nno $interp here\nTXT;\n";
        let ks = kinds(src);
        let parts = ks
            .iter()
            .find_map(|k| match k {
                TokenKind::TemplateStr(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(parts, vec![StrPart::Lit("no $interp here".into())]);
    }

    #[test]
    fn lex_comments_are_skipped() {
        let ks = kinds("<?php // line\n# hash\n/* block\nstill */ $x;");
        assert_eq!(ks[0], TokenKind::Variable("x".into()));
    }

    #[test]
    fn lex_numbers() {
        let ks = kinds("<?php 42; 3.5; 1e3; 0x1F;");
        assert!(ks.contains(&TokenKind::Int(42)));
        assert!(ks.contains(&TokenKind::Float(3.5)));
        assert!(ks.contains(&TokenKind::Float(1000.0)));
        assert!(ks.contains(&TokenKind::Int(31)));
    }

    #[test]
    fn lex_operators() {
        let ks = kinds("<?php $a === $b; $c .= $d; $e ?? $f; $g <=> $h;");
        assert!(ks.contains(&TokenKind::Identical));
        assert!(ks.contains(&TokenKind::DotAssign));
        assert!(ks.contains(&TokenKind::Coalesce));
        assert!(ks.contains(&TokenKind::Spaceship));
    }

    #[test]
    fn lex_keywords_case_insensitive() {
        let ks = kinds("<?php IF (TRUE) ECHO 1;");
        assert_eq!(ks[0], TokenKind::If);
        assert!(ks.contains(&TokenKind::True));
        assert!(ks.contains(&TokenKind::Echo));
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(tokenize("<?php $s = 'oops").is_err());
        assert!(tokenize("<?php $s = \"oops").is_err());
        assert!(tokenize("<?php /* oops").is_err());
    }

    #[test]
    fn lex_spans_point_into_source() {
        let src = "<?php $abc = 7;";
        let toks = tokenize(src).unwrap();
        let var = &toks[0];
        assert_eq!(var.span.slice(src), "$abc");
    }

    #[test]
    fn lex_line_numbers() {
        let src = "<?php\n$a;\n$b;\n";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[0].span.line(), 2);
        assert_eq!(toks[2].span.line(), 3);
    }

    #[test]
    fn lex_close_tag_newline_swallowed() {
        // PHP swallows exactly one newline after `?>`, so no empty HTML chunk.
        let ks = kinds("<?php $a; ?>\n<?php $b;");
        assert!(!ks.iter().any(|k| matches!(k, TokenKind::InlineHtml(_))));
    }

    #[test]
    fn lex_utf8_in_strings() {
        let ks = kinds("<?php $s = \"olá mundo\";");
        let parts = ks
            .iter()
            .find_map(|k| match k {
                TokenKind::TemplateStr(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(parts, vec![StrPart::Lit("olá mundo".into())]);
    }
}
