//! Global string interning for identifiers.
//!
//! Every identifier-like string the front end produces — variable names,
//! function names, class/method/property names, taint sources — is interned
//! into a process-wide table and handled as a [`Symbol`]: a `Copy` 4-byte
//! handle. Equality and hashing are a single `u32` compare, which is what
//! makes the hot taint-propagation loops cheap; cloning an AST node or a
//! taint state no longer copies string data.
//!
//! ## Determinism contract
//!
//! Symbol *ids* depend on interleaving when files are parsed in parallel, so
//! they must never influence output bytes or cache bytes. Two properties
//! enforce that here:
//!
//! * [`Ord`] compares the resolved **strings**, not the ids (with an
//!   id-equality fast path — the global table makes id equality equivalent
//!   to string equality). Ordered containers of symbols therefore iterate
//!   in the same order as the string-based containers they replaced.
//! * [`std::fmt::Debug`] prints exactly like `String`'s `Debug`, so debug
//!   formatting of ASTs is byte-identical to the pre-interning
//!   representation.
//!
//! Cache codecs must keep serializing strings and re-intern on load.
//!
//! ## Concurrency
//!
//! Interning (the write path) runs under a lock; **resolving** a symbol back
//! to its string (`as_str`, `lower`) is lock-free. Resolved entries live in
//! an append-only two-level table: a fixed array of chunk pointers, each
//! chunk holding [`CHUNK_LEN`] write-once slots. A slot is fully written —
//! and its chunk pointer Release-published — before the symbol id ever
//! escapes `intern`, so any thread that legitimately holds a `Symbol` id
//! also has a happens-before edge to that slot's contents (via the intern
//! lock, or via whatever synchronization carried the `Symbol` across
//! threads). Resolution is therefore a single Acquire pointer load plus an
//! indexed read — no lock, which matters because the taint loops resolve
//! symbols millions of times per scan.
//!
//! ## Memory
//!
//! The table is append-only and process-lifetime: strings are copied once
//! into a [`StrArena`](crate::arena::StrArena) and never freed. The
//! vocabulary of identifiers in scanned code is small and highly repetitive,
//! so a resident scanner service reuses entries across scans instead of
//! re-allocating them.

use crate::arena::StrArena;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Mutex, OnceLock};

/// An interned string: a 4-byte `Copy` handle with O(1) equality/hash.
///
/// # Examples
///
/// ```
/// use wap_php::Symbol;
/// let a = Symbol::intern("mysql_query");
/// let b = Symbol::intern("mysql_query");
/// assert_eq!(a, b);               // u32 compare
/// assert_eq!(a.as_str(), "mysql_query");
/// assert_eq!(a, "mysql_query");   // convenience compare against &str
/// assert_eq!(Symbol::intern("FOO").lower().as_str(), "foo");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

/// One resolved interner entry: the string plus its precomputed
/// ASCII-lowercase symbol id (avoids the `to_ascii_lowercase` allocation in
/// every case-insensitive lookup).
#[derive(Clone, Copy)]
struct Entry {
    text: &'static str,
    lower: u32,
}

const CHUNK_BITS: u32 = 12;
const CHUNK_LEN: usize = 1 << CHUNK_BITS;
const MAX_CHUNKS: usize = 1024; // 4 Mi symbols; far beyond any real scan

struct Chunk {
    slots: [UnsafeCell<MaybeUninit<Entry>>; CHUNK_LEN],
}

// SAFETY: slots are write-once, written strictly before their id escapes
// the intern lock; see the module-level concurrency notes.
unsafe impl Sync for Chunk {}

#[allow(clippy::declare_interior_mutable_const)]
const NULL_CHUNK: AtomicPtr<Chunk> = AtomicPtr::new(std::ptr::null_mut());
static CHUNKS: [AtomicPtr<Chunk>; MAX_CHUNKS] = [NULL_CHUNK; MAX_CHUNKS];

/// Lock-free resolve: id -> entry. Callable only with ids minted by
/// `intern` (the only way user code obtains a `Symbol`).
#[inline]
fn entry(id: u32) -> Entry {
    let chunk = CHUNKS[(id >> CHUNK_BITS) as usize].load(Ordering::Acquire);
    debug_assert!(!chunk.is_null(), "Symbol id {id} was never interned");
    // SAFETY: `intern` fully wrote this slot and Release-published its
    // chunk before returning the id, and the id reached this thread
    // through some synchronization (the intern lock or the mechanism that
    // transferred the `Symbol` across threads), so the write
    // happens-before this read.
    unsafe { (*(*chunk).slots[id as usize & (CHUNK_LEN - 1)].get()).assume_init() }
}

/// Write-once slot publication. Must be called under the intern lock (it
/// is the only writer), with ids assigned densely from 0.
fn publish(id: u32, e: Entry) {
    let chunk_idx = (id >> CHUNK_BITS) as usize;
    assert!(
        chunk_idx < MAX_CHUNKS,
        "interner capacity exceeded ({} symbols)",
        MAX_CHUNKS * CHUNK_LEN
    );
    let mut chunk = CHUNKS[chunk_idx].load(Ordering::Acquire);
    if chunk.is_null() {
        // SAFETY: every slot is `MaybeUninit`, so an uninitialized chunk
        // is a valid value of the type.
        let fresh: Box<Chunk> = unsafe { Box::new(MaybeUninit::uninit().assume_init()) };
        chunk = Box::into_raw(fresh);
        CHUNKS[chunk_idx].store(chunk, Ordering::Release);
    }
    // SAFETY: single writer (intern lock held), and no reader touches slot
    // `id` until `intern` returns the id.
    unsafe { (*chunk).slots[id as usize & (CHUNK_LEN - 1)].get().write(MaybeUninit::new(e)) }
}

struct Inner {
    map: HashMap<&'static str, u32>,
    len: u32,
    arena: StrArena,
}

impl Inner {
    fn new() -> Self {
        let mut inner = Inner {
            map: HashMap::with_capacity(1024),
            len: 0,
            arena: StrArena::new(),
        };
        // Symbol(0) is the empty string (and `Symbol::default()`).
        inner.intern("");
        inner
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        // Intern the lowercase form first: slots are write-once, so the
        // new entry must embed its lowered id up front. (This orders ids
        // differently from insertion order of mixed-case strings, which is
        // fine — ids never influence output or cache bytes.)
        let lower = if s.bytes().any(|b| b.is_ascii_uppercase()) {
            Some(self.intern(&s.to_ascii_lowercase()))
        } else {
            None
        };
        // SAFETY: the arena lives inside a process-lifetime static and its
        // chunk buffers are never moved or freed, so extending the borrow
        // to 'static is sound.
        let stable: &'static str = unsafe { std::mem::transmute::<&str, &'static str>(self.arena.alloc(s)) };
        let id = self.len;
        self.len += 1;
        publish(
            id,
            Entry {
                text: stable,
                lower: lower.unwrap_or(id),
            },
        );
        self.map.insert(stable, id);
        id
    }
}

fn table() -> &'static Mutex<Inner> {
    static TABLE: OnceLock<Mutex<Inner>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Inner::new()))
}

impl Symbol {
    /// Interns `s`, returning the canonical symbol for it.
    pub fn intern(s: &str) -> Symbol {
        let mut inner = table().lock().unwrap_or_else(|e| e.into_inner());
        Symbol(inner.intern(s))
    }

    /// The empty-string symbol.
    pub fn empty() -> Symbol {
        Symbol(0)
    }

    /// Resolves the symbol to its string. Lock-free.
    #[inline]
    pub fn as_str(self) -> &'static str {
        entry(self.0).text
    }

    /// The ASCII-lowercased version of this symbol (precomputed at intern
    /// time; no allocation). Lock-free.
    #[inline]
    pub fn lower(self) -> Symbol {
        Symbol(entry(self.0).lower)
    }

    /// Whether the symbol resolves to the empty string.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw table index. Only meaningful within this process; never
    /// persist it.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl Default for Symbol {
    fn default() -> Self {
        Symbol::empty()
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("foo_bar");
        let b = Symbol::intern("foo_bar");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "foo_bar");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("alpha"), Symbol::intern("beta"));
    }

    #[test]
    fn empty_symbol() {
        assert_eq!(Symbol::empty(), Symbol::intern(""));
        assert!(Symbol::default().is_empty());
        assert!(!Symbol::intern("x").is_empty());
    }

    #[test]
    fn ord_is_string_order_not_id_order() {
        // Intern in reverse lexicographic order so id order disagrees with
        // string order.
        let z = Symbol::intern("zzz_ord_test");
        let a = Symbol::intern("aaa_ord_test");
        assert!(a < z, "Ord must follow string content");
        let set: BTreeSet<Symbol> = [z, a].into_iter().collect();
        let in_order: Vec<&str> = set.iter().map(|s| s.as_str()).collect();
        assert_eq!(in_order, vec!["aaa_ord_test", "zzz_ord_test"]);
    }

    #[test]
    fn debug_matches_string_debug() {
        let s = Symbol::intern("with \"quotes\" and \\ backslash");
        let as_string = String::from("with \"quotes\" and \\ backslash");
        assert_eq!(format!("{s:?}"), format!("{as_string:?}"));
    }

    #[test]
    fn lower_is_precomputed() {
        assert_eq!(Symbol::intern("MyClass").lower(), Symbol::intern("myclass"));
        let already = Symbol::intern("lowercase");
        assert_eq!(already.lower(), already);
    }

    #[test]
    fn str_comparisons() {
        let s = Symbol::intern("echo");
        assert_eq!(s, "echo");
        assert_eq!("echo", s);
        assert_ne!(s, "print");
    }

    #[test]
    fn symbols_across_chunk_boundary_resolve() {
        // Force the table across at least one 4096-entry chunk boundary
        // and check every symbol still resolves to its own string.
        let syms: Vec<(String, Symbol)> = (0..(CHUNK_LEN + 64))
            .map(|i| {
                let name = format!("chunk_boundary_sym_{i}");
                let s = Symbol::intern(&name);
                (name, s)
            })
            .collect();
        for (name, s) in &syms {
            assert_eq!(s.as_str(), name);
            assert_eq!(s.lower(), *s);
        }
    }

    #[test]
    fn concurrent_intern_same_ids() {
        let names: Vec<String> = (0..200).map(|i| format!("conc_sym_{i}")).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let names = names.clone();
                std::thread::spawn(move || {
                    names.iter().map(|n| Symbol::intern(n)).collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "same strings must intern to same symbols");
        }
    }
}
