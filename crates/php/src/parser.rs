//! Recursive-descent parser for the PHP subset.
//!
//! Produces a [`Program`] from token streams created by the
//! [`lexer`](crate::lexer). Precedence follows PHP 7 (with `.` at the same
//! level as `+`/`-`), the keyword operators `and`/`or`/`xor` bind looser
//! than assignment, and the alternative block syntax (`if (...): ... endif;`)
//! used by template-heavy code is supported.

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::intern::Symbol;
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{IndexKey, StrPart, Token, TokenKind};

/// Parses a full PHP source file (possibly containing inline HTML).
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered; the parser does
/// not attempt recovery.
///
/// # Examples
///
/// ```
/// use wap_php::parse;
/// let program = parse("<?php $id = $_GET['id']; mysql_query(\"SELECT $id\");")?;
/// assert_eq!(program.stmts.len(), 2);
/// # Ok::<(), wap_php::ParseError>(())
/// ```
pub fn parse(src: &str) -> ParseResult<Program> {
    let tokens = tokenize(src)?;
    Parser::new(tokens).parse_program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Binds a token to its binary operator and precedence tier for
/// `parse_binary`. Tiers mirror PHP 7's table for the operators between
/// `??` and `instanceof` — `||` loosest (0), `* / %` tightest (9) — and
/// every tier here is left-associative.
fn binary_op(tok: &TokenKind) -> Option<(BinOp, u8)> {
    Some(match tok {
        TokenKind::OrOr => (BinOp::Or, 0),
        TokenKind::AndAnd => (BinOp::And, 1),
        TokenKind::Pipe => (BinOp::BitOr, 2),
        TokenKind::Caret => (BinOp::BitXor, 3),
        TokenKind::Amp => (BinOp::BitAnd, 4),
        TokenKind::Identical => (BinOp::Identical, 5),
        TokenKind::NotIdentical => (BinOp::NotIdentical, 5),
        TokenKind::Eq => (BinOp::Eq, 5),
        TokenKind::NotEq => (BinOp::NotEq, 5),
        TokenKind::Le => (BinOp::Le, 6),
        TokenKind::Ge => (BinOp::Ge, 6),
        TokenKind::Lt => (BinOp::Lt, 6),
        TokenKind::Gt => (BinOp::Gt, 6),
        TokenKind::Spaceship => (BinOp::Spaceship, 6),
        TokenKind::Shl => (BinOp::Shl, 7),
        TokenKind::Shr => (BinOp::Shr, 7),
        TokenKind::Plus => (BinOp::Add, 8),
        TokenKind::Minus => (BinOp::Sub, 8),
        TokenKind::Dot => (BinOp::Concat, 8),
        TokenKind::Star => (BinOp::Mul, 9),
        TokenKind::Slash => (BinOp::Div, 9),
        TokenKind::Percent => (BinOp::Mod, 9),
        _ => return None,
    })
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    // ---- cursor helpers ----

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        &self.tokens[(self.pos + off).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> ParseResult<Token> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        ParseError::new(
            format!("{what}, found {}", self.peek().describe()),
            self.span(),
        )
    }

    fn ident(&mut self) -> ParseResult<Symbol> {
        match self.peek().clone() {
            TokenKind::Ident(n) => {
                self.bump();
                Ok(n)
            }
            // contextual keywords usable as names (method/property names)
            TokenKind::ListKw => {
                self.bump();
                Ok("list".into())
            }
            TokenKind::ArrayKw => {
                self.bump();
                Ok("array".into())
            }
            TokenKind::Print => {
                self.bump();
                Ok("print".into())
            }
            TokenKind::Default => {
                self.bump();
                Ok("default".into())
            }
            TokenKind::Class => {
                self.bump();
                Ok("class".into())
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    // ---- program & statements ----

    fn parse_program(mut self) -> ParseResult<Program> {
        let mut stmts = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            stmts.push(self.parse_stmt()?);
        }
        Ok(Program { stmts })
    }

    fn parse_stmt(&mut self) -> ParseResult<Stmt> {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::InlineHtml(h) => {
                self.bump();
                StmtKind::InlineHtml(h)
            }
            TokenKind::Semi => {
                self.bump();
                StmtKind::Nop
            }
            TokenKind::LBrace => {
                self.bump();
                let body = self.parse_stmts_until(&TokenKind::RBrace)?;
                self.expect(&TokenKind::RBrace)?;
                StmtKind::Block(body)
            }
            TokenKind::If => return self.parse_if(),
            TokenKind::While => return self.parse_while(),
            TokenKind::Do => return self.parse_do_while(),
            TokenKind::For => return self.parse_for(),
            TokenKind::Foreach => return self.parse_foreach(),
            TokenKind::Switch => return self.parse_switch(),
            TokenKind::Function if matches!(self.peek_at(1), TokenKind::Ident(_)) => {
                let f = self.parse_function()?;
                StmtKind::Function(f)
            }
            TokenKind::Class => {
                let c = self.parse_class()?;
                StmtKind::Class(c)
            }
            TokenKind::Interface => {
                // parse and discard interface bodies: keep method names out
                // of the function table but accept the source
                self.bump();
                let _name = self.ident()?;
                if self.eat(&TokenKind::Extends) {
                    loop {
                        self.ident()?;
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::LBrace)?;
                let mut depth = 1usize;
                while depth > 0 {
                    match self.peek() {
                        TokenKind::LBrace => {
                            depth += 1;
                            self.bump();
                        }
                        TokenKind::RBrace => {
                            depth -= 1;
                            self.bump();
                        }
                        TokenKind::Eof => return Err(self.unexpected("unterminated interface")),
                        _ => {
                            self.bump();
                        }
                    }
                }
                StmtKind::Nop
            }
            TokenKind::Echo => {
                self.bump();
                let mut items = vec![self.parse_expr()?];
                while self.eat(&TokenKind::Comma) {
                    items.push(self.parse_expr()?);
                }
                self.end_stmt()?;
                StmtKind::Echo(items)
            }
            TokenKind::Break => {
                self.bump();
                let n = if let TokenKind::Int(v) = *self.peek() {
                    self.bump();
                    Some(v)
                } else {
                    None
                };
                self.end_stmt()?;
                StmtKind::Break(n)
            }
            TokenKind::Continue => {
                self.bump();
                let n = if let TokenKind::Int(v) = *self.peek() {
                    self.bump();
                    Some(v)
                } else {
                    None
                };
                self.end_stmt()?;
                StmtKind::Continue(n)
            }
            TokenKind::Return => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.end_stmt()?;
                StmtKind::Return(value)
            }
            TokenKind::Global => {
                self.bump();
                let mut names = Vec::new();
                loop {
                    match self.bump().kind {
                        TokenKind::Variable(n) => names.push(n),
                        _ => return Err(self.unexpected("expected variable in global")),
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.end_stmt()?;
                StmtKind::Global(names)
            }
            TokenKind::Static if matches!(self.peek_at(1), TokenKind::Variable(_)) => {
                self.bump();
                let mut vars = Vec::new();
                loop {
                    let name = match self.bump().kind {
                        TokenKind::Variable(n) => n,
                        _ => return Err(self.unexpected("expected variable in static")),
                    };
                    let default = if self.eat(&TokenKind::Assign) {
                        Some(self.parse_expr()?)
                    } else {
                        None
                    };
                    vars.push((name, default));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.end_stmt()?;
                StmtKind::StaticVars(vars)
            }
            k @ (TokenKind::Include
            | TokenKind::IncludeOnce
            | TokenKind::Require
            | TokenKind::RequireOnce) => {
                self.bump();
                let kind = match k {
                    TokenKind::Include => IncludeKind::Include,
                    TokenKind::IncludeOnce => IncludeKind::IncludeOnce,
                    TokenKind::Require => IncludeKind::Require,
                    _ => IncludeKind::RequireOnce,
                };
                let path = self.parse_expr()?;
                self.end_stmt()?;
                StmtKind::Include { kind, path }
            }
            TokenKind::Unset => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut targets = Vec::new();
                if !matches!(self.peek(), TokenKind::RParen) {
                    loop {
                        targets.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                self.end_stmt()?;
                StmtKind::Unset(targets)
            }
            TokenKind::Try => return self.parse_try(),
            TokenKind::Throw => {
                self.bump();
                let e = self.parse_expr()?;
                self.end_stmt()?;
                StmtKind::Throw(e)
            }
            TokenKind::Namespace => {
                // accept and ignore namespace declarations
                self.bump();
                while !matches!(
                    self.peek(),
                    TokenKind::Semi | TokenKind::LBrace | TokenKind::Eof
                ) {
                    self.bump();
                }
                if matches!(self.peek(), TokenKind::Semi) {
                    self.bump();
                }
                StmtKind::Nop
            }
            TokenKind::Use => {
                // accept and ignore use imports
                self.bump();
                while !matches!(self.peek(), TokenKind::Semi | TokenKind::Eof) {
                    self.bump();
                }
                self.eat(&TokenKind::Semi);
                StmtKind::Nop
            }
            TokenKind::Const => {
                // top-level const NAME = value;
                self.bump();
                let _name = self.ident()?;
                self.expect(&TokenKind::Assign)?;
                let value = self.parse_expr()?;
                self.end_stmt()?;
                StmtKind::Expr(value)
            }
            _ => {
                let e = self.parse_expr()?;
                self.end_stmt()?;
                StmtKind::Expr(e)
            }
        };
        let span = start.merge(self.prev_span());
        Ok(Stmt::new(kind, span))
    }

    /// Consumes the statement terminator: `;` (also synthesized by `?>`).
    fn end_stmt(&mut self) -> ParseResult<()> {
        if self.eat(&TokenKind::Semi) || matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("expected `;`"))
        }
    }

    fn parse_stmts_until(&mut self, end: &TokenKind) -> ParseResult<Vec<Stmt>> {
        let mut out = Vec::new();
        while self.peek() != end && !matches!(self.peek(), TokenKind::Eof) {
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    /// Parses either `{ ... }`, a single statement, or (when `alt_end` is
    /// given) the alternative syntax `: ... alt_end`.
    fn parse_body(&mut self, alt_ends: &[&str]) -> ParseResult<(Vec<Stmt>, AltEnd)> {
        if self.eat(&TokenKind::LBrace) {
            let body = self.parse_stmts_until(&TokenKind::RBrace)?;
            self.expect(&TokenKind::RBrace)?;
            return Ok((body, AltEnd::None));
        }
        if self.eat(&TokenKind::Colon) {
            let mut body = Vec::new();
            loop {
                match self.peek() {
                    TokenKind::Ident(n)
                        if alt_ends.iter().any(|e| n.as_str().eq_ignore_ascii_case(e)) =>
                    {
                        return Ok((body, AltEnd::Keyword(n.lower())));
                    }
                    TokenKind::Else | TokenKind::Elseif if alt_ends.contains(&"endif") => {
                        return Ok((body, AltEnd::ElseArm));
                    }
                    TokenKind::Eof => {
                        return Err(self.unexpected("unterminated alternative-syntax block"))
                    }
                    _ => body.push(self.parse_stmt()?),
                }
            }
        }
        Ok((vec![self.parse_stmt()?], AltEnd::None))
    }

    fn parse_if(&mut self) -> ParseResult<Stmt> {
        let start = self.span();
        self.expect(&TokenKind::If)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let (then_branch, alt) = self.parse_body(&["endif"])?;
        let mut elseifs = Vec::new();
        let mut else_branch = None;
        match alt {
            AltEnd::None => loop {
                if self.eat(&TokenKind::Elseif) {
                    self.expect(&TokenKind::LParen)?;
                    let c = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    let (b, _) = self.parse_body(&[])?;
                    elseifs.push((c, b));
                } else if matches!(self.peek(), TokenKind::Else)
                    && matches!(self.peek_at(1), TokenKind::If)
                {
                    self.bump();
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let c = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    let (b, _) = self.parse_body(&[])?;
                    elseifs.push((c, b));
                } else if self.eat(&TokenKind::Else) {
                    let (b, _) = self.parse_body(&[])?;
                    else_branch = Some(b);
                    break;
                } else {
                    break;
                }
            },
            AltEnd::Keyword(_) => {
                // `endif` already peeked in parse_body; consume it
                self.bump();
                self.end_stmt()?;
            }
            AltEnd::ElseArm => {
                // alternative-syntax else/elseif chain
                loop {
                    if self.eat(&TokenKind::Elseif) {
                        self.expect(&TokenKind::LParen)?;
                        let c = self.parse_expr()?;
                        self.expect(&TokenKind::RParen)?;
                        let (b, a) = self.parse_body(&["endif"])?;
                        elseifs.push((c, b));
                        match a {
                            AltEnd::ElseArm => continue,
                            AltEnd::Keyword(_) => {
                                self.bump();
                                self.end_stmt()?;
                                break;
                            }
                            AltEnd::None => break,
                        }
                    } else if self.eat(&TokenKind::Else) {
                        self.expect(&TokenKind::Colon)?;
                        let mut b = Vec::new();
                        while !matches!(self.peek(), TokenKind::Ident(n) if n.as_str().eq_ignore_ascii_case("endif"))
                        {
                            if matches!(self.peek(), TokenKind::Eof) {
                                return Err(self.unexpected("unterminated else block"));
                            }
                            b.push(self.parse_stmt()?);
                        }
                        self.bump(); // endif
                        self.end_stmt()?;
                        else_branch = Some(b);
                        break;
                    } else {
                        return Err(self.unexpected("expected else/elseif/endif"));
                    }
                }
            }
        }
        let span = start.merge(self.prev_span());
        Ok(Stmt::new(
            StmtKind::If {
                cond,
                then_branch,
                elseifs,
                else_branch,
            },
            span,
        ))
    }

    fn parse_while(&mut self) -> ParseResult<Stmt> {
        let start = self.span();
        self.expect(&TokenKind::While)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let (body, alt) = self.parse_body(&["endwhile"])?;
        if let AltEnd::Keyword(_) = alt {
            self.bump();
            self.end_stmt()?;
        }
        Ok(Stmt::new(
            StmtKind::While { cond, body },
            start.merge(self.prev_span()),
        ))
    }

    fn parse_do_while(&mut self) -> ParseResult<Stmt> {
        let start = self.span();
        self.expect(&TokenKind::Do)?;
        let (body, _) = self.parse_body(&[])?;
        self.expect(&TokenKind::While)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        self.end_stmt()?;
        Ok(Stmt::new(
            StmtKind::DoWhile { body, cond },
            start.merge(self.prev_span()),
        ))
    }

    fn parse_for(&mut self) -> ParseResult<Stmt> {
        let start = self.span();
        self.expect(&TokenKind::For)?;
        self.expect(&TokenKind::LParen)?;
        let mut init = Vec::new();
        if !matches!(self.peek(), TokenKind::Semi) {
            loop {
                init.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::Semi)?;
        let mut cond = Vec::new();
        if !matches!(self.peek(), TokenKind::Semi) {
            loop {
                cond.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::Semi)?;
        let mut step = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                step.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let (body, alt) = self.parse_body(&["endfor"])?;
        if let AltEnd::Keyword(_) = alt {
            self.bump();
            self.end_stmt()?;
        }
        Ok(Stmt::new(
            StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            start.merge(self.prev_span()),
        ))
    }

    fn parse_foreach(&mut self) -> ParseResult<Stmt> {
        let start = self.span();
        self.expect(&TokenKind::Foreach)?;
        self.expect(&TokenKind::LParen)?;
        let array = self.parse_expr()?;
        self.expect(&TokenKind::As)?;
        let mut by_ref = self.eat(&TokenKind::Amp);
        let first = self.parse_expr()?;
        let (key, value) = if self.eat(&TokenKind::DoubleArrow) {
            let vref = self.eat(&TokenKind::Amp);
            by_ref = vref;
            (Some(first), self.parse_expr()?)
        } else {
            (None, first)
        };
        self.expect(&TokenKind::RParen)?;
        let (body, alt) = self.parse_body(&["endforeach"])?;
        if let AltEnd::Keyword(_) = alt {
            self.bump();
            self.end_stmt()?;
        }
        Ok(Stmt::new(
            StmtKind::Foreach {
                array,
                key,
                by_ref,
                value,
                body,
            },
            start.merge(self.prev_span()),
        ))
    }

    fn parse_switch(&mut self) -> ParseResult<Stmt> {
        let start = self.span();
        self.expect(&TokenKind::Switch)?;
        self.expect(&TokenKind::LParen)?;
        let subject = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let alt = !self.eat(&TokenKind::LBrace);
        if alt {
            self.expect(&TokenKind::Colon)?;
        }
        let mut cases = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Case => {
                    let cspan = self.span();
                    self.bump();
                    let test = self.parse_expr()?;
                    if !self.eat(&TokenKind::Colon) {
                        self.expect(&TokenKind::Semi)?;
                    }
                    let body = self.parse_case_body(alt)?;
                    cases.push(SwitchCase {
                        test: Some(test),
                        body,
                        span: cspan.merge(self.prev_span()),
                    });
                }
                TokenKind::Default => {
                    let cspan = self.span();
                    self.bump();
                    if !self.eat(&TokenKind::Colon) {
                        self.expect(&TokenKind::Semi)?;
                    }
                    let body = self.parse_case_body(alt)?;
                    cases.push(SwitchCase {
                        test: None,
                        body,
                        span: cspan.merge(self.prev_span()),
                    });
                }
                TokenKind::RBrace if !alt => {
                    self.bump();
                    break;
                }
                TokenKind::Ident(n) if alt && n.as_str().eq_ignore_ascii_case("endswitch") => {
                    self.bump();
                    self.end_stmt()?;
                    break;
                }
                _ => return Err(self.unexpected("expected case, default, or end of switch")),
            }
        }
        Ok(Stmt::new(
            StmtKind::Switch { subject, cases },
            start.merge(self.prev_span()),
        ))
    }

    fn parse_case_body(&mut self, alt: bool) -> ParseResult<Vec<Stmt>> {
        let mut body = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Case | TokenKind::Default | TokenKind::Eof => break,
                TokenKind::RBrace if !alt => break,
                TokenKind::Ident(n) if alt && n.as_str().eq_ignore_ascii_case("endswitch") => break,
                _ => body.push(self.parse_stmt()?),
            }
        }
        Ok(body)
    }

    fn parse_try(&mut self) -> ParseResult<Stmt> {
        let start = self.span();
        self.expect(&TokenKind::Try)?;
        self.expect(&TokenKind::LBrace)?;
        let body = self.parse_stmts_until(&TokenKind::RBrace)?;
        self.expect(&TokenKind::RBrace)?;
        let mut catches = Vec::new();
        while self.eat(&TokenKind::Catch) {
            self.expect(&TokenKind::LParen)?;
            let mut types = vec![self.parse_class_name()?];
            while self.eat(&TokenKind::Pipe) {
                types.push(self.parse_class_name()?);
            }
            let var = if let TokenKind::Variable(n) = self.peek().clone() {
                self.bump();
                Some(n)
            } else {
                None
            };
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::LBrace)?;
            let cbody = self.parse_stmts_until(&TokenKind::RBrace)?;
            self.expect(&TokenKind::RBrace)?;
            catches.push(CatchClause {
                types,
                var,
                body: cbody,
            });
        }
        let finally = if self.eat(&TokenKind::Finally) {
            self.expect(&TokenKind::LBrace)?;
            let f = self.parse_stmts_until(&TokenKind::RBrace)?;
            self.expect(&TokenKind::RBrace)?;
            Some(f)
        } else {
            None
        };
        Ok(Stmt::new(
            StmtKind::Try {
                body,
                catches,
                finally,
            },
            start.merge(self.prev_span()),
        ))
    }

    /// Class names may be `\Foo\Bar`; we keep the last segment.
    fn parse_class_name(&mut self) -> ParseResult<Symbol> {
        self.eat(&TokenKind::Backslash);
        let mut name = self.ident()?;
        while self.eat(&TokenKind::Backslash) {
            name = self.ident()?;
        }
        Ok(name)
    }

    fn parse_function(&mut self) -> ParseResult<Function> {
        let start = self.span();
        self.expect(&TokenKind::Function)?;
        let by_ref = self.eat(&TokenKind::Amp);
        let name = self.ident()?;
        let params = self.parse_params()?;
        // optional return type `: type`
        if self.eat(&TokenKind::Colon) {
            self.eat(&TokenKind::Question);
            self.parse_class_name()?;
        }
        self.expect(&TokenKind::LBrace)?;
        let body = self.parse_stmts_until(&TokenKind::RBrace)?;
        self.expect(&TokenKind::RBrace)?;
        Ok(Function {
            name,
            params,
            body,
            by_ref,
            span: start.merge(self.prev_span()),
        })
    }

    fn parse_params(&mut self) -> ParseResult<Vec<Param>> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                let mut ty = None;
                if self.eat(&TokenKind::Question) {
                    // nullable hint
                    ty = Some(format!("?{}", self.parse_class_name()?));
                } else if matches!(
                    self.peek(),
                    TokenKind::Ident(_) | TokenKind::ArrayKw | TokenKind::Backslash
                ) {
                    ty = Some(match self.peek().clone() {
                        TokenKind::ArrayKw => {
                            self.bump();
                            "array".to_string()
                        }
                        _ => self.parse_class_name()?.as_str().to_string(),
                    });
                }
                let by_ref = self.eat(&TokenKind::Amp);
                let variadic = self.eat(&TokenKind::Ellipsis);
                let name = match self.bump().kind {
                    TokenKind::Variable(n) => n,
                    _ => return Err(self.unexpected("expected parameter variable")),
                };
                let default = if self.eat(&TokenKind::Assign) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                params.push(Param {
                    name,
                    by_ref,
                    variadic,
                    default,
                    ty,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                if matches!(self.peek(), TokenKind::RParen) {
                    break; // trailing comma
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(params)
    }

    fn parse_class(&mut self) -> ParseResult<Class> {
        let start = self.span();
        self.expect(&TokenKind::Class)?;
        let name = self.ident()?;
        let parent = if self.eat(&TokenKind::Extends) {
            Some(self.parse_class_name()?)
        } else {
            None
        };
        let mut interfaces = Vec::new();
        if self.eat(&TokenKind::Implements) {
            loop {
                interfaces.push(self.parse_class_name()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut members = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            members.push(self.parse_class_member()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Class {
            name,
            parent,
            interfaces,
            members,
            span: start.merge(self.prev_span()),
        })
    }

    fn parse_class_member(&mut self) -> ParseResult<ClassMember> {
        let mut visibility = Visibility::Public;
        let mut is_static = false;
        loop {
            match self.peek() {
                TokenKind::Public => {
                    self.bump();
                    visibility = Visibility::Public;
                }
                TokenKind::Protected => {
                    self.bump();
                    visibility = Visibility::Protected;
                }
                TokenKind::Private => {
                    self.bump();
                    visibility = Visibility::Private;
                }
                TokenKind::Static => {
                    self.bump();
                    is_static = true;
                }
                TokenKind::VarKw => {
                    self.bump();
                    visibility = Visibility::Public;
                }
                _ => break,
            }
        }
        match self.peek().clone() {
            TokenKind::Function => {
                let func = self.parse_function()?;
                Ok(ClassMember::Method {
                    func,
                    visibility,
                    is_static,
                })
            }
            TokenKind::Const => {
                self.bump();
                let name = self.ident()?;
                self.expect(&TokenKind::Assign)?;
                let value = self.parse_expr()?;
                self.end_stmt()?;
                Ok(ClassMember::Const { name, value })
            }
            TokenKind::Variable(name) => {
                self.bump();
                let default = if self.eat(&TokenKind::Assign) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.end_stmt()?;
                Ok(ClassMember::Property {
                    name,
                    default,
                    visibility,
                    is_static,
                })
            }
            _ => Err(self.unexpected("expected class member")),
        }
    }

    // ---- expressions ----

    fn parse_expr(&mut self) -> ParseResult<Expr> {
        self.parse_keyword_or()
    }

    fn parse_keyword_or(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_keyword_xor()?;
        while self.eat(&TokenKind::OrKw) {
            let rhs = self.parse_keyword_xor()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_keyword_xor(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_keyword_and()?;
        while self.eat(&TokenKind::XorKw) {
            let rhs = self.parse_keyword_and()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::Xor,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_keyword_and(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_assignment()?;
        while self.eat(&TokenKind::AndKw) {
            let rhs = self.parse_assignment()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_assignment(&mut self) -> ParseResult<Expr> {
        let lhs = self.parse_ternary()?;
        let op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Assign),
            TokenKind::DotAssign => Some(AssignOp::Concat),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            TokenKind::StarAssign => Some(AssignOp::Mul),
            TokenKind::SlashAssign => Some(AssignOp::Div),
            TokenKind::PercentAssign => Some(AssignOp::Mod),
            TokenKind::CoalesceAssign => Some(AssignOp::Coalesce),
            _ => None,
        };
        let Some(op) = op else { return Ok(lhs) };
        self.bump();
        let by_ref = op == AssignOp::Assign && self.eat(&TokenKind::Amp);
        let value = self.parse_assignment()?; // right-associative
        let span = lhs.span.merge(value.span);
        Ok(Expr::new(
            ExprKind::Assign {
                target: Box::new(lhs),
                op,
                value: Box::new(value),
                by_ref,
            },
            span,
        ))
    }

    fn parse_ternary(&mut self) -> ParseResult<Expr> {
        let cond = self.parse_coalesce()?;
        if self.eat(&TokenKind::Question) {
            if self.eat(&TokenKind::Colon) {
                let otherwise = self.parse_assignment()?;
                let span = cond.span.merge(otherwise.span);
                return Ok(Expr::new(
                    ExprKind::Ternary {
                        cond: Box::new(cond),
                        then: None,
                        otherwise: Box::new(otherwise),
                    },
                    span,
                ));
            }
            let then = self.parse_assignment()?;
            self.expect(&TokenKind::Colon)?;
            let otherwise = self.parse_assignment()?;
            let span = cond.span.merge(otherwise.span);
            return Ok(Expr::new(
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then: Some(Box::new(then)),
                    otherwise: Box::new(otherwise),
                },
                span,
            ));
        }
        Ok(cond)
    }

    fn parse_coalesce(&mut self) -> ParseResult<Expr> {
        let lhs = self.parse_binary(0)?;
        if self.eat(&TokenKind::Coalesce) {
            let rhs = self.parse_coalesce()?; // right-associative
            let span = lhs.span.merge(rhs.span);
            return Ok(Expr::new(
                ExprKind::Binary {
                    op: BinOp::Coalesce,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            ));
        }
        Ok(lhs)
    }

    /// Precedence-climbing loop replacing the former eleven-deep
    /// recursive-descent ladder (`parse_or` .. `parse_multiplicative`):
    /// one recursion per *operator* instead of ten stack frames per
    /// operand. Left-associativity falls out of requiring strictly higher
    /// precedence (`prec + 1`) on the right-hand side.
    fn parse_binary(&mut self, min_prec: u8) -> ParseResult<Expr> {
        let mut lhs = self.parse_instanceof()?;
        while let Some((op, prec)) = binary_op(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_instanceof(&mut self) -> ParseResult<Expr> {
        let lhs = self.parse_unary()?;
        if self.eat(&TokenKind::InstanceOf) {
            let class = self.parse_class_name()?;
            let span = lhs.span.merge(self.prev_span());
            return Ok(Expr::new(
                ExprKind::InstanceOf {
                    expr: Box::new(lhs),
                    class,
                },
                span,
            ));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> ParseResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Bang => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.merge(e.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            TokenKind::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.merge(e.span);
                // fold negated numeric literals so `-1` is a literal, which
                // keeps printing canonical
                match e.kind {
                    ExprKind::Lit(Lit::Int(v)) if v != i64::MIN => {
                        Ok(Expr::new(ExprKind::Lit(Lit::Int(-v)), span))
                    }
                    ExprKind::Lit(Lit::Float(v)) => {
                        Ok(Expr::new(ExprKind::Lit(Lit::Float(-v)), span))
                    }
                    _ => Ok(Expr::new(
                        ExprKind::Unary {
                            op: UnOp::Neg,
                            expr: Box::new(e),
                        },
                        span,
                    )),
                }
            }
            TokenKind::Plus => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.merge(e.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnOp::Pos,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            TokenKind::Tilde => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.merge(e.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnOp::BitNot,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            TokenKind::At => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.merge(e.span);
                Ok(Expr::new(ExprKind::ErrorSuppress(Box::new(e)), span))
            }
            TokenKind::Inc | TokenKind::Dec => {
                let inc = matches!(self.peek(), TokenKind::Inc);
                self.bump();
                let e = self.parse_unary()?;
                let span = start.merge(e.span);
                Ok(Expr::new(
                    ExprKind::IncDec {
                        pre: true,
                        inc,
                        target: Box::new(e),
                    },
                    span,
                ))
            }
            TokenKind::LParen if self.cast_type().is_some() => {
                let ty = self.cast_type().expect("checked");
                self.bump(); // (
                self.bump(); // type
                self.bump(); // )
                let e = self.parse_unary()?;
                let span = start.merge(e.span);
                Ok(Expr::new(
                    ExprKind::Cast {
                        ty,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            TokenKind::New => {
                self.bump();
                let class = match self.peek().clone() {
                    TokenKind::Variable(v) => {
                        self.bump();
                        Symbol::intern(&format!("${v}"))
                    }
                    _ => self.parse_class_name()?,
                };
                let args = if matches!(self.peek(), TokenKind::LParen) {
                    self.parse_args()?
                } else {
                    Vec::new()
                };
                let span = start.merge(self.prev_span());
                self.parse_postfix(Expr::new(ExprKind::New { class, args }, span))
            }
            TokenKind::Clone => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.merge(e.span);
                Ok(Expr::new(ExprKind::Clone(Box::new(e)), span))
            }
            TokenKind::Print => {
                self.bump();
                let e = self.parse_expr()?;
                let span = start.merge(e.span);
                Ok(Expr::new(ExprKind::Print(Box::new(e)), span))
            }
            k @ (TokenKind::Include
            | TokenKind::IncludeOnce
            | TokenKind::Require
            | TokenKind::RequireOnce) => {
                self.bump();
                let kind = match k {
                    TokenKind::Include => IncludeKind::Include,
                    TokenKind::IncludeOnce => IncludeKind::IncludeOnce,
                    TokenKind::Require => IncludeKind::Require,
                    _ => IncludeKind::RequireOnce,
                };
                let path = self.parse_expr()?;
                let span = start.merge(path.span);
                Ok(Expr::new(
                    ExprKind::IncludeExpr {
                        kind,
                        path: Box::new(path),
                    },
                    span,
                ))
            }
            _ => self.parse_postfix_primary(),
        }
    }

    /// Recognizes `(int)`-style casts at the cursor without consuming.
    fn cast_type(&self) -> Option<CastType> {
        if !matches!(self.peek(), TokenKind::LParen) {
            return None;
        }
        let ty = match self.peek_at(1) {
            TokenKind::Ident(n) => match n.lower().as_str() {
                "int" | "integer" => CastType::Int,
                "float" | "double" | "real" => CastType::Float,
                "string" | "binary" => CastType::Str,
                "bool" | "boolean" => CastType::Bool,
                "object" => CastType::Object,
                _ => return None,
            },
            TokenKind::ArrayKw => CastType::Array,
            TokenKind::Unset => CastType::Unset,
            _ => return None,
        };
        if matches!(self.peek_at(2), TokenKind::RParen) {
            Some(ty)
        } else {
            None
        }
    }

    fn parse_postfix_primary(&mut self) -> ParseResult<Expr> {
        let primary = self.parse_primary()?;
        self.parse_postfix(primary)
    }

    fn parse_postfix(&mut self, mut e: Expr) -> ParseResult<Expr> {
        loop {
            match self.peek().clone() {
                TokenKind::LBracket => {
                    self.bump();
                    let index = if matches!(self.peek(), TokenKind::RBracket) {
                        None
                    } else {
                        Some(Box::new(self.parse_expr()?))
                    };
                    self.expect(&TokenKind::RBracket)?;
                    let span = e.span.merge(self.prev_span());
                    e = Expr::new(
                        ExprKind::ArrayDim {
                            base: Box::new(e),
                            index,
                        },
                        span,
                    );
                }
                TokenKind::Arrow => {
                    self.bump();
                    let name = match self.peek().clone() {
                        TokenKind::Variable(v) => {
                            // dynamic property `$obj->$name`
                            self.bump();
                            Symbol::intern(&format!("${v}"))
                        }
                        _ => self.ident()?,
                    };
                    if matches!(self.peek(), TokenKind::LParen) {
                        let args = self.parse_args()?;
                        let span = e.span.merge(self.prev_span());
                        e = Expr::new(
                            ExprKind::MethodCall {
                                target: Box::new(e),
                                method: name,
                                args,
                            },
                            span,
                        );
                    } else {
                        let span = e.span.merge(self.prev_span());
                        e = Expr::new(
                            ExprKind::Prop {
                                base: Box::new(e),
                                name,
                            },
                            span,
                        );
                    }
                }
                TokenKind::DoubleColon => {
                    let class = match &e.kind {
                        ExprKind::Name(n) => *n,
                        ExprKind::Var(v) => Symbol::intern(&format!("${v}")),
                        _ => return Err(self.unexpected("expected class name before `::`")),
                    };
                    self.bump();
                    match self.peek().clone() {
                        TokenKind::Variable(v) => {
                            self.bump();
                            let span = e.span.merge(self.prev_span());
                            e = Expr::new(ExprKind::StaticProp { class, name: v }, span);
                        }
                        _ => {
                            let name = self.ident()?;
                            if matches!(self.peek(), TokenKind::LParen) {
                                let args = self.parse_args()?;
                                let span = e.span.merge(self.prev_span());
                                e = Expr::new(
                                    ExprKind::StaticCall {
                                        class,
                                        method: name,
                                        args,
                                    },
                                    span,
                                );
                            } else {
                                let span = e.span.merge(self.prev_span());
                                e = Expr::new(ExprKind::ClassConst { class, name }, span);
                            }
                        }
                    }
                }
                TokenKind::LParen => {
                    // only names, variables, and call-results are callable here
                    match e.kind {
                        ExprKind::Name(_)
                        | ExprKind::Var(_)
                        | ExprKind::Call { .. }
                        | ExprKind::MethodCall { .. }
                        | ExprKind::StaticCall { .. }
                        | ExprKind::ArrayDim { .. }
                        | ExprKind::Prop { .. }
                        | ExprKind::Closure { .. } => {
                            let args = self.parse_args()?;
                            let span = e.span.merge(self.prev_span());
                            e = Expr::new(
                                ExprKind::Call {
                                    callee: Box::new(e),
                                    args,
                                },
                                span,
                            );
                        }
                        _ => return Ok(e),
                    }
                }
                TokenKind::Inc | TokenKind::Dec => {
                    // postfix only on lvalues
                    if !matches!(
                        e.kind,
                        ExprKind::Var(_)
                            | ExprKind::ArrayDim { .. }
                            | ExprKind::Prop { .. }
                            | ExprKind::StaticProp { .. }
                    ) {
                        return Ok(e);
                    }
                    let inc = matches!(self.peek(), TokenKind::Inc);
                    self.bump();
                    let span = e.span.merge(self.prev_span());
                    e = Expr::new(
                        ExprKind::IncDec {
                            pre: false,
                            inc,
                            target: Box::new(e),
                        },
                        span,
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_args(&mut self) -> ParseResult<Vec<Expr>> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                self.eat(&TokenKind::Amp); // by-ref at call site (PHP4 style)
                if self.eat(&TokenKind::Ellipsis) {
                    // spread: keep the inner expression
                    args.push(self.parse_expr()?);
                } else {
                    args.push(self.parse_expr()?);
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                if matches!(self.peek(), TokenKind::RParen) {
                    break; // trailing comma
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn parse_primary(&mut self) -> ParseResult<Expr> {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Variable(n) => {
                self.bump();
                ExprKind::Var(n)
            }
            TokenKind::Int(v) => {
                self.bump();
                ExprKind::Lit(Lit::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                ExprKind::Lit(Lit::Float(v))
            }
            TokenKind::SingleStr(s) => {
                self.bump();
                ExprKind::Lit(Lit::Str(s))
            }
            TokenKind::TemplateStr(parts) => {
                self.bump();
                template_to_expr(parts, start)
            }
            TokenKind::ShellStr(parts) => {
                self.bump();
                let kind = template_to_expr(parts, start);
                let inner = match kind {
                    ExprKind::Interp(es) => es,
                    lit => vec![Expr::new(lit, start)],
                };
                ExprKind::ShellExec(inner)
            }
            TokenKind::True => {
                self.bump();
                ExprKind::Lit(Lit::Bool(true))
            }
            TokenKind::False => {
                self.bump();
                ExprKind::Lit(Lit::Bool(false))
            }
            TokenKind::Null => {
                self.bump();
                ExprKind::Lit(Lit::Null)
            }
            TokenKind::Ident(n) => {
                self.bump();
                ExprKind::Name(n)
            }
            TokenKind::Static if matches!(self.peek_at(1), TokenKind::DoubleColon) => {
                self.bump();
                ExprKind::Name("static".into())
            }
            TokenKind::Backslash => {
                // fully-qualified name \foo\bar — keep last segment
                let name = self.parse_class_name()?;
                ExprKind::Name(name)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                return self.parse_postfix(e);
            }
            TokenKind::ArrayKw => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let items = self.parse_array_items(&TokenKind::RParen)?;
                self.expect(&TokenKind::RParen)?;
                ExprKind::Array(items)
            }
            TokenKind::LBracket => {
                self.bump();
                let items = self.parse_array_items(&TokenKind::RBracket)?;
                self.expect(&TokenKind::RBracket)?;
                ExprKind::Array(items)
            }
            TokenKind::ListKw => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut items = Vec::new();
                loop {
                    if matches!(self.peek(), TokenKind::Comma) {
                        items.push(None);
                        self.bump();
                        continue;
                    }
                    if matches!(self.peek(), TokenKind::RParen) {
                        break;
                    }
                    items.push(Some(self.parse_expr()?));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                ExprKind::List(items)
            }
            TokenKind::Isset => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut items = vec![self.parse_expr()?];
                while self.eat(&TokenKind::Comma) {
                    items.push(self.parse_expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                ExprKind::Isset(items)
            }
            TokenKind::Empty => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                ExprKind::Empty(Box::new(e))
            }
            TokenKind::Exit => {
                self.bump();
                let arg = if self.eat(&TokenKind::LParen) {
                    let a = if matches!(self.peek(), TokenKind::RParen) {
                        None
                    } else {
                        Some(Box::new(self.parse_expr()?))
                    };
                    self.expect(&TokenKind::RParen)?;
                    a
                } else {
                    None
                };
                ExprKind::Exit(arg)
            }
            TokenKind::Function => {
                self.bump();
                let _by_ref = self.eat(&TokenKind::Amp);
                let params = self.parse_params()?;
                let mut uses = Vec::new();
                if self.eat(&TokenKind::Use) {
                    self.expect(&TokenKind::LParen)?;
                    loop {
                        let by_ref = self.eat(&TokenKind::Amp);
                        match self.bump().kind {
                            TokenKind::Variable(n) => uses.push((n, by_ref)),
                            _ => return Err(self.unexpected("expected variable in use clause")),
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                if self.eat(&TokenKind::Colon) {
                    self.eat(&TokenKind::Question);
                    self.parse_class_name()?;
                }
                self.expect(&TokenKind::LBrace)?;
                let body = self.parse_stmts_until(&TokenKind::RBrace)?;
                self.expect(&TokenKind::RBrace)?;
                ExprKind::Closure { params, uses, body }
            }
            TokenKind::Amp => {
                // stray by-ref marker in expression position (e.g. `=& new C`)
                self.bump();
                return self.parse_unary();
            }
            _ => return Err(self.unexpected("expected expression")),
        };
        Ok(Expr::new(kind, start.merge(self.prev_span())))
    }

    fn parse_array_items(&mut self, end: &TokenKind) -> ParseResult<Vec<ArrayItem>> {
        let mut items = Vec::new();
        while self.peek() != end {
            let by_ref = self.eat(&TokenKind::Amp);
            let first = self.parse_expr()?;
            if self.eat(&TokenKind::DoubleArrow) {
                let vref = self.eat(&TokenKind::Amp);
                let value = self.parse_expr()?;
                items.push(ArrayItem {
                    key: Some(first),
                    value,
                    by_ref: vref,
                });
            } else {
                items.push(ArrayItem {
                    key: None,
                    value: first,
                    by_ref,
                });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }
}

enum AltEnd {
    /// Body ended normally (brace or single statement).
    None,
    /// Alternative syntax ended at the named keyword (not yet consumed).
    Keyword(#[allow(dead_code)] Symbol),
    /// Alternative syntax hit `else`/`elseif` (not yet consumed).
    ElseArm,
}

/// Converts lexer string parts into an expression: a plain literal when
/// there is no interpolation, otherwise an [`ExprKind::Interp`].
fn template_to_expr(parts: Vec<StrPart>, span: Span) -> ExprKind {
    if parts.len() == 1 {
        if let StrPart::Lit(s) = &parts[0] {
            return ExprKind::Lit(Lit::Str(s.clone()));
        }
    }
    let exprs = parts
        .into_iter()
        .map(|p| match p {
            StrPart::Lit(s) => Expr::new(ExprKind::Lit(Lit::Str(s)), span),
            StrPart::Var(n) => Expr::new(ExprKind::Var(n), span),
            StrPart::Index(n, key) => {
                let index = match key {
                    IndexKey::Str(s) => Expr::new(ExprKind::Lit(Lit::Str(s)), span),
                    IndexKey::Int(i) => Expr::new(ExprKind::Lit(Lit::Int(i)), span),
                    IndexKey::Var(v) => Expr::new(ExprKind::Var(v), span),
                };
                Expr::new(
                    ExprKind::ArrayDim {
                        base: Box::new(Expr::new(ExprKind::Var(n), span)),
                        index: Some(Box::new(index)),
                    },
                    span,
                )
            }
            StrPart::Prop(n, p) => Expr::new(
                ExprKind::Prop {
                    base: Box::new(Expr::new(ExprKind::Var(n), span)),
                    name: p,
                },
                span,
            ),
        })
        .collect();
    ExprKind::Interp(exprs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource: {src}"))
    }

    fn first_expr(src: &str) -> Expr {
        let p = parse_ok(src);
        for s in p.stmts {
            if let StmtKind::Expr(e) = s.kind {
                return e;
            }
        }
        panic!("no expression statement");
    }

    #[test]
    fn parse_assignment_from_superglobal() {
        let e = first_expr("<?php $id = $_GET['id'];");
        match e.kind {
            ExprKind::Assign {
                target,
                value,
                op,
                by_ref,
            } => {
                assert_eq!(op, AssignOp::Assign);
                assert!(!by_ref);
                assert_eq!(target.as_var_name(), Some("id"));
                match value.kind {
                    ExprKind::ArrayDim { base, index } => {
                        assert_eq!(base.as_var_name(), Some("_GET"));
                        assert_eq!(index.unwrap().as_str_lit(), Some("id"));
                    }
                    other => panic!("unexpected value {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_call_with_interpolated_query() {
        let e = first_expr(r#"<?php mysql_query("SELECT * FROM u WHERE id = $id");"#);
        match e.kind {
            ExprKind::Call { callee, args } => {
                assert!(matches!(callee.kind, ExprKind::Name(ref n) if n == "mysql_query"));
                assert_eq!(args.len(), 1);
                assert!(matches!(args[0].kind, ExprKind::Interp(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_concat_precedence() {
        // "a" . $b . "c" groups left
        let e = first_expr(r#"<?php $q = 'a' . $b . 'c';"#);
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        let ExprKind::Binary { op, lhs, .. } = value.kind else {
            panic!()
        };
        assert_eq!(op, BinOp::Concat);
        assert!(matches!(
            lhs.kind,
            ExprKind::Binary {
                op: BinOp::Concat,
                ..
            }
        ));
    }

    #[test]
    fn parse_if_elseif_else() {
        let p = parse_ok("<?php if ($a) { f(); } elseif ($b) g(); else { h(); }");
        let StmtKind::If {
            elseifs,
            else_branch,
            ..
        } = &p.stmts[0].kind
        else {
            panic!()
        };
        assert_eq!(elseifs.len(), 1);
        assert!(else_branch.is_some());
    }

    #[test]
    fn parse_else_if_two_words() {
        let p = parse_ok("<?php if ($a) f(); else if ($b) g();");
        let StmtKind::If {
            elseifs,
            else_branch,
            ..
        } = &p.stmts[0].kind
        else {
            panic!()
        };
        assert_eq!(elseifs.len(), 1);
        assert!(else_branch.is_none());
    }

    #[test]
    fn parse_alternative_if_syntax() {
        let p = parse_ok("<?php if ($a): ?><b>hi</b><?php endif; ?>");
        let StmtKind::If { then_branch, .. } = &p.stmts[0].kind else {
            panic!("{:?}", p.stmts[0])
        };
        assert!(then_branch
            .iter()
            .any(|s| matches!(s.kind, StmtKind::InlineHtml(_))));
    }

    #[test]
    fn parse_alternative_if_else() {
        let p = parse_ok("<?php if ($a): f(); else: g(); endif;");
        let StmtKind::If { else_branch, .. } = &p.stmts[0].kind else {
            panic!()
        };
        assert_eq!(else_branch.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn parse_loops() {
        parse_ok("<?php while ($r = fetch()) { echo $r; }");
        parse_ok("<?php do { $i++; } while ($i < 10);");
        parse_ok("<?php for ($i = 0; $i < 10; $i++) echo $i;");
        parse_ok("<?php foreach ($rows as $k => $v) { echo $v; }");
        parse_ok("<?php foreach ($rows as $v) echo $v;");
        parse_ok("<?php foreach ($rows as &$v) $v = 1;");
        parse_ok("<?php while ($x): f(); endwhile;");
        parse_ok("<?php foreach ($a as $b): f(); endforeach;");
        parse_ok("<?php for (;;) break;");
    }

    #[test]
    fn parse_switch() {
        let p = parse_ok("<?php switch ($a) { case 1: f(); break; case 'x': default: g(); }");
        let StmtKind::Switch { cases, .. } = &p.stmts[0].kind else {
            panic!()
        };
        assert_eq!(cases.len(), 3);
        assert!(cases[2].test.is_none());
        assert!(cases[1].body.is_empty()); // fallthrough
    }

    #[test]
    fn parse_function_decl() {
        let p = parse_ok(
            "<?php function sanitize($input, $mode = 'html', &$out = null) { return $input; }",
        );
        let StmtKind::Function(f) = &p.stmts[0].kind else {
            panic!()
        };
        assert_eq!(f.name, "sanitize");
        assert_eq!(f.params.len(), 3);
        assert!(f.params[2].by_ref);
        assert!(f.params[1].default.is_some());
    }

    #[test]
    fn parse_typed_and_variadic_params() {
        let p = parse_ok("<?php function f(array $a, ?MyClass $b, ...$rest) {}");
        let StmtKind::Function(f) = &p.stmts[0].kind else {
            panic!()
        };
        assert_eq!(f.params[0].ty.as_deref(), Some("array"));
        assert_eq!(f.params[1].ty.as_deref(), Some("?MyClass"));
        assert!(f.params[2].variadic);
    }

    #[test]
    fn parse_class_with_members() {
        let p = parse_ok(
            "<?php class Repo extends Base implements A, B {
                public $db;
                private static $cache = array();
                const LIMIT = 10;
                public function find($id) { return $this->db->query($id); }
                static function make() { return new Repo(); }
            }",
        );
        let StmtKind::Class(c) = &p.stmts[0].kind else {
            panic!()
        };
        assert_eq!(c.name, "Repo");
        assert_eq!(c.parent.map(Symbol::as_str), Some("Base"));
        let ifaces: Vec<_> = c.interfaces.iter().map(|s| s.as_str()).collect();
        assert_eq!(ifaces, vec!["A", "B"]);
        assert_eq!(c.members.len(), 5);
        assert!(c.method("find").is_some());
    }

    #[test]
    fn parse_method_and_static_calls() {
        let e = first_expr("<?php $wpdb->query($sql);");
        assert!(matches!(e.kind, ExprKind::MethodCall { ref method, .. } if method == "query"));
        let e = first_expr("<?php DB::run($sql);");
        assert!(
            matches!(e.kind, ExprKind::StaticCall { ref class, ref method, .. } if class == "DB" && method == "run")
        );
    }

    #[test]
    fn parse_chained_calls() {
        let e = first_expr("<?php $db->table('users')->where($x)->get();");
        assert!(matches!(e.kind, ExprKind::MethodCall { ref method, .. } if method == "get"));
    }

    #[test]
    fn parse_new_with_and_without_args() {
        let e = first_expr("<?php $m = new MongoClient('localhost');");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::New { ref class, .. } if class == "MongoClient"));
        let e = first_expr("<?php $x = new Foo;");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::New { ref args, .. } if args.is_empty()));
    }

    #[test]
    fn parse_ternaries() {
        let e = first_expr("<?php $x = isset($_GET['p']) ? $_GET['p'] : 1;");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        assert!(matches!(
            value.kind,
            ExprKind::Ternary { then: Some(_), .. }
        ));
        let e = first_expr("<?php $x = $a ?: 'd';");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Ternary { then: None, .. }));
    }

    #[test]
    fn parse_coalesce_right_assoc() {
        let e = first_expr("<?php $x = $a ?? $b ?? 'd';");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Coalesce,
            rhs,
            ..
        } = value.kind
        else {
            panic!()
        };
        assert!(matches!(
            rhs.kind,
            ExprKind::Binary {
                op: BinOp::Coalesce,
                ..
            }
        ));
    }

    #[test]
    fn parse_casts() {
        let e = first_expr("<?php $id = (int)$_GET['id'];");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        assert!(matches!(
            value.kind,
            ExprKind::Cast {
                ty: CastType::Int,
                ..
            }
        ));
        // a parenthesized expression is not a cast
        let e = first_expr("<?php $x = ($y);");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Var(_)));
    }

    #[test]
    fn parse_isset_empty_exit() {
        parse_ok("<?php if (isset($_GET['a'], $_GET['b'])) exit('no');");
        parse_ok("<?php if (empty($x)) die();");
        parse_ok("<?php exit;");
    }

    #[test]
    fn parse_arrays_and_lists() {
        let e = first_expr("<?php $a = array('k' => 1, 2, &$v);");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        let ExprKind::Array(items) = value.kind else {
            panic!()
        };
        assert_eq!(items.len(), 3);
        assert!(items[0].key.is_some());
        assert!(items[2].by_ref);
        parse_ok("<?php $a = ['x', 'y'];");
        parse_ok("<?php list($a, , $b) = explode(',', $s);");
    }

    #[test]
    fn parse_closure_with_use() {
        let e = first_expr("<?php $f = function ($x) use (&$acc, $db) { return $db->q($x); };");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        let ExprKind::Closure { uses, params, .. } = value.kind else {
            panic!()
        };
        assert_eq!(params.len(), 1);
        assert_eq!(uses.len(), 2);
        assert!(uses[0].1);
    }

    #[test]
    fn parse_include_forms() {
        let p = parse_ok("<?php include 'header.php'; require_once($_GET['page']);");
        assert!(matches!(
            p.stmts[0].kind,
            StmtKind::Include {
                kind: IncludeKind::Include,
                ..
            }
        ));
        let StmtKind::Include { kind, path } = &p.stmts[1].kind else {
            panic!()
        };
        assert_eq!(*kind, IncludeKind::RequireOnce);
        // require_once(expr) parses the parenthesized expression as path
        assert!(path.root_var().is_some() || matches!(path.kind, ExprKind::ArrayDim { .. }));
    }

    #[test]
    fn parse_global_and_static_vars() {
        let p = parse_ok("<?php function f() { global $db, $cfg; static $n = 0; }");
        let StmtKind::Function(f) = &p.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(&f.body[0].kind, StmtKind::Global(g) if g.len() == 2));
        assert!(matches!(&f.body[1].kind, StmtKind::StaticVars(v) if v.len() == 1));
    }

    #[test]
    fn parse_try_catch_finally() {
        let p = parse_ok(
            "<?php try { risky(); } catch (PDOException | RuntimeException $e) { log($e); } finally { cleanup(); }",
        );
        let StmtKind::Try {
            catches, finally, ..
        } = &p.stmts[0].kind
        else {
            panic!()
        };
        assert_eq!(catches[0].types.len(), 2);
        assert!(finally.is_some());
    }

    #[test]
    fn parse_error_suppression_and_incdec() {
        parse_ok("<?php $r = @mysql_query($q); $i++; --$j; $a[$i]++;");
    }

    #[test]
    fn parse_keyword_logic_ops() {
        let e = first_expr("<?php $ok = $a and $b;");
        // `and` binds looser than `=`: ($ok = $a) and $b
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn parse_html_interleaved() {
        let p = parse_ok("<h1>Title</h1><?php echo $x; ?><footer>");
        assert!(matches!(p.stmts[0].kind, StmtKind::InlineHtml(_)));
        assert!(matches!(p.stmts[1].kind, StmtKind::Echo(_)));
        assert!(matches!(p.stmts[2].kind, StmtKind::InlineHtml(_)));
    }

    #[test]
    fn parse_short_echo() {
        let p = parse_ok("<ul><?= $_GET['q'] ?></ul>");
        assert!(matches!(p.stmts[1].kind, StmtKind::Echo(_)));
    }

    #[test]
    fn parse_namespace_and_use_ignored() {
        let p = parse_ok("<?php namespace App\\Models; use PDO; use Foo\\Bar as Baz; $x = 1;");
        assert!(p.stmts.iter().any(|s| matches!(s.kind, StmtKind::Expr(_))));
    }

    #[test]
    fn parse_heredoc_statement() {
        let p = parse_ok("<?php $q = <<<SQL\nSELECT * FROM t WHERE id = $id\nSQL;\n");
        assert_eq!(p.stmts.len(), 1);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("<?php if ($a { }").is_err());
        assert!(parse("<?php $x = ;").is_err());
        assert!(parse("<?php function () {}").is_ok()); // closure expr... missing semi
    }

    #[test]
    fn parse_error_has_location() {
        let err = parse("<?php\n\n$x = ;").unwrap_err();
        assert_eq!(err.span().line(), 3);
    }

    #[test]
    fn parse_static_prop_and_class_const() {
        let e = first_expr("<?php $x = Config::$instance;");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::StaticProp { .. }));
        let e = first_expr("<?php $x = Repo::LIMIT;");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::ClassConst { .. }));
    }

    #[test]
    fn parse_assign_by_ref() {
        let e = first_expr("<?php $a =& $b;");
        assert!(matches!(e.kind, ExprKind::Assign { by_ref: true, .. }));
    }

    #[test]
    fn parse_instanceof() {
        let e = first_expr("<?php $ok = $e instanceof PDOException;");
        let ExprKind::Assign { value, .. } = e.kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::InstanceOf { .. }));
    }

    #[test]
    fn parse_nested_function_calls() {
        let p = parse_ok("<?php echo htmlentities(trim($_POST['c']));");
        let StmtKind::Echo(items) = &p.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Call { args, .. } = &items[0].kind else {
            panic!()
        };
        assert!(matches!(args[0].kind, ExprKind::Call { .. }));
    }

    #[test]
    fn parse_realistic_file() {
        let src = r#"<?php
include 'config.php';
$conn = mysql_connect($host, $user, $pass);
function get_user($db, $id) {
    $q = "SELECT * FROM users WHERE id = '" . $id . "'";
    return mysql_query($q, $db);
}
if (isset($_GET['id'])) {
    $id = $_GET['id'];
    $res = get_user($conn, $id);
    while ($row = mysql_fetch_assoc($res)) {
        echo "<tr><td>" . $row['name'] . "</td></tr>";
    }
} else {
    header("Location: index.php?err=" . urlencode('missing id'));
    exit;
}
?>
<html><body>done</body></html>
"#;
        let p = parse_ok(src);
        assert!(p.stmts.len() >= 4);
        assert_eq!(p.functions().len(), 1);
    }
}

#[cfg(test)]
mod shell_exec_tests {
    use super::*;

    #[test]
    fn parse_backtick_shell_exec() {
        let p = parse(r#"<?php $out = `ls -la $dir`;"#).unwrap();
        let StmtKind::Expr(e) = &p.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Assign { value, .. } = &e.kind else {
            panic!()
        };
        let ExprKind::ShellExec(parts) = &value.kind else {
            panic!("{value:?}")
        };
        assert!(parts
            .iter()
            .any(|p| matches!(p.kind, ExprKind::Var(ref n) if n == "dir")));
    }

    #[test]
    fn parse_literal_backtick() {
        let p = parse(r#"<?php `whoami`;"#).unwrap();
        let StmtKind::Expr(e) = &p.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::ShellExec(_)));
    }

    #[test]
    fn backtick_round_trips() {
        use crate::printer::print_program;
        for src in [r#"<?php $out = `ls $dir`;"#, r#"<?php `uptime`;"#] {
            let p1 = parse(src).unwrap();
            let printed = print_program(&p1);
            let p2 = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
            assert_eq!(printed, print_program(&p2));
        }
    }
}
