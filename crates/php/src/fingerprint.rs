//! Stable content fingerprints for PHP sources.
//!
//! The incremental analysis cache keys every artifact by the exact bytes of
//! the source it was computed from, so the hash must be (a) stable across
//! runs, platforms, and compiler versions, (b) collision-resistant enough
//! that two different sources never share a cache slot in practice, and
//! (c) dependency-free. This module implements BLAKE2s-256 (RFC 7693) from
//! scratch — a modern, fast, well-specified hash with a 32-byte digest —
//! and exposes string-level helpers used by the cache layer.
//!
//! ```
//! use wap_php::fingerprint::content_hash;
//!
//! let a = content_hash("<?php echo 1;");
//! let b = content_hash("<?php echo 2;");
//! assert_ne!(a, b);
//! assert_eq!(a.len(), 64); // 256 bits, hex
//! ```

/// BLAKE2s initialization vector (the SHA-256 IV; RFC 7693 §2.6).
const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

/// Message word permutation schedule, one row per round (RFC 7693 §2.7).
const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

/// Streaming BLAKE2s-256 hasher.
///
/// ```
/// use wap_php::fingerprint::Blake2s;
///
/// let mut h = Blake2s::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize_hex(), Blake2s::hash_hex(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Blake2s {
    h: [u32; 8],
    /// Bytes hashed so far (128-bit counter per the spec; 64 bits suffice).
    t: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Blake2s {
    fn default() -> Self {
        Blake2s::new()
    }
}

impl Blake2s {
    /// A fresh hasher producing a 32-byte digest (no key).
    pub fn new() -> Self {
        let mut h = IV;
        // parameter block: digest_length = 32, key_length = 0, fanout = 1,
        // depth = 1 — packed into the first word
        h[0] ^= 0x0101_0020;
        Blake2s {
            h,
            t: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    ///
    /// A block is only compressed once at least one byte is known to follow
    /// it: the final block must be compressed with the last-block flag set
    /// in [`finalize`](Blake2s::finalize).
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = data.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if data.is_empty() {
                return;
            }
            self.t += 64;
            let block = self.buf;
            self.compress(&block, false);
            self.buf_len = 0;
        }
        // whole blocks straight from the input, no buffer copy
        while data.len() > 64 {
            self.t += 64;
            let block: [u8; 64] = data[..64].try_into().expect("64-byte chunk");
            self.compress(&block, false);
            data = &data[64..];
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Consumes the hasher and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        self.t += self.buf_len as u64;
        let mut block = [0u8; 64];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        self.compress(&block, true);
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Consumes the hasher and returns the digest as lowercase hex.
    pub fn finalize_hex(self) -> String {
        to_hex(&self.finalize())
    }

    /// One-shot digest.
    pub fn hash(data: &[u8]) -> [u8; 32] {
        let mut h = Blake2s::new();
        h.update(data);
        h.finalize()
    }

    /// One-shot hex digest.
    pub fn hash_hex(data: &[u8]) -> String {
        to_hex(&Blake2s::hash(data))
    }

    fn compress(&mut self, block: &[u8; 64], last: bool) {
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        let mut v = [0u32; 16];
        v[..8].copy_from_slice(&self.h);
        v[8..].copy_from_slice(&IV);
        v[12] ^= self.t as u32;
        v[13] ^= (self.t >> 32) as u32;
        if last {
            v[14] ^= 0xFFFF_FFFF;
        }

        #[inline(always)]
        fn g(v: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, x: u32, y: u32) {
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
            v[d] = (v[d] ^ v[a]).rotate_right(16);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(12);
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
            v[d] = (v[d] ^ v[a]).rotate_right(8);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(7);
        }

        for s in &SIGMA {
            g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
            g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
            g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
            g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
            g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
            g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
            g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
            g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
        }
        for i in 0..8 {
            self.h[i] ^= v[i] ^ v[i + 8];
        }
    }
}

fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    out
}

/// The stable content hash of a source file, as lowercase hex. This is the
/// primary component of every incremental-cache key.
pub fn content_hash(src: &str) -> String {
    Blake2s::hash_hex(src.as_bytes())
}

/// Hashes a sequence of labelled fields into one digest, with each field
/// length-prefixed so that field boundaries cannot be confused (hashing
/// `["ab", "c"]` never collides with `["a", "bc"]`).
pub fn fields_hash<I, S>(fields: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<[u8]>,
{
    let mut h = Blake2s::new();
    for f in fields {
        let f = f.as_ref();
        h.update(&(f.len() as u64).to_le_bytes());
        h.update(f);
    }
    h.finalize_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7693 / official BLAKE2 test vector: the empty input.
    #[test]
    fn empty_input_matches_reference_vector() {
        assert_eq!(
            Blake2s::hash_hex(b""),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"
        );
    }

    /// Official BLAKE2s vector for "abc" (RFC 7693 appendix B).
    #[test]
    fn abc_matches_reference_vector() {
        assert_eq!(
            Blake2s::hash_hex(b"abc"),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 128, 999, 1000] {
            let mut h = Blake2s::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Blake2s::hash(&data), "split at {split}");
        }
    }

    #[test]
    fn multi_block_input() {
        // exactly one block, one block + 1, several blocks
        for len in [64usize, 65, 128, 256, 300] {
            let data = vec![0xABu8; len];
            let d1 = Blake2s::hash(&data);
            let mut h = Blake2s::new();
            for chunk in data.chunks(7) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn content_hash_is_stable_and_distinct() {
        let a = content_hash("<?php echo $_GET['x'];");
        assert_eq!(a, content_hash("<?php echo $_GET['x'];"));
        assert_ne!(a, content_hash("<?php echo $_GET['y'];"));
        assert_eq!(a.len(), 64);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn fields_hash_respects_boundaries() {
        assert_ne!(fields_hash(["ab", "c"]), fields_hash(["a", "bc"]));
        assert_ne!(fields_hash(["ab"]), fields_hash(["ab", ""]));
        assert_eq!(fields_hash(["x", "y"]), fields_hash(["x", "y"]));
    }
}
