//! Generic AST traversal.
//!
//! [`Visitor`] is the Rust analogue of the ANTLR *tree walkers* the paper's
//! detectors are built on: implement the `visit_*` hooks you care about and
//! call the `walk_*` helpers to continue into children. The default
//! implementation of every hook walks the whole tree.

use crate::ast::*;

/// An immutable AST visitor.
///
/// Override the hooks you need; call the corresponding `walk_*` function to
/// descend into children (the default implementations do this for you).
///
/// # Examples
///
/// ```
/// use wap_php::{parse, visitor::{Visitor, walk_expr}, ast::{Expr, ExprKind}};
///
/// struct CallCounter(usize);
/// impl Visitor for CallCounter {
///     fn visit_expr(&mut self, e: &Expr) {
///         if matches!(e.kind, ExprKind::Call { .. }) {
///             self.0 += 1;
///         }
///         walk_expr(self, e);
///     }
/// }
///
/// let program = parse("<?php f(g($x), h());")?;
/// let mut counter = CallCounter(0);
/// counter.visit_program(&program);
/// assert_eq!(counter.0, 3);
/// # Ok::<(), wap_php::ParseError>(())
/// ```
pub trait Visitor {
    /// Visits a whole program.
    fn visit_program(&mut self, p: &Program) {
        walk_program(self, p);
    }

    /// Visits one statement.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }

    /// Visits one expression.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }

    /// Visits a function or method declaration.
    fn visit_function(&mut self, f: &Function) {
        walk_function(self, f);
    }

    /// Visits a class declaration.
    fn visit_class(&mut self, c: &Class) {
        walk_class(self, c);
    }
}

/// Walks all statements of a program.
pub fn walk_program<V: Visitor + ?Sized>(v: &mut V, p: &Program) {
    for s in &p.stmts {
        v.visit_stmt(s);
    }
}

/// Walks the children of one statement.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Expr(e) | StmtKind::Throw(e) => v.visit_expr(e),
        StmtKind::Echo(es) | StmtKind::Unset(es) => {
            for e in es {
                v.visit_expr(e);
            }
        }
        StmtKind::InlineHtml(_)
        | StmtKind::Break(_)
        | StmtKind::Continue(_)
        | StmtKind::Global(_)
        | StmtKind::Nop => {}
        StmtKind::If {
            cond,
            then_branch,
            elseifs,
            else_branch,
        } => {
            v.visit_expr(cond);
            for st in then_branch {
                v.visit_stmt(st);
            }
            for (c, b) in elseifs {
                v.visit_expr(c);
                for st in b {
                    v.visit_stmt(st);
                }
            }
            if let Some(b) = else_branch {
                for st in b {
                    v.visit_stmt(st);
                }
            }
        }
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            for st in body {
                v.visit_stmt(st);
            }
        }
        StmtKind::DoWhile { body, cond } => {
            for st in body {
                v.visit_stmt(st);
            }
            v.visit_expr(cond);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            for e in init.iter().chain(cond).chain(step) {
                v.visit_expr(e);
            }
            for st in body {
                v.visit_stmt(st);
            }
        }
        StmtKind::Foreach {
            array,
            key,
            value,
            body,
            ..
        } => {
            v.visit_expr(array);
            if let Some(k) = key {
                v.visit_expr(k);
            }
            v.visit_expr(value);
            for st in body {
                v.visit_stmt(st);
            }
        }
        StmtKind::Switch { subject, cases } => {
            v.visit_expr(subject);
            for c in cases {
                if let Some(t) = &c.test {
                    v.visit_expr(t);
                }
                for st in &c.body {
                    v.visit_stmt(st);
                }
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        StmtKind::StaticVars(vars) => {
            for (_, d) in vars {
                if let Some(d) = d {
                    v.visit_expr(d);
                }
            }
        }
        StmtKind::Function(f) => v.visit_function(f),
        StmtKind::Class(c) => v.visit_class(c),
        StmtKind::Include { path, .. } => v.visit_expr(path),
        StmtKind::Block(b) => {
            for st in b {
                v.visit_stmt(st);
            }
        }
        StmtKind::Try {
            body,
            catches,
            finally,
        } => {
            for st in body {
                v.visit_stmt(st);
            }
            for c in catches {
                for st in &c.body {
                    v.visit_stmt(st);
                }
            }
            if let Some(f) = finally {
                for st in f {
                    v.visit_stmt(st);
                }
            }
        }
    }
}

/// Walks the children of one expression.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::Var(_)
        | ExprKind::Lit(_)
        | ExprKind::Name(_)
        | ExprKind::StaticProp { .. }
        | ExprKind::ClassConst { .. } => {}
        ExprKind::Interp(parts) | ExprKind::ShellExec(parts) => {
            for p in parts {
                v.visit_expr(p);
            }
        }
        ExprKind::ArrayDim { base, index } => {
            v.visit_expr(base);
            if let Some(i) = index {
                v.visit_expr(i);
            }
        }
        ExprKind::Prop { base, .. } => v.visit_expr(base),
        ExprKind::Call { callee, args } => {
            v.visit_expr(callee);
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::MethodCall { target, args, .. } => {
            v.visit_expr(target);
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::StaticCall { args, .. } | ExprKind::New { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Assign { target, value, .. } => {
            v.visit_expr(target);
            v.visit_expr(value);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::ErrorSuppress(expr)
        | ExprKind::Print(expr)
        | ExprKind::Clone(expr)
        | ExprKind::Empty(expr) => v.visit_expr(expr),
        ExprKind::IncDec { target, .. } => v.visit_expr(target),
        ExprKind::Ternary {
            cond,
            then,
            otherwise,
        } => {
            v.visit_expr(cond);
            if let Some(t) = then {
                v.visit_expr(t);
            }
            v.visit_expr(otherwise);
        }
        ExprKind::Isset(es) => {
            for e in es {
                v.visit_expr(e);
            }
        }
        ExprKind::Array(items) => {
            for it in items {
                if let Some(k) = &it.key {
                    v.visit_expr(k);
                }
                v.visit_expr(&it.value);
            }
        }
        ExprKind::List(items) => {
            for it in items.iter().flatten() {
                v.visit_expr(it);
            }
        }
        ExprKind::Closure { params, body, .. } => {
            for p in params {
                if let Some(d) = &p.default {
                    v.visit_expr(d);
                }
            }
            for st in body {
                v.visit_stmt(st);
            }
        }
        ExprKind::Exit(arg) => {
            if let Some(a) = arg {
                v.visit_expr(a);
            }
        }
        ExprKind::InstanceOf { expr, .. } => v.visit_expr(expr),
        ExprKind::IncludeExpr { path, .. } => v.visit_expr(path),
    }
}

/// Walks a function's parameter defaults and body.
pub fn walk_function<V: Visitor + ?Sized>(v: &mut V, f: &Function) {
    for p in &f.params {
        if let Some(d) = &p.default {
            v.visit_expr(d);
        }
    }
    for st in &f.body {
        v.visit_stmt(st);
    }
}

/// Walks a class's member initializers and method bodies.
pub fn walk_class<V: Visitor + ?Sized>(v: &mut V, c: &Class) {
    for m in &c.members {
        match m {
            ClassMember::Property {
                default: Some(d), ..
            } => v.visit_expr(d),
            ClassMember::Property { .. } => {}
            ClassMember::Const { value, .. } => v.visit_expr(value),
            ClassMember::Method { func, .. } => v.visit_function(func),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    struct Counter {
        vars: usize,
        calls: usize,
        stmts: usize,
    }

    impl Visitor for Counter {
        fn visit_stmt(&mut self, s: &Stmt) {
            self.stmts += 1;
            walk_stmt(self, s);
        }
        fn visit_expr(&mut self, e: &Expr) {
            match e.kind {
                ExprKind::Var(_) => self.vars += 1,
                ExprKind::Call { .. } => self.calls += 1,
                _ => {}
            }
            walk_expr(self, e);
        }
    }

    #[test]
    fn visitor_reaches_nested_contexts() {
        let p = parse(
            "<?php
            function f($a) { if ($a) { g($a); } }
            class C { function m() { return h($this->x); } }
            $cb = function () use ($q) { return i($q); };
            foreach ($xs as $x) { echo j($x); }
            ",
        )
        .unwrap();
        let mut c = Counter {
            vars: 0,
            calls: 0,
            stmts: 0,
        };
        c.visit_program(&p);
        assert_eq!(c.calls, 4);
        assert!(c.vars >= 6);
        assert!(c.stmts >= 7);
    }

    #[test]
    fn visitor_sees_interp_parts() {
        let p = parse(r#"<?php $q = "SELECT $a FROM $b";"#).unwrap();
        let mut c = Counter {
            vars: 0,
            calls: 0,
            stmts: 0,
        };
        c.visit_program(&p);
        // $q target + $a + $b
        assert_eq!(c.vars, 3);
    }

    #[test]
    fn visitor_sees_switch_and_try() {
        let p = parse(
            "<?php
            switch ($m) { case 'a': f($x); break; default: g($y); }
            try { h($z); } catch (E $e) { i($e); } finally { j($w); }
            ",
        )
        .unwrap();
        let mut c = Counter {
            vars: 0,
            calls: 0,
            stmts: 0,
        };
        c.visit_program(&p);
        assert_eq!(c.calls, 5);
    }
}
