//! Bump arenas for the front end.
//!
//! Parsing and interning are allocation-bound on the cold path: a typical
//! PHP file produces thousands of small nodes and identifier strings. The
//! two arenas here turn those into a handful of chunk allocations:
//!
//! * [`Arena<T>`] — a typed bump arena handing out [`NodeId`] indices.
//!   Chunks never reallocate, so `&T` references obtained through
//!   [`Arena::get`] stay valid while the arena is alive.
//! * [`StrArena`] — a byte bump arena for immortal strings; it backs the
//!   global symbol interner in [`intern`](crate::intern), where "immortal"
//!   is exactly the lifetime contract `Symbol::as_str` needs.

/// Index of a node inside an [`Arena<T>`].
///
/// `NodeId`s are plain `u32` indices: 4 bytes instead of a pointer, `Copy`,
/// and meaningless without the arena that issued them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The raw index value.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

/// Number of elements per chunk. Chunks are allocated with exactly this
/// capacity and never grow, so element addresses are stable.
const CHUNK: usize = 256;

/// A typed bump arena: `alloc` appends, [`NodeId`] indexes, nothing is ever
/// freed individually. Allocating N nodes costs ~N/256 heap allocations
/// instead of N.
///
/// # Examples
///
/// ```
/// use wap_php::arena::Arena;
/// let mut arena = Arena::new();
/// let a = arena.alloc(10);
/// let b = arena.alloc(20);
/// assert_eq!(*arena.get(a) + *arena.get(b), 30);
/// assert_eq!(arena.len(), 2);
/// ```
pub struct Arena<T> {
    chunks: Vec<Vec<T>>,
    len: u32,
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of allocated nodes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Moves `value` into the arena and returns its id.
    pub fn alloc(&mut self, value: T) -> NodeId {
        if self
            .chunks
            .last()
            .map(|c| c.len() == CHUNK)
            .unwrap_or(true)
        {
            self.chunks.push(Vec::with_capacity(CHUNK));
        }
        self.chunks.last_mut().expect("chunk exists").push(value);
        let id = NodeId(self.len);
        self.len += 1;
        id
    }

    /// Borrows the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this arena.
    pub fn get(&self, id: NodeId) -> &T {
        let i = id.0 as usize;
        &self.chunks[i / CHUNK][i % CHUNK]
    }

    /// Mutably borrows the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this arena.
    pub fn get_mut(&mut self, id: NodeId) -> &mut T {
        let i = id.0 as usize;
        &mut self.chunks[i / CHUNK][i % CHUNK]
    }

    /// Iterates over all nodes in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> std::ops::Index<NodeId> for Arena<T> {
    type Output = T;
    fn index(&self, id: NodeId) -> &T {
        self.get(id)
    }
}

/// Minimum byte capacity of a [`StrArena`] chunk.
const STR_CHUNK: usize = 16 * 1024;

/// A byte bump arena for strings with stable addresses.
///
/// Each chunk is a `String` allocated with a fixed capacity and never grown,
/// so the heap buffer backing every returned slice is never moved or freed
/// while the arena lives. The interner keeps its `StrArena` in a
/// process-lifetime static, which is what justifies handing out
/// `&'static str` there.
pub struct StrArena {
    chunks: Vec<String>,
}

impl StrArena {
    /// Creates an empty string arena.
    pub fn new() -> Self {
        StrArena { chunks: Vec::new() }
    }

    /// Copies `s` into the arena and returns the stable copy.
    ///
    /// The returned reference is valid for as long as the arena itself; the
    /// `'a` lifetime ties it to the arena borrow. Callers that own the arena
    /// forever (the interner) may safely extend it.
    pub fn alloc<'a>(&'a mut self, s: &str) -> &'a str {
        let fits = self
            .chunks
            .last()
            .map(|c| c.capacity() - c.len() >= s.len())
            .unwrap_or(false);
        if !fits {
            self.chunks
                .push(String::with_capacity(STR_CHUNK.max(s.len())));
        }
        let chunk = self.chunks.last_mut().expect("chunk exists");
        let start = chunk.len();
        chunk.push_str(s);
        &chunk[start..]
    }

    /// Total bytes stored.
    pub fn bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }
}

impl Default for StrArena {
    fn default() -> Self {
        StrArena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_alloc_and_get() {
        let mut a = Arena::new();
        let ids: Vec<NodeId> = (0..1000).map(|i| a.alloc(i * 3)).collect();
        assert_eq!(a.len(), 1000);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*a.get(*id), i * 3);
            assert_eq!(a[*id], i * 3);
        }
    }

    #[test]
    fn arena_ids_are_dense_and_ordered() {
        let mut a = Arena::new();
        let x = a.alloc("x");
        let y = a.alloc("y");
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
        assert!(x < y);
    }

    #[test]
    fn arena_get_mut() {
        let mut a = Arena::new();
        let id = a.alloc(1);
        *a.get_mut(id) += 41;
        assert_eq!(*a.get(id), 42);
    }

    #[test]
    fn arena_iter_allocation_order() {
        let mut a = Arena::new();
        for i in 0..600 {
            a.alloc(i);
        }
        let collected: Vec<i32> = a.iter().copied().collect();
        assert_eq!(collected, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn arena_chunks_do_not_move_elements() {
        // Take a reference before forcing more chunk allocations; the
        // pointer must stay valid (we compare addresses, not re-borrow).
        let mut a = Arena::new();
        let first = a.alloc(7u64);
        let addr_before = a.get(first) as *const u64 as usize;
        for i in 0..10_000 {
            a.alloc(i);
        }
        let addr_after = a.get(first) as *const u64 as usize;
        assert_eq!(addr_before, addr_after);
    }

    #[test]
    fn str_arena_round_trips() {
        let mut sa = StrArena::new();
        let a = sa.alloc("hello").to_string();
        let b = sa.alloc("world").to_string();
        assert_eq!(a, "hello");
        assert_eq!(b, "world");
        assert_eq!(sa.bytes(), 10);
    }

    #[test]
    fn str_arena_oversized_string_gets_own_chunk() {
        let mut sa = StrArena::new();
        let big = "x".repeat(STR_CHUNK * 2);
        let got = sa.alloc(&big).to_string();
        assert_eq!(got.len(), STR_CHUNK * 2);
    }

    #[test]
    fn str_arena_addresses_are_stable() {
        let mut sa = StrArena::new();
        let p = sa.alloc("stable") as *const str;
        for i in 0..10_000 {
            sa.alloc(&format!("filler-{i}"));
        }
        // SAFETY: chunks are never reallocated or dropped while `sa` lives.
        let s = unsafe { &*p };
        assert_eq!(s, "stable");
    }
}
