//! Lexing and parsing error types.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// Error produced while lexing or parsing PHP source.
///
/// The parser is designed to accept the realistic subset of PHP used by the
/// corpus and the paper's examples; constructs outside that subset produce a
/// `ParseError` rather than a silent mis-parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates a parse error with a human-readable message anchored at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// The error message (lowercase, no trailing punctuation).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the source the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl Error for ParseError {}

/// Convenience alias for parse results.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::new("unexpected token", Span::new(10, 11, 3));
        assert_eq!(e.to_string(), "unexpected token at line 3");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(ParseError::new("x", Span::synthetic()));
        assert!(e.to_string().contains('x'));
    }
}
