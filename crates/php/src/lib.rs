//! # wap-php — PHP front end for the WAPe reproduction
//!
//! A from-scratch lexer, recursive-descent parser, AST, visitor framework,
//! and source printer for the realistic PHP subset exercised by web
//! applications: mixed HTML/PHP files, superglobals, string interpolation
//! (the dominant way SQL queries are built), heredocs, functions, classes
//! and methods, closures, and the full statement set.
//!
//! This crate plays the role of the ANTLR-generated parser in the original
//! WAP tool (Medeiros et al., DSN 2016): it produces the AST that all
//! vulnerability detectors walk, and — unlike the paper's tool — also prints
//! ASTs back to source so the code corrector can be verified by re-parsing.
//!
//! ## Quick start
//!
//! ```
//! use wap_php::{parse, print_program};
//!
//! let program = parse(r#"<?php
//!     $id = $_GET['id'];
//!     mysql_query("SELECT * FROM users WHERE id = $id");
//! "#)?;
//! assert_eq!(program.stmts.len(), 2);
//!
//! // Round-trip: printing always yields re-parseable PHP.
//! let printed = print_program(&program);
//! assert_eq!(parse(&printed)?, parse(&print_program(&parse(&printed)?))?);
//! # Ok::<(), wap_php::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod ast;
pub mod error;
pub mod fingerprint;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod visitor;

pub use arena::{Arena, NodeId};
pub use ast::{Expr, ExprKind, Program, Stmt, StmtKind};
pub use error::{ParseError, ParseResult};
pub use fingerprint::{content_hash, Blake2s};
pub use intern::Symbol;
pub use parser::parse;
pub use printer::{print_expr, print_program, print_stmt};
pub use span::Span;
pub use visitor::Visitor;
