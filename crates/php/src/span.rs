//! Byte-offset source spans with line tracking.
//!
//! Every token, statement, and expression produced by this crate carries a
//! [`Span`] locating it in the original source text. Spans are the contract
//! between the analyzer (which reports findings) and the code corrector
//! (which splices fixes back into the source), so they must always reference
//! valid byte offsets of the file they came from.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file, plus the
/// 1-based line number where the range starts.
///
/// # Examples
///
/// ```
/// use wap_php::Span;
/// let a = Span::new(0, 5, 1);
/// let b = Span::new(10, 12, 2);
/// let merged = a.merge(b);
/// assert_eq!(merged.start(), 0);
/// assert_eq!(merged.end(), 12);
/// assert_eq!(merged.line(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    start: u32,
    end: u32,
    line: u32,
}

impl Span {
    /// Creates a new span. `start`/`end` are byte offsets; `line` is the
    /// 1-based line of `start`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if `end < start`.
    pub fn new(start: u32, end: u32, line: u32) -> Self {
        debug_assert!(end >= start, "span end before start: {start}..{end}");
        Span { start, end, line }
    }

    /// A zero-length span at offset 0, line 1. Used for synthesized nodes.
    pub fn synthetic() -> Self {
        Span {
            start: 0,
            end: 0,
            line: 1,
        }
    }

    /// Byte offset of the first byte covered by the span.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Byte offset one past the last byte covered by the span.
    pub fn end(&self) -> u32 {
        self.end
    }

    /// 1-based line number of the span start.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`; the line is taken
    /// from whichever span starts first.
    pub fn merge(self, other: Span) -> Span {
        let (line, start) = if self.start <= other.start {
            (self.line, self.start)
        } else {
            (other.line, other.start)
        };
        Span {
            start,
            end: self.end.max(other.end),
            line,
        }
    }

    /// The source text covered by this span.
    ///
    /// Returns an empty string if the span is out of bounds for `src` (a
    /// synthesized node being sliced against the wrong file).
    pub fn slice<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start as usize..self.end as usize)
            .unwrap_or("")
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}@L{}", self.start, self.end, self.line)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_on_bounds() {
        let a = Span::new(3, 9, 1);
        let b = Span::new(12, 20, 4);
        let m1 = a.merge(b);
        let m2 = b.merge(a);
        assert_eq!(m1.start(), 3);
        assert_eq!(m1.end(), 20);
        assert_eq!(m2.start(), 3);
        assert_eq!(m2.end(), 20);
        assert_eq!(m1.line(), 1);
        assert_eq!(m2.line(), 1);
    }

    #[test]
    fn merge_nested() {
        let outer = Span::new(0, 50, 1);
        let inner = Span::new(10, 20, 2);
        assert_eq!(outer.merge(inner), outer);
    }

    #[test]
    fn slice_in_bounds() {
        let src = "hello world";
        let s = Span::new(6, 11, 1);
        assert_eq!(s.slice(src), "world");
    }

    #[test]
    fn slice_out_of_bounds_is_empty() {
        let s = Span::new(100, 200, 1);
        assert_eq!(s.slice("short"), "");
    }

    #[test]
    fn len_and_empty() {
        assert!(Span::new(5, 5, 1).is_empty());
        assert_eq!(Span::new(5, 9, 1).len(), 4);
        assert!(Span::synthetic().is_empty());
    }

    #[test]
    fn display_shows_line() {
        assert_eq!(Span::new(0, 1, 42).to_string(), "line 42");
    }
}
