//! Abstract syntax tree for the PHP subset.
//!
//! The AST mirrors the structure WAP's ANTLR grammar produced: statements
//! and expressions with source [`Span`]s, string interpolation decomposed
//! into expression parts, and user-defined functions/classes kept as
//! first-class nodes so the taint analyzer can build interprocedural
//! summaries.
//!
//! All nodes are plain data (`pub` fields) in the spirit of passive compound
//! structures; invariants are enforced by the parser that constructs them.

use crate::intern::Symbol;
use crate::span::Span;

/// A parsed PHP source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements, including inline HTML chunks.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Iterates over every user-defined function in the program, including
    /// class methods (flattened as `Class::method` names are *not* applied
    /// here; the visitor reports the class context separately).
    pub fn functions(&self) -> Vec<&Function> {
        let mut out = Vec::new();
        collect_functions(&self.stmts, &mut out);
        out
    }
}

fn collect_functions<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a Function>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Function(f) => {
                out.push(f);
                collect_functions(&f.body, out);
            }
            StmtKind::Class(c) => {
                for m in &c.members {
                    if let ClassMember::Method { func, .. } = m {
                        out.push(func);
                        collect_functions(&func.body, out);
                    }
                }
            }
            _ => {
                for b in s.kind.child_blocks() {
                    collect_functions(b, out);
                }
            }
        }
    }
}

/// A statement with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

impl Stmt {
    /// Creates a statement node.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression evaluated for effect (`$x = f();`).
    Expr(Expr),
    /// `echo e1, e2, ...;` — also produced by `<?= ... ?>`.
    Echo(Vec<Expr>),
    /// Raw HTML between PHP regions. Equivalent to an echo of a literal.
    InlineHtml(String),
    /// `if` / `elseif` / `else` chain.
    If {
        /// Condition of the leading `if`.
        cond: Expr,
        /// Then-branch body.
        then_branch: Vec<Stmt>,
        /// `elseif` arms in order.
        elseifs: Vec<(Expr, Vec<Stmt>)>,
        /// Optional `else` body.
        else_branch: Option<Vec<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body.
        body: Vec<Stmt>,
        /// Loop condition.
        cond: Expr,
    },
    /// C-style `for` loop.
    For {
        /// Initialization expressions.
        init: Vec<Expr>,
        /// Condition expressions (last one decides).
        cond: Vec<Expr>,
        /// Step expressions.
        step: Vec<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `foreach ($array as $key => $value) body`.
    Foreach {
        /// The iterated expression.
        array: Expr,
        /// Optional key variable.
        key: Option<Expr>,
        /// Whether the value is taken by reference.
        by_ref: bool,
        /// Value variable (or list pattern).
        value: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `switch (subject) { case ...: ... }`.
    Switch {
        /// The switched-on expression.
        subject: Expr,
        /// Case arms, `default` has `test == None`.
        cases: Vec<SwitchCase>,
    },
    /// `break [n];`
    Break(Option<i64>),
    /// `continue [n];`
    Continue(Option<i64>),
    /// `return [expr];`
    Return(Option<Expr>),
    /// `global $a, $b;`
    Global(Vec<Symbol>),
    /// `static $a = 1, $b;` inside a function.
    StaticVars(Vec<(Symbol, Option<Expr>)>),
    /// A user-defined function declaration.
    Function(Function),
    /// A class declaration.
    Class(Class),
    /// `include`/`require` and their `_once` variants.
    Include {
        /// Which include flavor.
        kind: IncludeKind,
        /// The path expression — a sensitive sink for file-inclusion classes.
        path: Expr,
    },
    /// `unset($a, $b);`
    Unset(Vec<Expr>),
    /// A `{ ... }` block.
    Block(Vec<Stmt>),
    /// `try { } catch (...) { } finally { }`.
    Try {
        /// Protected body.
        body: Vec<Stmt>,
        /// Catch clauses.
        catches: Vec<CatchClause>,
        /// Optional finally body.
        finally: Option<Vec<Stmt>>,
    },
    /// `throw expr;`
    Throw(Expr),
    /// Empty statement (`;`).
    Nop,
}

impl StmtKind {
    /// All directly nested statement blocks, used by generic walkers.
    pub fn child_blocks(&self) -> Vec<&[Stmt]> {
        match self {
            StmtKind::If {
                then_branch,
                elseifs,
                else_branch,
                ..
            } => {
                let mut v: Vec<&[Stmt]> = vec![then_branch];
                for (_, b) in elseifs {
                    v.push(b);
                }
                if let Some(e) = else_branch {
                    v.push(e);
                }
                v
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. }
            | StmtKind::Foreach { body, .. } => vec![body],
            StmtKind::Switch { cases, .. } => cases.iter().map(|c| c.body.as_slice()).collect(),
            StmtKind::Block(b) => vec![b],
            StmtKind::Try {
                body,
                catches,
                finally,
            } => {
                let mut v: Vec<&[Stmt]> = vec![body];
                for c in catches {
                    v.push(&c.body);
                }
                if let Some(f) = finally {
                    v.push(f);
                }
                v
            }
            _ => Vec::new(),
        }
    }
}

/// One arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// `case expr:` test; `None` for `default:`.
    pub test: Option<Expr>,
    /// The arm's statements (fallthrough is represented by an empty tail).
    pub body: Vec<Stmt>,
    /// Source location of the arm.
    pub span: Span,
}

/// A `catch (Type1 | Type2 $e)` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchClause {
    /// Caught exception class names.
    pub types: Vec<Symbol>,
    /// The bound variable, if any.
    pub var: Option<Symbol>,
    /// Handler body.
    pub body: Vec<Stmt>,
}

/// Which include-like construct was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncludeKind {
    /// `include`
    Include,
    /// `include_once`
    IncludeOnce,
    /// `require`
    Require,
    /// `require_once`
    RequireOnce,
}

impl IncludeKind {
    /// Source keyword for this include flavor.
    pub fn keyword(&self) -> &'static str {
        match self {
            IncludeKind::Include => "include",
            IncludeKind::IncludeOnce => "include_once",
            IncludeKind::Require => "require",
            IncludeKind::RequireOnce => "require_once",
        }
    }
}

/// A user-defined function or method.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (original spelling).
    pub name: Symbol,
    /// Declared parameters in order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Whether declared as `function &name`.
    pub by_ref: bool,
    /// Source location of the whole declaration.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (without `$`).
    pub name: Symbol,
    /// `&$param` — taken by reference.
    pub by_ref: bool,
    /// `...$param` — variadic.
    pub variadic: bool,
    /// Optional default value.
    pub default: Option<Expr>,
    /// Optional type hint as written.
    pub ty: Option<String>,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Class {
    /// Class name.
    pub name: Symbol,
    /// `extends` parent, if any.
    pub parent: Option<Symbol>,
    /// `implements` interfaces.
    pub interfaces: Vec<Symbol>,
    /// Properties, constants, and methods.
    pub members: Vec<ClassMember>,
    /// Source location.
    pub span: Span,
}

impl Class {
    /// Finds a method by case-insensitive name (PHP method names are
    /// case-insensitive).
    pub fn method(&self, name: &str) -> Option<&Function> {
        self.members.iter().find_map(|m| match m {
            ClassMember::Method { func, .. } if func.name.as_str().eq_ignore_ascii_case(name) => {
                Some(func)
            }
            _ => None,
        })
    }
}

/// Member visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Visibility {
    /// `public` (the default).
    #[default]
    Public,
    /// `protected`
    Protected,
    /// `private`
    Private,
}

/// A class member.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassMember {
    /// A property declaration.
    Property {
        /// Property name (without `$`).
        name: Symbol,
        /// Optional initializer.
        default: Option<Expr>,
        /// Visibility modifier.
        visibility: Visibility,
        /// Whether declared `static`.
        is_static: bool,
    },
    /// A class constant.
    Const {
        /// Constant name.
        name: Symbol,
        /// Constant value expression.
        value: Expr,
    },
    /// A method.
    Method {
        /// The method body as a function node.
        func: Function,
        /// Visibility modifier.
        visibility: Visibility,
        /// Whether declared `static`.
        is_static: bool,
    },
}

/// An expression with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// If this is a plain variable, returns its name.
    pub fn as_var_name(&self) -> Option<&'static str> {
        self.var_symbol().map(Symbol::as_str)
    }

    /// If this is a plain variable, returns its interned name.
    pub fn var_symbol(&self) -> Option<Symbol> {
        match &self.kind {
            ExprKind::Var(n) => Some(*n),
            _ => None,
        }
    }

    /// The root variable of an lvalue-ish chain: `$a['x']->y[0]` → `a`.
    pub fn root_var(&self) -> Option<&'static str> {
        self.root_var_symbol().map(Symbol::as_str)
    }

    /// Interned form of [`Expr::root_var`].
    pub fn root_var_symbol(&self) -> Option<Symbol> {
        match &self.kind {
            ExprKind::Var(n) => Some(*n),
            ExprKind::ArrayDim { base, .. } => base.root_var_symbol(),
            ExprKind::Prop { base, .. } => base.root_var_symbol(),
            _ => None,
        }
    }

    /// If this is a string literal (single-quoted or interpolation-free
    /// template), returns its value.
    pub fn as_str_lit(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Lit(Lit::Str(s)) => Some(s),
            _ => None,
        }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `$name`
    Var(Symbol),
    /// A literal value.
    Lit(Lit),
    /// A bare name: constant fetch or the callee of a direct call.
    Name(Symbol),
    /// Double-quoted/heredoc string with interpolation, decomposed into
    /// literal and variable parts (all parts are expressions).
    Interp(Vec<Expr>),
    /// `base[index]` — `index == None` for the push form `$a[] = ...`.
    ArrayDim {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index, absent in `$a[]`.
        index: Option<Box<Expr>>,
    },
    /// `base->name`
    Prop {
        /// Object expression.
        base: Box<Expr>,
        /// Property name.
        name: Symbol,
    },
    /// `Class::$name`
    StaticProp {
        /// Class name.
        class: Symbol,
        /// Property name (without `$`).
        name: Symbol,
    },
    /// `Class::NAME`
    ClassConst {
        /// Class name.
        class: Symbol,
        /// Constant name.
        name: Symbol,
    },
    /// `callee(args)` — callee is usually a [`ExprKind::Name`], but may be a
    /// variable (`$f()`) or any expression.
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// `target->method(args)`
    MethodCall {
        /// Receiver expression.
        target: Box<Expr>,
        /// Method name.
        method: Symbol,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// `Class::method(args)`
    StaticCall {
        /// Class name.
        class: Symbol,
        /// Method name.
        method: Symbol,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// `new Class(args)`
    New {
        /// Instantiated class name (dynamic `new $c` stores `"$c"`).
        class: Symbol,
        /// Constructor arguments.
        args: Vec<Expr>,
    },
    /// Assignment, including compound forms and by-reference.
    Assign {
        /// Assignment target (lvalue).
        target: Box<Expr>,
        /// Operator (`=`, `.=`, `+=`, ...).
        op: AssignOp,
        /// Assigned value.
        value: Box<Expr>,
        /// Whether this is `=&`.
        by_ref: bool,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `++$x`, `$x--`, ...
    IncDec {
        /// Prefix (`++$x`) vs postfix (`$x++`).
        pre: bool,
        /// Increment vs decrement.
        inc: bool,
        /// The mutated lvalue.
        target: Box<Expr>,
    },
    /// `cond ? then : else` — `then == None` is the short form `?:`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true (absent in `?:`).
        then: Option<Box<Expr>>,
        /// Value when false.
        otherwise: Box<Expr>,
    },
    /// `(int) expr` and friends.
    Cast {
        /// Target type.
        ty: CastType,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `isset($a, $b)`
    Isset(Vec<Expr>),
    /// `empty($a)`
    Empty(Box<Expr>),
    /// `array(...)` / `[...]`
    Array(Vec<ArrayItem>),
    /// `list($a, , $b) = ...` target.
    List(Vec<Option<Expr>>),
    /// Anonymous function.
    Closure {
        /// Parameters.
        params: Vec<Param>,
        /// `use (...)` captures: name + by-ref flag.
        uses: Vec<(Symbol, bool)>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `@expr` — error suppression.
    ErrorSuppress(Box<Expr>),
    /// `exit(expr)` / `die(expr)` — a sensitive construct for several
    /// classes and an error/exit symptom for the predictor.
    Exit(Option<Box<Expr>>),
    /// `print expr` (an expression in PHP).
    Print(Box<Expr>),
    /// `expr instanceof Class`
    InstanceOf {
        /// Tested expression.
        expr: Box<Expr>,
        /// Class name.
        class: Symbol,
    },
    /// `clone expr`
    Clone(Box<Expr>),
    /// `` `cmd` `` — backtick shell execution (an OS command injection
    /// sink when interpolated with tainted data).
    ShellExec(Vec<Expr>),
    /// `include`-as-expression (e.g. `$ok = include $path;`).
    IncludeExpr {
        /// Include flavor.
        kind: IncludeKind,
        /// Path expression.
        path: Box<Expr>,
    },
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (interpolation-free).
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`
    Null,
}

/// One element of an array literal.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayItem {
    /// Optional `key =>` part.
    pub key: Option<Expr>,
    /// Element value.
    pub value: Expr,
    /// `&$v` element.
    pub by_ref: bool,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `.=` — the string-append form central to query construction.
    Concat,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Mod,
    /// `??=`
    Coalesce,
}

impl AssignOp {
    /// Source spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Concat => ".=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Mod => "%=",
            AssignOp::Coalesce => "??=",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `.` — string concatenation; propagates taint from both sides.
    Concat,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `===`
    Identical,
    /// `!==`
    NotIdentical,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<=>`
    Spaceship,
    /// `&&` / `and`
    And,
    /// `||` / `or`
    Or,
    /// `xor`
    Xor,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `??`
    Coalesce,
}

impl BinOp {
    /// Source spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Concat => ".",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::NotEq => "!=",
            BinOp::Identical => "===",
            BinOp::NotIdentical => "!==",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Spaceship => "<=>",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Xor => "xor",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Coalesce => "??",
        }
    }

    /// Whether the operator always yields a boolean/number, i.e. kills
    /// string taint (comparisons and arithmetic cannot carry an injection
    /// payload into a string sink).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::NotEq
                | BinOp::Identical
                | BinOp::NotIdentical
                | BinOp::Lt
                | BinOp::Gt
                | BinOp::Le
                | BinOp::Ge
                | BinOp::Spaceship
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `+`
    Pos,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

impl UnOp {
    /// Source spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Pos => "+",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

/// Cast target types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastType {
    /// `(int)` — sanitizing for every string-injection class.
    Int,
    /// `(float)` / `(double)` — sanitizing like `(int)`.
    Float,
    /// `(string)`
    Str,
    /// `(bool)` — sanitizing (boolean cannot carry a payload).
    Bool,
    /// `(array)`
    Array,
    /// `(object)`
    Object,
    /// `(unset)`
    Unset,
}

impl CastType {
    /// Source spelling (parenthesized form).
    pub fn keyword(&self) -> &'static str {
        match self {
            CastType::Int => "int",
            CastType::Float => "float",
            CastType::Str => "string",
            CastType::Bool => "bool",
            CastType::Array => "array",
            CastType::Object => "object",
            CastType::Unset => "unset",
        }
    }

    /// Whether the cast neutralizes string-injection payloads.
    pub fn is_sanitizing(&self) -> bool {
        matches!(self, CastType::Int | CastType::Float | CastType::Bool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Expr {
        Expr::new(ExprKind::Var(name.into()), Span::synthetic())
    }

    #[test]
    fn root_var_walks_chains() {
        let e = Expr::new(
            ExprKind::ArrayDim {
                base: Box::new(Expr::new(
                    ExprKind::Prop {
                        base: Box::new(var("a")),
                        name: "b".into(),
                    },
                    Span::synthetic(),
                )),
                index: None,
            },
            Span::synthetic(),
        );
        assert_eq!(e.root_var(), Some("a"));
        assert_eq!(var("x").root_var(), Some("x"));
        assert_eq!(
            Expr::new(ExprKind::Lit(Lit::Null), Span::synthetic()).root_var(),
            None
        );
    }

    #[test]
    fn cast_sanitization_classification() {
        assert!(CastType::Int.is_sanitizing());
        assert!(CastType::Bool.is_sanitizing());
        assert!(!CastType::Str.is_sanitizing());
        assert!(!CastType::Array.is_sanitizing());
    }

    #[test]
    fn comparison_ops() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Spaceship.is_comparison());
        assert!(!BinOp::Concat.is_comparison());
        assert!(!BinOp::And.is_comparison());
    }

    #[test]
    fn child_blocks_of_if() {
        let mk = |k| Stmt::new(k, Span::synthetic());
        let s = StmtKind::If {
            cond: var("c"),
            then_branch: vec![mk(StmtKind::Nop)],
            elseifs: vec![(var("d"), vec![mk(StmtKind::Nop), mk(StmtKind::Nop)])],
            else_branch: Some(vec![]),
        };
        let blocks = s.child_blocks();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[1].len(), 2);
    }

    #[test]
    fn functions_collects_nested_and_methods() {
        let f_inner = Function {
            name: "inner".into(),
            params: vec![],
            body: vec![],
            by_ref: false,
            span: Span::synthetic(),
        };
        let f_outer = Function {
            name: "outer".into(),
            params: vec![],
            body: vec![Stmt::new(StmtKind::Function(f_inner), Span::synthetic())],
            by_ref: false,
            span: Span::synthetic(),
        };
        let method = Function {
            name: "run".into(),
            params: vec![],
            body: vec![],
            by_ref: false,
            span: Span::synthetic(),
        };
        let class = Class {
            name: "C".into(),
            parent: None,
            interfaces: vec![],
            members: vec![ClassMember::Method {
                func: method,
                visibility: Visibility::Public,
                is_static: false,
            }],
            span: Span::synthetic(),
        };
        let prog = Program {
            stmts: vec![
                Stmt::new(StmtKind::Function(f_outer), Span::synthetic()),
                Stmt::new(StmtKind::Class(class), Span::synthetic()),
            ],
        };
        let names: Vec<_> = prog.functions().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "run"]);
    }

    #[test]
    fn class_method_lookup_case_insensitive() {
        let method = Function {
            name: "Query".into(),
            params: vec![],
            body: vec![],
            by_ref: false,
            span: Span::synthetic(),
        };
        let class = Class {
            name: "wpdb".into(),
            parent: None,
            interfaces: vec![],
            members: vec![ClassMember::Method {
                func: method,
                visibility: Visibility::Public,
                is_static: false,
            }],
            span: Span::synthetic(),
        };
        assert!(class.method("query").is_some());
        assert!(class.method("QUERY").is_some());
        assert!(class.method("missing").is_none());
    }
}
