//! AST-to-source printer.
//!
//! Emits valid PHP that re-parses to the same AST (modulo spans). The
//! printer is deliberately conservative: nested compound expressions are
//! parenthesized so that operator precedence never has to be re-derived,
//! which makes `print ∘ parse ∘ print` a fixpoint — the property the fixer
//! relies on when it rewrites files.

use crate::ast::*;
use std::fmt::Write as _;

/// Prints a whole program as PHP source.
///
/// The output always starts with `<?php`; inline HTML chunks are emitted
/// between `?>` and `<?php` markers exactly as the parser understood them.
///
/// # Examples
///
/// ```
/// use wap_php::{parse, print_program};
/// let p = parse("<?php $x = 1 + 2;")?;
/// let src = print_program(&p);
/// // printing is a fixpoint: parse(print(p)) prints identically
/// assert_eq!(src, print_program(&parse(&src)?));
/// # Ok::<(), wap_php::ParseError>(())
/// ```
pub fn print_program(p: &Program) -> String {
    let mut pr = Printer::new();
    pr.out.push_str("<?php\n");
    for s in &p.stmts {
        pr.stmt(s);
    }
    if !pr.in_php {
        pr.out.push_str("<?php\n");
    }
    pr.out
}

/// Prints a single expression as PHP source (no trailing semicolon).
pub fn print_expr(e: &Expr) -> String {
    let mut pr = Printer::new();
    pr.expr(e);
    pr.out
}

/// Prints a single statement as PHP source.
pub fn print_stmt(s: &Stmt) -> String {
    let mut pr = Printer::new();
    pr.stmt(s);
    pr.out
}

struct Printer {
    out: String,
    indent: usize,
    in_php: bool,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
            in_php: true,
        }
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn ensure_php(&mut self) {
        if !self.in_php {
            self.out.push_str("<?php\n");
            self.in_php = true;
        }
    }

    fn line(&mut self, text: &str) {
        self.pad();
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::InlineHtml(h) => {
                if self.in_php {
                    self.out.push_str("?>");
                    self.in_php = false;
                }
                self.out.push_str(h);
            }
            other => {
                self.ensure_php();
                self.stmt_php(other);
            }
        }
    }

    fn stmt_php(&mut self, kind: &StmtKind) {
        match kind {
            StmtKind::InlineHtml(_) => unreachable!("handled by stmt"),
            StmtKind::Nop => self.line(";"),
            StmtKind::Expr(e) => {
                self.pad();
                self.expr(e);
                self.out.push_str(";\n");
            }
            StmtKind::Echo(items) => {
                self.pad();
                self.out.push_str("echo ");
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(e);
                }
                self.out.push_str(";\n");
            }
            StmtKind::If {
                cond,
                then_branch,
                elseifs,
                else_branch,
            } => {
                self.pad();
                self.out.push_str("if (");
                self.expr(cond);
                self.out.push_str(") {\n");
                self.block(then_branch);
                self.pad();
                self.out.push('}');
                for (c, b) in elseifs {
                    self.out.push_str(" elseif (");
                    self.expr(c);
                    self.out.push_str(") {\n");
                    self.block(b);
                    self.pad();
                    self.out.push('}');
                }
                if let Some(b) = else_branch {
                    self.out.push_str(" else {\n");
                    self.block(b);
                    self.pad();
                    self.out.push('}');
                }
                self.out.push('\n');
            }
            StmtKind::While { cond, body } => {
                self.pad();
                self.out.push_str("while (");
                self.expr(cond);
                self.out.push_str(") {\n");
                self.block(body);
                self.line("}");
            }
            StmtKind::DoWhile { body, cond } => {
                self.line("do {");
                self.block(body);
                self.pad();
                self.out.push_str("} while (");
                self.expr(cond);
                self.out.push_str(");\n");
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.pad();
                self.out.push_str("for (");
                self.expr_list(init);
                self.out.push_str("; ");
                self.expr_list(cond);
                self.out.push_str("; ");
                self.expr_list(step);
                self.out.push_str(") {\n");
                self.block(body);
                self.line("}");
            }
            StmtKind::Foreach {
                array,
                key,
                by_ref,
                value,
                body,
            } => {
                self.pad();
                self.out.push_str("foreach (");
                self.expr(array);
                self.out.push_str(" as ");
                if let Some(k) = key {
                    self.expr(k);
                    self.out.push_str(" => ");
                }
                if *by_ref {
                    self.out.push('&');
                }
                self.expr(value);
                self.out.push_str(") {\n");
                self.block(body);
                self.line("}");
            }
            StmtKind::Switch { subject, cases } => {
                self.pad();
                self.out.push_str("switch (");
                self.expr(subject);
                self.out.push_str(") {\n");
                self.indent += 1;
                for c in cases {
                    self.pad();
                    match &c.test {
                        Some(t) => {
                            self.out.push_str("case ");
                            self.expr(t);
                            self.out.push_str(":\n");
                        }
                        None => self.out.push_str("default:\n"),
                    }
                    self.block(&c.body);
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Break(n) => match n {
                Some(v) => self.line(&format!("break {v};")),
                None => self.line("break;"),
            },
            StmtKind::Continue(n) => match n {
                Some(v) => self.line(&format!("continue {v};")),
                None => self.line("continue;"),
            },
            StmtKind::Return(e) => {
                self.pad();
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e);
                }
                self.out.push_str(";\n");
            }
            StmtKind::Global(names) => {
                let list: Vec<String> = names.iter().map(|n| format!("${n}")).collect();
                self.line(&format!("global {};", list.join(", ")));
            }
            StmtKind::StaticVars(vars) => {
                self.pad();
                self.out.push_str("static ");
                for (i, (name, default)) in vars.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    let _ = write!(self.out, "${name}");
                    if let Some(d) = default {
                        self.out.push_str(" = ");
                        self.expr(d);
                    }
                }
                self.out.push_str(";\n");
            }
            StmtKind::Function(f) => self.function(f, None),
            StmtKind::Class(c) => self.class(c),
            StmtKind::Include { kind, path } => {
                self.pad();
                self.out.push_str(kind.keyword());
                self.out.push(' ');
                self.expr(path);
                self.out.push_str(";\n");
            }
            StmtKind::Unset(targets) => {
                self.pad();
                self.out.push_str("unset(");
                self.expr_list(targets);
                self.out.push_str(");\n");
            }
            StmtKind::Block(b) => {
                self.line("{");
                self.block(b);
                self.line("}");
            }
            StmtKind::Try {
                body,
                catches,
                finally,
            } => {
                self.line("try {");
                self.block(body);
                self.pad();
                self.out.push('}');
                for c in catches {
                    self.out.push_str(" catch (");
                    let types: Vec<&str> = c.types.iter().map(|t| t.as_str()).collect();
                    self.out.push_str(&types.join(" | "));
                    if let Some(v) = &c.var {
                        let _ = write!(self.out, " ${v}");
                    }
                    self.out.push_str(") {\n");
                    self.block(&c.body);
                    self.pad();
                    self.out.push('}');
                }
                if let Some(f) = finally {
                    self.out.push_str(" finally {\n");
                    self.block(f);
                    self.pad();
                    self.out.push('}');
                }
                self.out.push('\n');
            }
            StmtKind::Throw(e) => {
                self.pad();
                self.out.push_str("throw ");
                self.expr(e);
                self.out.push_str(";\n");
            }
        }
    }

    fn block(&mut self, stmts: &[Stmt]) {
        self.indent += 1;
        for s in stmts {
            self.stmt(s);
            self.ensure_php();
        }
        self.indent -= 1;
    }

    fn function(&mut self, f: &Function, modifiers: Option<&str>) {
        self.pad();
        if let Some(m) = modifiers {
            self.out.push_str(m);
            self.out.push(' ');
        }
        self.out.push_str("function ");
        if f.by_ref {
            self.out.push('&');
        }
        self.out.push_str(f.name.as_str());
        self.params(&f.params);
        self.out.push_str(" {\n");
        self.block(&f.body);
        self.line("}");
    }

    fn params(&mut self, params: &[Param]) {
        self.out.push('(');
        for (i, p) in params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            if let Some(ty) = &p.ty {
                self.out.push_str(ty);
                self.out.push(' ');
            }
            if p.by_ref {
                self.out.push('&');
            }
            if p.variadic {
                self.out.push_str("...");
            }
            let _ = write!(self.out, "${}", p.name);
            if let Some(d) = &p.default {
                self.out.push_str(" = ");
                self.expr(d);
            }
        }
        self.out.push(')');
    }

    fn class(&mut self, c: &Class) {
        self.pad();
        self.out.push_str("class ");
        self.out.push_str(c.name.as_str());
        if let Some(p) = &c.parent {
            let _ = write!(self.out, " extends {p}");
        }
        if !c.interfaces.is_empty() {
            let names: Vec<&str> = c.interfaces.iter().map(|i| i.as_str()).collect();
            let _ = write!(self.out, " implements {}", names.join(", "));
        }
        self.out.push_str(" {\n");
        self.indent += 1;
        for m in &c.members {
            match m {
                ClassMember::Property {
                    name,
                    default,
                    visibility,
                    is_static,
                } => {
                    self.pad();
                    self.out.push_str(visibility_kw(*visibility));
                    if *is_static {
                        self.out.push_str(" static");
                    }
                    let _ = write!(self.out, " ${name}");
                    if let Some(d) = default {
                        self.out.push_str(" = ");
                        self.expr(d);
                    }
                    self.out.push_str(";\n");
                }
                ClassMember::Const { name, value } => {
                    self.pad();
                    let _ = write!(self.out, "const {name} = ");
                    self.expr(value);
                    self.out.push_str(";\n");
                }
                ClassMember::Method {
                    func,
                    visibility,
                    is_static,
                } => {
                    let mods = if *is_static {
                        format!("{} static", visibility_kw(*visibility))
                    } else {
                        visibility_kw(*visibility).to_string()
                    };
                    self.function(func, Some(&mods));
                }
            }
        }
        self.indent -= 1;
        self.line("}");
    }

    fn expr_list(&mut self, es: &[Expr]) {
        for (i, e) in es.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.expr(e);
        }
    }

    /// Prints an expression, parenthesizing compound children.
    fn expr_paren(&mut self, e: &Expr) {
        if needs_parens(e) {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        } else {
            self.expr(e);
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Var(n) => {
                let _ = write!(self.out, "${n}");
            }
            ExprKind::Lit(l) => self.lit(l),
            ExprKind::Name(n) => self.out.push_str(n.as_str()),
            ExprKind::Interp(parts) => self.interp(parts),
            ExprKind::ShellExec(parts) => {
                self.out.push('`');
                let save = std::mem::take(&mut self.out);
                self.interp(parts);
                let body = std::mem::replace(&mut self.out, save);
                // interp() wraps in double quotes; strip them for backticks
                let inner = body
                    .strip_prefix('"')
                    .and_then(|b| b.strip_suffix('"'))
                    .unwrap_or(&body);
                self.out.push_str(inner);
                self.out.push('`');
            }
            ExprKind::ArrayDim { base, index } => {
                self.expr_paren(base);
                self.out.push('[');
                if let Some(i) = index {
                    self.expr(i);
                }
                self.out.push(']');
            }
            ExprKind::Prop { base, name } => {
                self.expr_paren(base);
                let _ = write!(self.out, "->{name}");
            }
            ExprKind::StaticProp { class, name } => {
                let _ = write!(self.out, "{class}::${name}");
            }
            ExprKind::ClassConst { class, name } => {
                let _ = write!(self.out, "{class}::{name}");
            }
            ExprKind::Call { callee, args } => {
                self.expr_paren(callee);
                self.out.push('(');
                self.expr_list(args);
                self.out.push(')');
            }
            ExprKind::MethodCall {
                target,
                method,
                args,
            } => {
                self.expr_paren(target);
                let _ = write!(self.out, "->{method}(");
                self.expr_list(args);
                self.out.push(')');
            }
            ExprKind::StaticCall {
                class,
                method,
                args,
            } => {
                let _ = write!(self.out, "{class}::{method}(");
                self.expr_list(args);
                self.out.push(')');
            }
            ExprKind::New { class, args } => {
                let _ = write!(self.out, "new {class}(");
                self.expr_list(args);
                self.out.push(')');
            }
            ExprKind::Assign {
                target,
                op,
                value,
                by_ref,
            } => {
                self.expr_paren(target);
                let _ = write!(self.out, " {}", op.symbol());
                if *by_ref {
                    self.out.push('&');
                }
                self.out.push(' ');
                self.expr_paren(value);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.expr_paren(lhs);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr_paren(rhs);
            }
            ExprKind::Unary { op, expr } => {
                self.out.push_str(op.symbol());
                self.expr_paren(expr);
            }
            ExprKind::IncDec { pre, inc, target } => {
                let sym = if *inc { "++" } else { "--" };
                if *pre {
                    self.out.push_str(sym);
                    self.expr_paren(target);
                } else {
                    self.expr_paren(target);
                    self.out.push_str(sym);
                }
            }
            ExprKind::Ternary {
                cond,
                then,
                otherwise,
            } => {
                self.expr_paren(cond);
                match then {
                    Some(t) => {
                        self.out.push_str(" ? ");
                        self.expr_paren(t);
                        self.out.push_str(" : ");
                    }
                    None => self.out.push_str(" ?: "),
                }
                self.expr_paren(otherwise);
            }
            ExprKind::Cast { ty, expr } => {
                let _ = write!(self.out, "({})", ty.keyword());
                self.expr_paren(expr);
            }
            ExprKind::Isset(es) => {
                self.out.push_str("isset(");
                self.expr_list(es);
                self.out.push(')');
            }
            ExprKind::Empty(e) => {
                self.out.push_str("empty(");
                self.expr(e);
                self.out.push(')');
            }
            ExprKind::Array(items) => {
                self.out.push_str("array(");
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    if let Some(k) = &it.key {
                        self.expr(k);
                        self.out.push_str(" => ");
                    }
                    if it.by_ref {
                        self.out.push('&');
                    }
                    self.expr(&it.value);
                }
                self.out.push(')');
            }
            ExprKind::List(items) => {
                self.out.push_str("list(");
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    if let Some(e) = it {
                        self.expr(e);
                    }
                }
                self.out.push(')');
            }
            ExprKind::Closure { params, uses, body } => {
                self.out.push_str("function ");
                self.params(params);
                if !uses.is_empty() {
                    self.out.push_str(" use (");
                    for (i, (name, by_ref)) in uses.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        if *by_ref {
                            self.out.push('&');
                        }
                        let _ = write!(self.out, "${name}");
                    }
                    self.out.push(')');
                }
                self.out.push_str(" {\n");
                self.block(body);
                self.pad();
                self.out.push('}');
            }
            ExprKind::ErrorSuppress(e) => {
                self.out.push('@');
                self.expr_paren(e);
            }
            ExprKind::Exit(arg) => {
                self.out.push_str("exit(");
                if let Some(a) = arg {
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::Print(e) => {
                self.out.push_str("print ");
                self.expr_paren(e);
            }
            ExprKind::InstanceOf { expr, class } => {
                self.expr_paren(expr);
                let _ = write!(self.out, " instanceof {class}");
            }
            ExprKind::Clone(e) => {
                self.out.push_str("clone ");
                self.expr_paren(e);
            }
            ExprKind::IncludeExpr { kind, path } => {
                self.out.push('(');
                self.out.push_str(kind.keyword());
                self.out.push(' ');
                self.expr(path);
                self.out.push(')');
            }
        }
    }

    fn lit(&mut self, l: &Lit) {
        match l {
            Lit::Int(v) => {
                let _ = write!(self.out, "{v}");
            }
            Lit::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            Lit::Str(s) => self.single_quoted(s),
            Lit::Bool(true) => self.out.push_str("true"),
            Lit::Bool(false) => self.out.push_str("false"),
            Lit::Null => self.out.push_str("null"),
        }
    }

    fn single_quoted(&mut self, s: &str) {
        self.out.push('\'');
        for ch in s.chars() {
            match ch {
                '\'' => self.out.push_str("\\'"),
                '\\' => self.out.push_str("\\\\"),
                other => self.out.push(other),
            }
        }
        self.out.push('\'');
    }

    fn interp(&mut self, parts: &[Expr]) {
        self.out.push('"');
        for p in parts {
            match &p.kind {
                ExprKind::Lit(Lit::Str(s)) => {
                    for ch in s.chars() {
                        match ch {
                            '"' => self.out.push_str("\\\""),
                            '\\' => self.out.push_str("\\\\"),
                            '$' => self.out.push_str("\\$"),
                            '\n' => self.out.push_str("\\n"),
                            '\t' => self.out.push_str("\\t"),
                            '\r' => self.out.push_str("\\r"),
                            '\0' => self.out.push_str("\\0"),
                            other => self.out.push(other),
                        }
                    }
                }
                ExprKind::Var(n) => {
                    let _ = write!(self.out, "{{${n}}}");
                }
                ExprKind::ArrayDim { base, index } => {
                    let name = base.as_var_name().unwrap_or("_");
                    let _ = write!(self.out, "{{${name}[");
                    match index.as_deref().map(|i| &i.kind) {
                        Some(ExprKind::Lit(Lit::Str(k))) => {
                            self.single_quoted(k);
                        }
                        Some(ExprKind::Lit(Lit::Int(i))) => {
                            let _ = write!(self.out, "{i}");
                        }
                        Some(ExprKind::Var(v)) => {
                            let _ = write!(self.out, "${v}");
                        }
                        _ => {}
                    }
                    self.out.push_str("]}");
                }
                ExprKind::Prop { base, name } => {
                    let obj = base.as_var_name().unwrap_or("_");
                    let _ = write!(self.out, "{{${obj}->{name}}}");
                }
                other => {
                    // non-canonical part: splice via concatenation-safe form
                    let _ = other;
                    self.out.push('"');
                    self.out.push_str(" . ");
                    self.expr_paren(p);
                    self.out.push_str(" . ");
                    self.out.push('"');
                }
            }
        }
        self.out.push('"');
    }
}

fn visibility_kw(v: Visibility) -> &'static str {
    match v {
        Visibility::Public => "public",
        Visibility::Protected => "protected",
        Visibility::Private => "private",
    }
}

/// Whether an expression must be parenthesized when used as an operand.
fn needs_parens(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::Binary { .. }
            | ExprKind::Assign { .. }
            | ExprKind::Ternary { .. }
            | ExprKind::Unary { .. }
            | ExprKind::Cast { .. }
            | ExprKind::InstanceOf { .. }
            | ExprKind::Print(_)
            | ExprKind::Clone(_)
            | ExprKind::IncludeExpr { .. }
            | ExprKind::New { .. }
            | ExprKind::Closure { .. }
            | ExprKind::IncDec { .. }
            | ExprKind::ErrorSuppress(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// Strips spans by comparing pretty-printed forms after a round trip.
    fn round_trip(src: &str) {
        let p1 = parse(src).unwrap_or_else(|e| panic!("initial parse: {e}"));
        let printed = print_program(&p1);
        let p2 =
            parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "printer not a fixpoint for:\n{src}");
    }

    #[test]
    fn round_trip_basics() {
        round_trip("<?php $x = 1; $y = 'a'; $z = $x + 2 * 3;");
        round_trip("<?php echo $a, 'b', 3;");
        round_trip(r#"<?php $q = "SELECT * FROM t WHERE id = $id AND n = {$row['n']}";"#);
    }

    #[test]
    fn round_trip_control_flow() {
        round_trip("<?php if ($a) { f(); } elseif ($b) { g(); } else { h(); }");
        round_trip("<?php while ($x) { $x--; } do { $y++; } while ($y < 3);");
        round_trip("<?php for ($i = 0; $i < 10; $i++) echo $i;");
        round_trip("<?php foreach ($a as $k => $v) { echo $v; }");
        round_trip("<?php switch ($m) { case 1: f(); break; default: g(); }");
    }

    #[test]
    fn round_trip_functions_and_classes() {
        round_trip("<?php function f(&$a, $b = 1) { return $a . $b; }");
        round_trip(
            "<?php class C extends B implements I { public $p = 1; const K = 'v'; public function m($x) { return $this->p; } }",
        );
        round_trip("<?php $cb = function ($x) use (&$a) { return $a($x); };");
    }

    #[test]
    fn round_trip_misc() {
        round_trip("<?php include 'a.php'; require_once 'b.php'; unset($x, $y[1]);");
        round_trip("<?php try { f(); } catch (E $e) { g(); } finally { h(); }");
        round_trip("<?php $a = array('k' => 1, 2); $b = isset($x) ? $x : null;");
        round_trip("<?php global $db; static $n = 0; throw new E('x');");
        round_trip("<?php $r = @f(); $v = (int)$_GET['i']; $w = $x ?? 'd';");
        round_trip("<?php $obj->m(1)->n($p); K::f($q); $o = new C($r);");
    }

    #[test]
    fn round_trip_html() {
        round_trip("<h1>t</h1><?php echo $x; ?><p>end</p>");
    }

    #[test]
    fn prints_escaped_strings() {
        let p = parse(r#"<?php $s = 'it\'s';"#).unwrap();
        let out = print_program(&p);
        assert!(out.contains("'it\\'s'"));
    }

    #[test]
    fn print_expr_standalone() {
        let p = parse("<?php f($x, 1);").unwrap();
        let crate::ast::StmtKind::Expr(e) = &p.stmts[0].kind else {
            panic!()
        };
        assert_eq!(print_expr(e), "f($x, 1)");
    }
}
