//! Token model produced by the [`lexer`](crate::lexer).

use crate::intern::Symbol;
use crate::span::Span;
use std::fmt;

/// One fragment of a double-quoted or heredoc string after interpolation
/// scanning.
///
/// PHP interpolates `$var`, `$var[index]`, `$var->prop` and the brace forms
/// `{$expr}` inside double-quoted strings; the lexer decomposes them so the
/// taint analyzer can track flows through string construction — the dominant
/// way SQL queries are built in real applications.
#[derive(Debug, Clone, PartialEq)]
pub enum StrPart {
    /// Literal text.
    Lit(String),
    /// `$name` — a simple variable interpolation.
    Var(Symbol),
    /// `$name[index]` or `{$name['index']}` — an array element.
    Index(Symbol, IndexKey),
    /// `$name->prop` or `{$name->prop}` — a property fetch.
    Prop(Symbol, Symbol),
}

/// The index used in an interpolated array fetch.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexKey {
    /// String key, e.g. `$_GET[id]` / `{$_GET['id']}`.
    Str(String),
    /// Integer key, e.g. `$row[0]`.
    Int(i64),
    /// Variable key, e.g. `$row[$i]`.
    Var(Symbol),
}

/// Kind of a lexical token.
///
/// Keywords are case-insensitive in PHP; the lexer folds them during
/// identifier scanning. Identifiers keep their original spelling.
/// Keyword and operator variants carry no payload and are named after
/// their source spelling (see [`TokenKind::describe`]).
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // ---- literals & names ----
    /// `$name` (the `$` is stripped).
    Variable(Symbol),
    /// Bare identifier: function/class/constant name.
    Ident(Symbol),
    /// Integer literal (decimal, hex `0x`, octal `0`).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string (escapes `\\` and `\'` already resolved).
    SingleStr(String),
    /// Double-quoted or heredoc string, decomposed into parts.
    TemplateStr(Vec<StrPart>),
    /// Backtick shell-execution string, decomposed into parts.
    ShellStr(Vec<StrPart>),
    /// Raw HTML outside `<?php ... ?>` regions.
    InlineHtml(String),

    // ---- keywords ----
    If,
    Else,
    Elseif,
    While,
    Do,
    For,
    Foreach,
    As,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Return,
    Function,
    Echo,
    Print,
    Global,
    Static,
    Include,
    IncludeOnce,
    Require,
    RequireOnce,
    New,
    Class,
    Interface,
    Extends,
    Implements,
    Public,
    Private,
    Protected,
    VarKw,
    Const,
    Isset,
    Unset,
    Empty,
    ListKw,
    ArrayKw,
    Exit,
    Try,
    Catch,
    Finally,
    Throw,
    Use,
    Namespace,
    InstanceOf,
    Clone,
    True,
    False,
    Null,
    AndKw,
    OrKw,
    XorKw,

    // ---- operators & punctuation ----
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Dot,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    DotAssign,
    PercentAssign,
    CoalesceAssign,
    Eq,
    NotEq,
    Identical,
    NotIdentical,
    Lt,
    Gt,
    Le,
    Ge,
    Spaceship,
    AndAnd,
    OrOr,
    Bang,
    Inc,
    Dec,
    Arrow,
    DoubleArrow,
    DoubleColon,
    Question,
    Colon,
    Coalesce,
    Comma,
    Semi,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    At,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Backslash,
    Ellipsis,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Variable(n) => format!("variable ${n}"),
            TokenKind::Ident(n) => format!("identifier `{n}`"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("float {v}"),
            TokenKind::SingleStr(_) | TokenKind::TemplateStr(_) => "string".to_string(),
            TokenKind::ShellStr(_) => "shell-exec string".to_string(),
            TokenKind::InlineHtml(_) => "inline html".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    /// Canonical source spelling for fixed tokens (keywords, operators).
    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::Elseif => "elseif",
            TokenKind::While => "while",
            TokenKind::Do => "do",
            TokenKind::For => "for",
            TokenKind::Foreach => "foreach",
            TokenKind::As => "as",
            TokenKind::Switch => "switch",
            TokenKind::Case => "case",
            TokenKind::Default => "default",
            TokenKind::Break => "break",
            TokenKind::Continue => "continue",
            TokenKind::Return => "return",
            TokenKind::Function => "function",
            TokenKind::Echo => "echo",
            TokenKind::Print => "print",
            TokenKind::Global => "global",
            TokenKind::Static => "static",
            TokenKind::Include => "include",
            TokenKind::IncludeOnce => "include_once",
            TokenKind::Require => "require",
            TokenKind::RequireOnce => "require_once",
            TokenKind::New => "new",
            TokenKind::Class => "class",
            TokenKind::Interface => "interface",
            TokenKind::Extends => "extends",
            TokenKind::Implements => "implements",
            TokenKind::Public => "public",
            TokenKind::Private => "private",
            TokenKind::Protected => "protected",
            TokenKind::VarKw => "var",
            TokenKind::Const => "const",
            TokenKind::Isset => "isset",
            TokenKind::Unset => "unset",
            TokenKind::Empty => "empty",
            TokenKind::ListKw => "list",
            TokenKind::ArrayKw => "array",
            TokenKind::Exit => "exit",
            TokenKind::Try => "try",
            TokenKind::Catch => "catch",
            TokenKind::Finally => "finally",
            TokenKind::Throw => "throw",
            TokenKind::Use => "use",
            TokenKind::Namespace => "namespace",
            TokenKind::InstanceOf => "instanceof",
            TokenKind::Clone => "clone",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Null => "null",
            TokenKind::AndKw => "and",
            TokenKind::OrKw => "or",
            TokenKind::XorKw => "xor",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Dot => ".",
            TokenKind::Assign => "=",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::StarAssign => "*=",
            TokenKind::SlashAssign => "/=",
            TokenKind::DotAssign => ".=",
            TokenKind::PercentAssign => "%=",
            TokenKind::CoalesceAssign => "??=",
            TokenKind::Eq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Identical => "===",
            TokenKind::NotIdentical => "!==",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::Spaceship => "<=>",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Bang => "!",
            TokenKind::Inc => "++",
            TokenKind::Dec => "--",
            TokenKind::Arrow => "->",
            TokenKind::DoubleArrow => "=>",
            TokenKind::DoubleColon => "::",
            TokenKind::Question => "?",
            TokenKind::Colon => ":",
            TokenKind::Coalesce => "??",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::At => "@",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Caret => "^",
            TokenKind::Tilde => "~",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::Backslash => "\\",
            TokenKind::Ellipsis => "...",
            _ => "?",
        }
    }

    /// Looks up the keyword token for an identifier, case-insensitively.
    /// Returns `None` for non-keywords.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        TokenKind::keyword_bytes(ident.as_bytes())
    }

    /// Allocation-free keyword lookup over raw identifier bytes: the
    /// case-folded copy lives in a stack buffer (no keyword is longer than
    /// 16 bytes), which keeps the lexer's per-identifier fast path free of
    /// heap traffic.
    pub fn keyword_bytes(ident: &[u8]) -> Option<TokenKind> {
        if ident.len() > 16 {
            return None;
        }
        let mut buf = [0u8; 16];
        for (i, b) in ident.iter().enumerate() {
            buf[i] = b.to_ascii_lowercase();
        }
        let lower = std::str::from_utf8(&buf[..ident.len()]).ok()?;
        Some(match lower {
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "elseif" => TokenKind::Elseif,
            "while" => TokenKind::While,
            "do" => TokenKind::Do,
            "for" => TokenKind::For,
            "foreach" => TokenKind::Foreach,
            "as" => TokenKind::As,
            "switch" => TokenKind::Switch,
            "case" => TokenKind::Case,
            "default" => TokenKind::Default,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "return" => TokenKind::Return,
            "function" => TokenKind::Function,
            "echo" => TokenKind::Echo,
            "print" => TokenKind::Print,
            "global" => TokenKind::Global,
            "static" => TokenKind::Static,
            "include" => TokenKind::Include,
            "include_once" => TokenKind::IncludeOnce,
            "require" => TokenKind::Require,
            "require_once" => TokenKind::RequireOnce,
            "new" => TokenKind::New,
            "class" => TokenKind::Class,
            "interface" => TokenKind::Interface,
            "extends" => TokenKind::Extends,
            "implements" => TokenKind::Implements,
            "public" => TokenKind::Public,
            "private" => TokenKind::Private,
            "protected" => TokenKind::Protected,
            "var" => TokenKind::VarKw,
            "const" => TokenKind::Const,
            "isset" => TokenKind::Isset,
            "unset" => TokenKind::Unset,
            "empty" => TokenKind::Empty,
            "list" => TokenKind::ListKw,
            "array" => TokenKind::ArrayKw,
            "exit" | "die" => TokenKind::Exit,
            "try" => TokenKind::Try,
            "catch" => TokenKind::Catch,
            "finally" => TokenKind::Finally,
            "throw" => TokenKind::Throw,
            "use" => TokenKind::Use,
            "namespace" => TokenKind::Namespace,
            "instanceof" => TokenKind::InstanceOf,
            "clone" => TokenKind::Clone,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "null" => TokenKind::Null,
            "and" => TokenKind::AndKw,
            "or" => TokenKind::OrKw,
            "xor" => TokenKind::XorKw,
            _ => return None,
        })
    }
}

/// A lexical token: a [`TokenKind`] plus its [`Span`].
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_case_insensitive() {
        assert_eq!(TokenKind::keyword("IF"), Some(TokenKind::If));
        assert_eq!(TokenKind::keyword("Function"), Some(TokenKind::Function));
        assert_eq!(TokenKind::keyword("die"), Some(TokenKind::Exit));
        assert_eq!(TokenKind::keyword("exit"), Some(TokenKind::Exit));
        assert_eq!(TokenKind::keyword("mysql_query"), None);
    }

    #[test]
    fn describe_variable() {
        assert_eq!(TokenKind::Variable("x".into()).describe(), "variable $x");
    }

    #[test]
    fn describe_operator() {
        assert_eq!(TokenKind::DoubleArrow.describe(), "`=>`");
        assert_eq!(TokenKind::Coalesce.describe(), "`??`");
    }

    #[test]
    fn token_display_uses_describe() {
        let t = Token::new(TokenKind::Semi, Span::synthetic());
        assert_eq!(t.to_string(), "`;`");
    }
}
