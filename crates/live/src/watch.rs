//! `wap watch`: poll a tree for changes and stream findings deltas.
//!
//! No OS file-watcher dependency: the watcher snapshots every `.php`
//! file's `(mtime, size)` on a poll interval and re-analyzes when the
//! snapshot differs. Bursts of writes (editors save in several syscalls;
//! builds touch many files) are debounced by re-snapshotting until the
//! tree holds still. Each re-analysis goes through the same incremental
//! pipeline a cold `wap` run uses — warm cache hits make the common
//! single-file edit cheap — and emits one `wap-watch-v1` NDJSON revision
//! ([`wap_report::delta`]) on stdout.
//!
//! Determinism: after any revision, [`Watcher::render_current`] returns
//! byte-for-byte what a cold CLI scan of the tree would print, and the
//! delta stream for a given edit sequence is identical at every
//! `--jobs` value and cache state.

use crate::metrics::LiveMetrics;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant, SystemTime};
use wap_core::cli::{build_tool, collect_php_files, CliOptions};
use wap_core::{AppReport, SourceOverlay, WapError, WapTool};
use wap_report::{compute_delta, render_delta_ndjson, Format, Phase};

/// What one `.php` file looked like at snapshot time.
type FileStamp = (SystemTime, u64);

/// A point-in-time picture of the watched tree.
pub type Snapshot = BTreeMap<PathBuf, FileStamp>;

/// Configuration for a watch session.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Directory (or single file) to watch.
    pub dir: PathBuf,
    /// How often to snapshot the tree.
    pub poll: Duration,
    /// After a change is seen, how long the tree must hold still before
    /// re-analysis runs.
    pub debounce: Duration,
    /// Re-emit every current finding on each revision (late-joining
    /// consumers can rebuild state), not just the delta.
    pub full: bool,
    /// Append CFG lint findings to each revision's report.
    pub lint: bool,
    /// Worker threads for the analysis runtime.
    pub jobs: Option<usize>,
    /// Persistent incremental cache directory.
    pub cache_dir: Option<PathBuf>,
}

impl WatchConfig {
    /// Watch `dir` with default pacing (poll 200 ms, debounce 150 ms).
    pub fn new(dir: impl Into<PathBuf>) -> WatchConfig {
        WatchConfig {
            dir: dir.into(),
            poll: Duration::from_millis(200),
            debounce: Duration::from_millis(150),
            full: false,
            lint: false,
            jobs: None,
            cache_dir: None,
        }
    }
}

/// A live watch session: snapshot state, the resident tool (with its warm
/// cache), and the previous revision's report for delta computation.
pub struct Watcher {
    config: WatchConfig,
    tool: WapTool,
    classes: Vec<wap_catalog::VulnClass>,
    snapshot: Snapshot,
    prev: AppReport,
    revision: u64,
    /// Edit-to-diagnostics latency for this session.
    pub metrics: LiveMetrics,
}

impl Watcher {
    /// Builds the resident tool (same construction as the CLI, so reports
    /// are byte-compatible) without scanning yet.
    ///
    /// # Errors
    ///
    /// Propagates tool-construction failures ([`WapError::Config`] etc.).
    pub fn new(config: WatchConfig) -> Result<Watcher, WapError> {
        let opts = CliOptions {
            paths: vec![config.dir.clone()],
            jobs: config.jobs,
            cache_dir: config.cache_dir.clone(),
            lint: config.lint,
            ..CliOptions::default()
        };
        let tool = build_tool(&opts)?;
        let classes = tool.catalog().classes().cloned().collect();
        Ok(Watcher {
            config,
            tool,
            classes,
            snapshot: Snapshot::new(),
            prev: AppReport::default(),
            revision: 0,
            metrics: LiveMetrics::new(),
        })
    }

    /// The revision counter (0 until the first scan).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Stamps every `.php` file currently under the watched root.
    ///
    /// # Errors
    ///
    /// Returns walk errors; files that vanish between the walk and the
    /// stat (editor rename-in-place) are simply absent from the snapshot
    /// and picked up next poll.
    pub fn take_snapshot(&self) -> Result<Snapshot, WapError> {
        let files = collect_php_files(&[self.config.dir.clone()])?;
        let mut snap = Snapshot::new();
        for f in files {
            if let Ok(meta) = std::fs::metadata(&f) {
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                snap.insert(f, (mtime, meta.len()));
            }
        }
        Ok(snap)
    }

    /// One test-driven poll step: snapshot, compare, re-analyze when the
    /// tree changed (or on the very first call). Returns the rendered
    /// delta NDJSON for the new revision, or `None` when nothing changed.
    ///
    /// # Errors
    ///
    /// Returns walk and read errors from the snapshot or re-scan.
    pub fn poll_once(&mut self) -> Result<Option<String>, WapError> {
        let snap = self.take_snapshot()?;
        if self.revision > 0 && snap == self.snapshot {
            return Ok(None);
        }
        self.snapshot = snap;
        self.rescan().map(Some)
    }

    /// Re-analyzes the tree unconditionally and advances the revision.
    /// The run is wrapped in a [`Phase::Live`] span and its latency lands
    /// in [`LiveMetrics`]; the returned NDJSON carries no timings.
    ///
    /// # Errors
    ///
    /// Returns read errors for files that disappear mid-scan.
    pub fn rescan(&mut self) -> Result<String, WapError> {
        let started = Instant::now();
        let sources = wap_core::collect_sources_with_overlay(
            &[self.config.dir.clone()],
            &SourceOverlay::new(),
        )?;
        let mut report = {
            let job = self.tool.obs().job();
            let _live = job.span(Phase::Live);
            let mut report = self.tool.analyze_sources(&sources);
            if self.config.lint {
                self.tool.apply_lint(&mut report, &sources);
            }
            report
        };
        report.duration = Duration::ZERO; // timing-free: deltas must not depend on wall-clock
        self.metrics.observe(started.elapsed());
        self.revision += 1;
        let delta = compute_delta(&self.prev, &report);
        let out = render_delta_ndjson(self.revision, &delta, &report, self.config.full);
        self.prev = report;
        Ok(out)
    }

    /// Renders the current revision's full report, byte-identical to what
    /// a cold `wap --format <fmt>` scan of the same tree prints (timing
    /// fields zeroed on both sides of that comparison).
    pub fn render_current(&self, format: Format) -> String {
        format.render(&self.prev, &self.classes)
    }

    /// The blocking watch loop: initial scan, then poll/debounce/rescan
    /// until `shutdown` flips. Every revision's NDJSON is written (and
    /// flushed) to `out`; transient walk errors are reported on stderr
    /// and retried on the next poll.
    ///
    /// # Errors
    ///
    /// Returns write errors on `out` (consumer went away) and a failed
    /// initial scan.
    pub fn run(&mut self, out: &mut dyn Write, shutdown: &AtomicBool) -> Result<(), WapError> {
        let first = self.poll_once()?.unwrap_or_default();
        self.emit(out, &first)?;
        while !shutdown.load(Ordering::SeqCst) {
            sleep_unless(self.config.poll, shutdown);
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let snap = match self.take_snapshot() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("wap watch: {e}");
                    continue;
                }
            };
            if snap == self.snapshot {
                continue;
            }
            // debounce: re-snapshot until the tree holds still
            let mut settled = snap;
            loop {
                sleep_unless(self.config.debounce, shutdown);
                match self.take_snapshot() {
                    Ok(next) if next == settled => break,
                    Ok(next) => settled = next,
                    Err(e) => {
                        eprintln!("wap watch: {e}");
                        break;
                    }
                }
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            self.snapshot = settled;
            match self.rescan() {
                Ok(lines) => self.emit(out, &lines)?,
                Err(e) => eprintln!("wap watch: {e}"),
            }
        }
        Ok(())
    }

    fn emit(&self, out: &mut dyn Write, lines: &str) -> Result<(), WapError> {
        out.write_all(lines.as_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| WapError::io("<stdout>", e))
    }
}

/// Sleeps `total` in short slices so shutdown stays responsive.
fn sleep_unless(total: Duration, shutdown: &AtomicBool) {
    let slice = Duration::from_millis(25);
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(slice.min(deadline.saturating_duration_since(Instant::now())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wap-watch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// mtime granularity on some filesystems is a full second; size
    /// changes guarantee the snapshot differs without sleeping.
    fn write_distinct(path: &PathBuf, body: &str) {
        std::fs::write(path, body).unwrap();
    }

    #[test]
    fn first_poll_scans_then_quiet_polls_skip() {
        let dir = tmpdir("first");
        write_distinct(&dir.join("v.php"), "<?php echo $_GET['v'];\n");
        let mut w = Watcher::new(WatchConfig::new(&dir)).unwrap();
        let out = w.poll_once().unwrap().expect("first poll always scans");
        assert!(out.contains("\"revision\":1"), "{out}");
        assert!(out.contains("\"kind\":\"added\""), "{out}");
        assert_eq!(w.poll_once().unwrap(), None, "unchanged tree: no revision");
        assert_eq!(w.revision(), 1);
        assert_eq!(w.metrics.revisions(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn edits_produce_add_and_remove_deltas() {
        let dir = tmpdir("edits");
        write_distinct(&dir.join("v.php"), "<?php echo $_GET['v'];\n");
        let mut w = Watcher::new(WatchConfig::new(&dir)).unwrap();
        w.poll_once().unwrap();
        // fix the vulnerability: the finding is removed
        write_distinct(&dir.join("v.php"), "<?php echo htmlentities($_GET['v']);\n");
        let out = w.poll_once().unwrap().expect("size change is a revision");
        assert!(out.contains("\"removed\":1"), "{out}");
        assert!(out.contains("\"kind\":\"removed\""), "{out}");
        // new vulnerable file: the finding is added
        write_distinct(&dir.join("w.php"), "<?php mysql_query('Q' . $_GET['q']);\n");
        let out = w.poll_once().unwrap().unwrap();
        assert!(out.contains("\"added\":1"), "{out}");
        // deleting it removes the finding again
        std::fs::remove_file(dir.join("w.php")).unwrap();
        let out = w.poll_once().unwrap().unwrap();
        assert!(out.contains("\"removed\":1"), "{out}");
        assert_eq!(w.revision(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_current_matches_cold_cli_scan() {
        let dir = tmpdir("coldeq");
        write_distinct(&dir.join("a.php"), "<?php echo $_GET['a'];\n");
        write_distinct(&dir.join("b.php"), "<?php echo 'safe';\n");
        let mut w = Watcher::new(WatchConfig::new(&dir)).unwrap();
        w.poll_once().unwrap();
        let opts = CliOptions {
            paths: vec![dir.clone()],
            ..CliOptions::default()
        };
        let (_, cold) = wap_core::cli::run(&opts).unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains(" ms)"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&w.render_current(Format::Text)), strip(&cold));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_mode_re_emits_findings_every_revision() {
        let dir = tmpdir("full");
        write_distinct(&dir.join("v.php"), "<?php echo $_GET['v'];\n");
        let mut config = WatchConfig::new(&dir);
        config.full = true;
        let mut w = Watcher::new(config).unwrap();
        w.poll_once().unwrap();
        // an unrelated safe file changes; the old finding is re-emitted
        write_distinct(&dir.join("ok.php"), "<?php echo 'fine';\n");
        let out = w.poll_once().unwrap().unwrap();
        assert!(out.contains("\"kind\":\"finding\""), "{out}");
        assert!(out.contains("\"unchanged\":1"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_loop_streams_and_honors_shutdown() {
        let dir = tmpdir("runloop");
        write_distinct(&dir.join("v.php"), "<?php echo $_GET['v'];\n");
        let mut config = WatchConfig::new(&dir);
        config.poll = Duration::from_millis(20);
        config.debounce = Duration::from_millis(10);
        let mut w = Watcher::new(config).unwrap();
        let shutdown = AtomicBool::new(false);
        let mut out = Vec::new();
        std::thread::scope(|s| {
            let shutdown = &shutdown;
            let handle = s.spawn(move || {
                let mut sink = std::io::Cursor::new(&mut out);
                w.run(&mut sink, shutdown).unwrap();
                out
            });
            // give the loop time for the initial revision plus one edit
            std::thread::sleep(Duration::from_millis(120));
            write_distinct(&dir.join("v.php"), "<?php echo htmlentities($_GET['v']);\n");
            std::thread::sleep(Duration::from_millis(400));
            shutdown.store(true, Ordering::SeqCst);
            let bytes = handle.join().unwrap();
            let text = String::from_utf8(bytes).unwrap();
            assert!(text.contains("\"revision\":1"), "{text}");
            assert!(text.contains("\"revision\":2"), "{text}");
            assert!(text.contains("\"kind\":\"removed\""), "{text}");
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
