//! Session metrics for the live front-ends.
//!
//! One histogram matters here: how long an edit takes to turn into fresh
//! diagnostics. Every re-analysis (a watch revision or an LSP document
//! event) records its wall-clock into `wap_live_reanalysis_seconds`,
//! labelled by front-end mode. Timings live *only* here — the NDJSON
//! delta stream and published diagnostics are timing-free so their bytes
//! stay deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wap_obs::Histogram;

/// Latency accounting for one live session.
#[derive(Debug, Default)]
pub struct LiveMetrics {
    /// Edit-to-diagnostics latency distribution.
    pub reanalysis: Histogram,
    revisions: AtomicU64,
}

impl LiveMetrics {
    /// A fresh session with the default latency buckets.
    pub fn new() -> LiveMetrics {
        LiveMetrics::default()
    }

    /// Records one completed re-analysis.
    pub fn observe(&self, elapsed: Duration) {
        self.reanalysis
            .observe_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        self.revisions.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of re-analyses recorded so far.
    pub fn revisions(&self) -> u64 {
        self.revisions.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition for this session. `mode` is
    /// the front-end label (`watch` or `lsp`).
    pub fn render(&self, mode: &str) -> String {
        let mut out = String::new();
        out.push_str("# TYPE wap_live_reanalysis_seconds histogram\n");
        self.reanalysis.render_into(
            &mut out,
            "wap_live_reanalysis_seconds",
            &format!("mode=\"{mode}\""),
        );
        out.push_str("# TYPE wap_live_revisions_total counter\n");
        out.push_str(&format!(
            "wap_live_revisions_total{{mode=\"{mode}\"}} {}\n",
            self.revisions()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_exposition() {
        let m = LiveMetrics::new();
        m.observe(Duration::from_millis(3));
        m.observe(Duration::from_millis(40));
        assert_eq!(m.revisions(), 2);
        let text = m.render("watch");
        assert!(
            text.contains("wap_live_reanalysis_seconds_bucket{mode=\"watch\",le=\"0.005\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("wap_live_reanalysis_seconds_count{mode=\"watch\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("wap_live_revisions_total{mode=\"watch\"} 2"),
            "{text}"
        );
    }
}
