//! The `wap watch` / `wap lsp` front ends: flag parsing, signal wiring,
//! exit codes.

use crate::lsp::{LspConfig, LspServer};
use crate::watch::{WatchConfig, Watcher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Help text for `wap watch`.
pub const WATCH_USAGE: &str = "\
wap watch — re-analyze a tree on every change, streaming findings deltas

USAGE:
    wap watch <DIR> [FLAGS]

FLAGS:
    --poll-ms <N>         snapshot interval in milliseconds (default 200)
    --debounce-ms <N>     quiet time required before re-analysis (default 150)
    --full                re-emit every current finding on each revision,
                          not just the added/removed delta
    --lint                include CFG lint findings in each revision
    --jobs <N>            worker threads (default: WAP_JOBS env, then all cores)
    --cache               enable the incremental cache at WAP_CACHE_DIR or .wap-cache/
    --cache-dir <DIR>     enable the incremental cache at DIR
    --help                show this message

OUTPUT (stdout, one JSON object per line, schema wap-watch-v1):
    {\"schema\":\"wap-watch-v1\",\"kind\":\"revision\",\"revision\":N,...counts...}
    {\"kind\":\"added\"|\"removed\",\"file\":...,\"line\":N,\"class\":...,\"sink\":...,\"real\":bool}

The delta stream is deterministic: it carries no timings and is identical
for every --jobs value and cache state. Re-analysis latency is recorded in
the wap_live_reanalysis_seconds histogram, printed to stderr on exit.
SIGTERM or Ctrl-C exits 0 after the current revision finishes.
";

/// Help text for `wap lsp`.
pub const LSP_USAGE: &str = "\
wap lsp — serve diagnostics to an editor over stdio (JSON-RPC 2.0 / LSP)

USAGE:
    wap lsp [FLAGS]

FLAGS:
    --lint                include CFG lint findings in published diagnostics
    --jobs <N>            worker threads (default: WAP_JOBS env, then all cores)
    --cache               enable the incremental cache at WAP_CACHE_DIR or .wap-cache/
    --cache-dir <DIR>     enable the incremental cache at DIR
    --queue <N>           re-analysis admission-queue capacity (default 32)
    --help                show this message

Implements initialize/initialized, textDocument/didOpen|didChange|didSave|
didClose (full document sync), publishDiagnostics, shutdown, and exit.
Unsaved buffers overlay the workspace, so diagnostics track what the editor
shows, not what disk holds. Exit code 0 after an orderly shutdown.
";

/// Parses `wap watch` arguments into a config (plus the help flag).
///
/// # Errors
///
/// Returns a message for unknown flags, malformed values, or a missing
/// directory operand.
pub fn parse_watch_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<(WatchConfig, bool), String> {
    let mut dir: Option<PathBuf> = None;
    let mut config = WatchConfig::new("");
    let mut help = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => help = true,
            "--full" => config.full = true,
            "--lint" => config.lint = true,
            "--poll-ms" => config.poll = Duration::from_millis(ms_value(&mut it, "--poll-ms")?),
            "--debounce-ms" => {
                config.debounce = Duration::from_millis(ms_value(&mut it, "--debounce-ms")?)
            }
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs needs a thread count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs needs a number, got {v}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                config.jobs = Some(n);
            }
            "--cache" => {
                if config.cache_dir.is_none() {
                    config.cache_dir = Some(wap_core::cli::default_cache_dir());
                }
            }
            "--cache-dir" => {
                let d = it.next().ok_or("--cache-dir needs a directory")?;
                config.cache_dir = Some(PathBuf::from(d));
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path if dir.is_none() => dir = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected extra operand {extra}")),
        }
    }
    if let Some(d) = dir {
        config.dir = d;
    } else if !help {
        return Err("wap watch needs a directory to watch (try --help)".to_string());
    }
    Ok((config, help))
}

fn ms_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    let v = it.next().ok_or(format!("{flag} needs milliseconds"))?;
    v.parse::<u64>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{flag} needs a positive number, got {v}"))
}

/// Parses `wap lsp` arguments.
///
/// # Errors
///
/// Returns a message for unknown flags or malformed values.
pub fn parse_lsp_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<(LspConfig, bool), String> {
    let mut config = LspConfig::default();
    let mut help = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => help = true,
            "--lint" => config.lint = true,
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs needs a thread count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs needs a number, got {v}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                config.jobs = Some(n);
            }
            "--cache" => {
                if config.cache_dir.is_none() {
                    config.cache_dir = Some(wap_core::cli::default_cache_dir());
                }
            }
            "--cache-dir" => {
                let d = it.next().ok_or("--cache-dir needs a directory")?;
                config.cache_dir = Some(PathBuf::from(d));
            }
            "--queue" => {
                let v = it.next().ok_or("--queue needs a capacity")?;
                config.queue_capacity = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--queue needs a positive number, got {v}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok((config, help))
}

/// Process-global shutdown flag, set from the signal handler.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        // only an atomic store: async-signal-safe
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Runs `wap watch` to completion; returns the process exit code
/// (0 graceful shutdown, 2 usage error, 3+ I/O error).
pub fn watch_main(args: Vec<String>) -> i32 {
    let (config, help) = match parse_watch_args(args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{WATCH_USAGE}");
            return 2;
        }
    };
    if help {
        print!("{WATCH_USAGE}");
        return 0;
    }
    let mut watcher = match Watcher::new(config) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return e.exit_code();
        }
    };
    install_signal_handlers();
    let stdout = std::io::stdout();
    let result = watcher.run(&mut stdout.lock(), &SIGNAL_SHUTDOWN);
    if watcher.metrics.revisions() > 0 {
        eprint!("{}", watcher.metrics.render("watch"));
    }
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    }
}

/// Runs `wap lsp` over stdio; returns the process exit code (0 after an
/// orderly shutdown, 1 otherwise, 2 usage error).
pub fn lsp_main(args: Vec<String>) -> i32 {
    let (config, help) = match parse_lsp_args(args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{LSP_USAGE}");
            return 2;
        }
    };
    if help {
        print!("{LSP_USAGE}");
        return 0;
    }
    install_signal_handlers();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    LspServer::new(config).run(&mut stdin.lock(), &mut stdout.lock())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn watch_args_parse() {
        let (c, help) = parse_watch_args(args(&[
            "app/",
            "--poll-ms",
            "50",
            "--debounce-ms",
            "25",
            "--full",
            "--lint",
            "--jobs",
            "4",
            "--cache-dir",
            "/tmp/wc",
        ]))
        .unwrap();
        assert!(!help);
        assert_eq!(c.dir, PathBuf::from("app/"));
        assert_eq!(c.poll, Duration::from_millis(50));
        assert_eq!(c.debounce, Duration::from_millis(25));
        assert!(c.full && c.lint);
        assert_eq!(c.jobs, Some(4));
        assert_eq!(c.cache_dir, Some(PathBuf::from("/tmp/wc")));
    }

    #[test]
    fn watch_args_errors() {
        assert!(parse_watch_args(args(&[])).is_err(), "dir is required");
        assert!(parse_watch_args(args(&["a", "b"])).is_err());
        assert!(parse_watch_args(args(&["a", "--poll-ms", "0"])).is_err());
        assert!(parse_watch_args(args(&["a", "--jobs", "0"])).is_err());
        assert!(parse_watch_args(args(&["a", "--frob"])).is_err());
        let (_, help) = parse_watch_args(args(&["--help"])).unwrap();
        assert!(help, "--help needs no directory");
    }

    #[test]
    fn lsp_args_parse() {
        let (c, help) = parse_lsp_args(args(&["--lint", "--jobs", "2", "--queue", "4"])).unwrap();
        assert!(!help);
        assert!(c.lint);
        assert_eq!(c.jobs, Some(2));
        assert_eq!(c.queue_capacity, 4);
        assert!(parse_lsp_args(args(&["--queue", "0"])).is_err());
        assert!(parse_lsp_args(args(&["positional"])).is_err());
        let (c, _) = parse_lsp_args(args(&[])).unwrap();
        assert_eq!(c.queue_capacity, 32);
    }

    #[test]
    fn usage_names_the_contract() {
        for needle in ["wap-watch-v1", "--debounce-ms", "deterministic", "SIGTERM"] {
            assert!(WATCH_USAGE.contains(needle), "watch usage missing {needle}");
        }
        for needle in ["didOpen", "publishDiagnostics", "shutdown", "--queue"] {
            assert!(LSP_USAGE.contains(needle), "lsp usage missing {needle}");
        }
    }
}
