//! # wap-live — live analysis front-ends
//!
//! Two ways to keep diagnostics current while sources change, both thin
//! shells over the exact pipeline the batch CLI and `wap serve` run:
//!
//! - **`wap watch <dir>`** ([`watch`]): polls the tree for mtime/size
//!   changes (no OS watcher dependency), debounces bursts, re-analyzes
//!   through the incremental path, and streams NDJSON findings *deltas*
//!   (`wap-watch-v1`) — one revision header plus one line per finding
//!   added or removed since the previous revision.
//! - **`wap lsp`** ([`lsp`]): a minimal stdio JSON-RPC 2.0 language
//!   server. Open editor buffers become a [`wap_core::SourceOverlay`]
//!   over the workspace; every document event re-analyzes and publishes
//!   `textDocument/publishDiagnostics`.
//!
//! ## The determinism contract
//!
//! Live modes inherit the repo-wide guarantee: a session that ends at
//! source state *S* reports exactly what a cold `wap` run over *S*
//! reports — same findings, same bytes, at any `--jobs` value and with
//! the cache cold or warm. Delta streams and diagnostics therefore carry
//! no timing fields; wall-clock goes only into the
//! `wap_live_reanalysis_seconds` histogram ([`metrics`]), printed to
//! stderr at session end.
//!
//! Both front-ends admit re-analysis work through the same bounded
//! [`wap_runtime::JobQueue`] that backs `wap serve`, and each revision
//! runs under a [`wap_obs::Phase::Live`] span.
//!
//! JSON-RPC parsing uses this crate's own zero-dependency [`json`]
//! module, so the LSP server works in environments where no JSON crate
//! is available.

#![warn(missing_docs)]

pub mod cli;
pub mod json;
pub mod lsp;
pub mod metrics;
pub mod watch;

pub use lsp::{diagnostics_json, LspConfig, LspServer};
pub use metrics::LiveMetrics;
pub use watch::{WatchConfig, Watcher};
