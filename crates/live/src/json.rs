//! A small self-contained JSON reader/writer for the JSON-RPC front-end.
//!
//! The workspace deliberately takes no external runtime dependencies, so
//! the LSP server parses its messages with this module instead of a JSON
//! crate. It supports the full JSON grammar the protocol needs (objects,
//! arrays, strings with escapes and `\uXXXX` pairs, numbers, booleans,
//! null); numbers are held as `f64`, which covers every id and position
//! an editor will send.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(src: &str) -> Result<Value, String> {
        let chars: Vec<char> = src.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer (truncated).
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|n| n as i64)
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON (object member order is
    /// preserved, so render ∘ parse is stable).
    pub fn render(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Str(s) => escape(s),
            Value::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Obj(members) => {
                let inner: Vec<String> = members
                    .iter()
                    .map(|(k, v)| format!("{}:{}", escape(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Renders `s` as a JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        let got = self.bump()?;
        if got != want {
            return Err(format!(
                "expected '{want}', got '{got}' at {}",
                self.pos - 1
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => Ok(Value::Str(self.string()?)),
            't' => self.literal("true", Value::Bool(true)),
            'f' => self.literal("false", Value::Bool(false)),
            'n' => self.literal("null", Value::Null),
            '-' | '0'..='9' => self.number(),
            c => Err(format!("unexpected '{c}' at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Value::Obj(members)),
                c => return Err(format!("expected ',' or '}}', got '{c}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Value::Arr(items)),
                c => return Err(format!("expected ',' or ']', got '{c}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // surrogate pair: a second \uXXXX must follow
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("unpaired surrogate".to_string());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    c => return Err(format!("bad escape '\\{c}'")),
                },
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            v = v * 16 + c.to_digit(16).ok_or(format!("bad hex digit '{c}'"))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some('0'..='9' | '.' | 'e' | 'E' | '+' | '-')) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_rpc_shapes() {
        let v = Value::parse(
            r#"{"jsonrpc":"2.0","id":1,"method":"initialize",
                "params":{"rootUri":"file:///a b","caps":[1,2.5,-3],"x":null,"y":true}}"#,
        )
        .unwrap();
        assert_eq!(v.get("jsonrpc").and_then(Value::as_str), Some("2.0"));
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(1));
        let params = v.get("params").unwrap();
        assert_eq!(
            params.get("rootUri").and_then(Value::as_str),
            Some("file:///a b")
        );
        let caps = params.get("caps").and_then(Value::as_arr).unwrap();
        assert_eq!(caps.len(), 3);
        assert_eq!(caps[1].as_f64(), Some(2.5));
        assert_eq!(caps[2].as_i64(), Some(-3));
        assert_eq!(params.get("x"), Some(&Value::Null));
        assert_eq!(params.get("y").and_then(Value::as_bool), Some(true));
        assert_eq!(params.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::parse(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA😀"));
        let rendered = Value::Str("x\ty\u{1}".to_string()).render();
        assert_eq!(rendered, "\"x\\ty\\u0001\"");
        assert_eq!(Value::parse(&rendered).unwrap().as_str(), Some("x\ty\u{1}"));
    }

    #[test]
    fn render_preserves_structure() {
        let src = r#"{"a":[1,"two",null],"b":{"c":false}}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(v.render(), src);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "tru",
            "01x",
            "{}extra",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad} should not parse");
        }
    }
}
