//! `wap lsp`: a minimal stdio Language Server Protocol front-end.
//!
//! Speaks JSON-RPC 2.0 over `Content-Length`-framed messages (the LSP
//! base protocol) and implements the small slice an editor needs for
//! diagnostics: `initialize`/`initialized`, the `textDocument/did*`
//! document-sync notifications (full sync), `shutdown`, and `exit`.
//! Everything else with an id gets a proper `MethodNotFound` error;
//! unknown notifications are ignored, as the spec requires.
//!
//! Open buffers live in a [`SourceOverlay`]: every document event
//! re-collects the workspace with unsaved contents shadowing disk,
//! re-analyzes through the shared pipeline, and publishes
//! `textDocument/publishDiagnostics` for every open document. Re-analysis
//! is admitted through the same bounded [`JobQueue`] that backs
//! `wap serve` — one executor thread owns the resident [`WapTool`] and
//! its warm cache — and each revision runs under a
//! [`Phase::Live`](wap_report::Phase::Live) span.
//!
//! Messages are processed strictly in arrival order (the server submits
//! one job and waits before reading the next message), so a whole
//! session's output bytes are a pure function of its input transcript —
//! at any worker count, cache on or off. Diagnostics carry no timings;
//! latency goes into [`LiveMetrics`] and is printed to stderr at exit.

use crate::json::{escape, Value};
use crate::metrics::LiveMetrics;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use wap_core::cli::{build_tool, CliOptions};
use wap_core::{collect_sources_with_overlay, AppReport, SourceOverlay, WapTool};
use wap_report::{LintSeverity, Phase, TOOL_NAME, TOOL_VERSION};
use wap_runtime::{JobQueue, JobStatus, SubmitError};

/// Configuration for an LSP session.
#[derive(Debug, Clone)]
pub struct LspConfig {
    /// Worker threads for the analysis runtime.
    pub jobs: Option<usize>,
    /// Persistent incremental cache directory.
    pub cache_dir: Option<PathBuf>,
    /// Append CFG lint findings to the published diagnostics.
    pub lint: bool,
    /// Admission-queue capacity for re-analysis jobs.
    pub queue_capacity: usize,
}

impl Default for LspConfig {
    fn default() -> LspConfig {
        LspConfig {
            jobs: None,
            cache_dir: None,
            lint: false,
            queue_capacity: 32,
        }
    }
}

/// One re-analysis job: the merged source list and the open documents to
/// publish for (uri → display path), in publish order.
struct AnalyzeRequest {
    sources: Vec<(String, String)>,
    open: Vec<(String, String)>,
}

/// The executor's answer: `(uri, rendered diagnostics array)` per open
/// document, in the same order.
type Published = Vec<(String, String)>;

/// A stdio LSP server over the shared analysis pipeline.
pub struct LspServer {
    config: LspConfig,
}

impl LspServer {
    /// A server with the given configuration (nothing runs until
    /// [`run`](LspServer::run)).
    pub fn new(config: LspConfig) -> LspServer {
        LspServer { config }
    }

    /// Serves one session over the given transport until `exit`, EOF, or
    /// a transport error; returns the process exit code (0 after an
    /// orderly `shutdown`, 1 otherwise).
    pub fn run(&self, reader: &mut dyn BufRead, writer: &mut dyn Write) -> i32 {
        let opts = CliOptions {
            jobs: self.config.jobs,
            cache_dir: self.config.cache_dir.clone(),
            lint: self.config.lint,
            ..CliOptions::default()
        };
        let tool = match build_tool(&opts) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("wap lsp: {e}");
                return 1;
            }
        };
        let queue: JobQueue<AnalyzeRequest, Published> = JobQueue::new(self.config.queue_capacity);
        let metrics = LiveMetrics::new();
        let lint = self.config.lint;
        let code = std::thread::scope(|s| {
            s.spawn(|| executor_loop(&tool, &queue, &metrics, lint));
            let mut session = Session {
                queue: &queue,
                overlay: SourceOverlay::new(),
                docs: BTreeMap::new(),
                root: None,
                shutdown_seen: false,
            };
            let code = session.serve(reader, writer);
            queue.drain(); // release the executor's next_task() wait
            code
        });
        if metrics.revisions() > 0 {
            eprint!("{}", metrics.render("lsp"));
        }
        code
    }
}

/// Drains the queue: one re-analysis per task, diagnostics rendered per
/// open document. Runs until the queue is drained and empty.
fn executor_loop(
    tool: &WapTool,
    queue: &JobQueue<AnalyzeRequest, Published>,
    metrics: &LiveMetrics,
    lint: bool,
) {
    while let Some(task) = queue.next_task() {
        let req = &task.payload;
        let started = Instant::now();
        let mut report = {
            let job = tool.obs().job();
            let _live = job.span(Phase::Live);
            let mut report = tool.analyze_sources(&req.sources);
            if lint {
                tool.apply_lint(&mut report, &req.sources);
            }
            report
        };
        report.duration = Duration::ZERO;
        metrics.observe(started.elapsed());
        let published = req
            .open
            .iter()
            .map(|(uri, path)| {
                let text = req
                    .sources
                    .iter()
                    .find(|(name, _)| name == path)
                    .map(|(_, src)| src.as_str())
                    .unwrap_or("");
                (uri.clone(), diagnostics_json(&report, path, text))
            })
            .collect();
        queue.complete(task.id, published);
    }
}

/// Per-session connection state, driven by the reader thread.
struct Session<'q> {
    queue: &'q JobQueue<AnalyzeRequest, Published>,
    overlay: SourceOverlay,
    /// uri → display path for every open document (BTreeMap: publish
    /// order is sorted and therefore deterministic).
    docs: BTreeMap<String, String>,
    root: Option<PathBuf>,
    shutdown_seen: bool,
}

impl Session<'_> {
    fn serve(&mut self, reader: &mut dyn BufRead, writer: &mut dyn Write) -> i32 {
        loop {
            let body = match read_message(reader) {
                Ok(Some(b)) => b,
                Ok(None) => return i32::from(!self.shutdown_seen), // EOF
                Err(e) => {
                    eprintln!("wap lsp: transport: {e}");
                    return 1;
                }
            };
            let msg = match Value::parse(&body) {
                Ok(m) => m,
                Err(e) => {
                    let err = format!(
                        "{{\"jsonrpc\":\"2.0\",\"id\":null,\"error\":{{\"code\":-32700,\"message\":{}}}}}",
                        escape(&format!("parse error: {e}"))
                    );
                    if write_message(writer, &err).is_err() {
                        return 1;
                    }
                    continue;
                }
            };
            let method = msg.get("method").and_then(Value::as_str).unwrap_or("");
            let id = msg.get("id");
            let params = msg.get("params");
            let outcome = match method {
                "initialize" => {
                    self.root = params.and_then(root_path);
                    let result = format!(
                        "{{\"capabilities\":{{\"textDocumentSync\":{{\"openClose\":true,\"change\":1,\"save\":{{\"includeText\":true}}}}}},\"serverInfo\":{{\"name\":{},\"version\":{}}}}}",
                        escape(TOOL_NAME),
                        escape(TOOL_VERSION)
                    );
                    respond(writer, id, &result)
                }
                "initialized" | "$/cancelRequest" => Ok(()),
                "shutdown" => {
                    self.shutdown_seen = true;
                    respond(writer, id, "null")
                }
                "exit" => return i32::from(!self.shutdown_seen),
                "textDocument/didOpen" => {
                    let doc = params.and_then(|p| p.get("textDocument"));
                    match (
                        doc.and_then(|d| d.get("uri")).and_then(Value::as_str),
                        doc.and_then(|d| d.get("text")).and_then(Value::as_str),
                    ) {
                        (Some(uri), Some(text)) => {
                            let path = uri_to_path(uri);
                            self.overlay.insert(&path, text);
                            self.docs.insert(uri.to_string(), path);
                            self.reanalyze_and_publish(writer)
                        }
                        _ => Ok(()),
                    }
                }
                "textDocument/didChange" => {
                    let uri = doc_uri(params);
                    let full_text = params
                        .and_then(|p| p.get("contentChanges"))
                        .and_then(Value::as_arr)
                        .and_then(|changes| {
                            // full sync (change: 1): take the last
                            // whole-document replacement
                            changes
                                .iter()
                                .rev()
                                .find(|c| c.get("range").is_none())
                                .and_then(|c| c.get("text"))
                                .and_then(Value::as_str)
                        });
                    match (uri, full_text) {
                        (Some(uri), Some(text)) => {
                            let path = uri_to_path(uri);
                            self.overlay.insert(&path, text);
                            self.docs.insert(uri.to_string(), path);
                            self.reanalyze_and_publish(writer)
                        }
                        _ => Ok(()),
                    }
                }
                "textDocument/didSave" => {
                    if let Some(uri) = doc_uri(params) {
                        let path = uri_to_path(uri);
                        if let Some(text) =
                            params.and_then(|p| p.get("text")).and_then(Value::as_str)
                        {
                            self.overlay.insert(&path, text);
                        } else {
                            // no text in the notification: disk is now the
                            // truth for this document
                            self.overlay.remove(&path);
                        }
                        self.reanalyze_and_publish(writer)
                    } else {
                        Ok(())
                    }
                }
                "textDocument/didClose" => {
                    if let Some(uri) = doc_uri(params) {
                        let path = uri_to_path(uri);
                        self.overlay.remove(&path);
                        self.docs.remove(uri);
                        // the spec's contract: clear diagnostics we own for
                        // a document the editor no longer shows
                        let clear = format!(
                            "{{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/publishDiagnostics\",\"params\":{{\"uri\":{},\"diagnostics\":[]}}}}",
                            escape(uri)
                        );
                        write_message(writer, &clear)
                            .and_then(|()| self.reanalyze_and_publish(writer))
                    } else {
                        Ok(())
                    }
                }
                _ if id.is_some() => {
                    let err = format!(
                        "{{\"jsonrpc\":\"2.0\",\"id\":{},\"error\":{{\"code\":-32601,\"message\":{}}}}}",
                        id.map(Value::render).unwrap_or_else(|| "null".to_string()),
                        escape(&format!("method not found: {method}"))
                    );
                    write_message(writer, &err)
                }
                _ => Ok(()), // unknown notification: ignore
            };
            if let Err(e) = outcome {
                eprintln!("wap lsp: transport: {e}");
                return 1;
            }
        }
    }

    /// Collects the workspace (overlay over disk), runs it through the
    /// queue, and publishes diagnostics for every open document.
    fn reanalyze_and_publish(&mut self, writer: &mut dyn Write) -> Result<(), std::io::Error> {
        let roots: Vec<PathBuf> = self.root.iter().cloned().collect();
        let sources = match collect_sources_with_overlay(&roots, &self.overlay) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("wap lsp: collect: {e}");
                return Ok(()); // transient (file vanished); keep serving
            }
        };
        let open: Vec<(String, String)> = self
            .docs
            .iter()
            .map(|(uri, path)| (uri.clone(), path.clone()))
            .collect();
        let id = loop {
            match self.queue.submit(AnalyzeRequest {
                sources: sources.clone(),
                open: open.clone(),
            }) {
                Ok(id) => break id,
                Err(SubmitError::Full) => std::thread::sleep(Duration::from_millis(10)),
                Err(SubmitError::Draining) => return Ok(()),
            }
        };
        if let Some(JobStatus::Done(published)) = self.queue.wait(id) {
            for (uri, diagnostics) in published {
                let note = format!(
                    "{{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/publishDiagnostics\",\"params\":{{\"uri\":{},\"diagnostics\":{diagnostics}}}}}",
                    escape(&uri)
                );
                write_message(writer, &note)?;
            }
        }
        Ok(())
    }
}

/// Writes one JSON-RPC response with the given result payload.
fn respond(writer: &mut dyn Write, id: Option<&Value>, result: &str) -> Result<(), std::io::Error> {
    let id = id.map(Value::render).unwrap_or_else(|| "null".to_string());
    write_message(
        writer,
        &format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"result\":{result}}}"),
    )
}

/// `params.textDocument.uri` of a document notification.
fn doc_uri(params: Option<&Value>) -> Option<&str> {
    params
        .and_then(|p| p.get("textDocument"))
        .and_then(|d| d.get("uri"))
        .and_then(Value::as_str)
}

/// The workspace root from `initialize` params (`rootUri` wins over the
/// deprecated `rootPath`).
fn root_path(params: &Value) -> Option<PathBuf> {
    if let Some(uri) = params.get("rootUri").and_then(Value::as_str) {
        return Some(PathBuf::from(uri_to_path(uri)));
    }
    params
        .get("rootPath")
        .and_then(Value::as_str)
        .map(PathBuf::from)
}

/// Converts a `file://` URI to a filesystem display path (percent-decoded).
/// Non-file URIs are kept verbatim so untitled buffers still get analyzed
/// under a stable name.
pub fn uri_to_path(uri: &str) -> String {
    let raw = uri
        .strip_prefix("file://")
        .map(|rest| rest.strip_prefix("localhost").unwrap_or(rest))
        .unwrap_or(uri);
    percent_decode(raw)
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
            if let Some(v) = hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                out.push(v);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads one `Content-Length`-framed message body. `Ok(None)` is a clean
/// EOF at a message boundary.
pub fn read_message(reader: &mut dyn BufRead) -> Result<Option<String>, String> {
    let mut content_length: Option<usize> = None;
    let mut first = true;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            if first {
                return Ok(None);
            }
            return Err("EOF inside message headers".to_string());
        }
        first = false;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad Content-Length: {value}"))?,
                );
            }
        }
    }
    let len = content_length.ok_or("missing Content-Length header")?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| "message body is not UTF-8".to_string())
}

/// Writes one `Content-Length`-framed message.
pub fn write_message(writer: &mut dyn Write, body: &str) -> Result<(), std::io::Error> {
    write!(writer, "Content-Length: {}\r\n\r\n{body}", body.len())?;
    writer.flush()
}

/// Converts a byte offset in `text` to an LSP position (0-based line,
/// UTF-16 code units from line start). Offsets past the end clamp to the
/// last position.
fn position(text: &str, byte_offset: usize) -> (u32, u32) {
    let offset = byte_offset.min(text.len());
    let mut line = 0u32;
    let mut line_start = 0usize;
    for (i, b) in text.as_bytes()[..offset].iter().enumerate() {
        if *b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    let col: u32 = text[line_start..offset]
        .chars()
        .map(|c| c.len_utf16() as u32)
        .sum();
    (line, col)
}

fn render_range(text: &str, start: usize, end: usize) -> String {
    let (sl, sc) = position(text, start);
    let (el, ec) = position(text, end.max(start));
    format!(
        "{{\"start\":{{\"line\":{sl},\"character\":{sc}}},\"end\":{{\"line\":{el},\"character\":{ec}}}}}"
    )
}

/// Renders the LSP diagnostics array for one file of a finished report:
/// taint findings first (severity Error for real vulnerabilities,
/// Information for predicted false positives), then lint findings
/// (Error/Warning/Note → 1/2/3), both in report order. `text` is the
/// file's analyzed contents, used for byte-offset → position mapping.
/// Pure and timing-free: the bytes depend only on the report.
pub fn diagnostics_json(report: &AppReport, file: &str, text: &str) -> String {
    let mut items = Vec::new();
    for f in report
        .findings
        .iter()
        .filter(|f| f.candidate.file.as_deref() == Some(file))
    {
        let range = render_range(
            text,
            f.candidate.sink_span.start() as usize,
            f.candidate.sink_span.end() as usize,
        );
        let (severity, suffix) = if f.is_real() {
            (1, "")
        } else {
            (3, " (predicted false positive)")
        };
        items.push(format!(
            "{{\"range\":{range},\"severity\":{severity},\"code\":{},\"source\":\"wap\",\"message\":{}}}",
            escape(f.candidate.class.acronym()),
            escape(&format!("{}{suffix}", f.candidate.headline()))
        ));
    }
    for l in report.lint.iter().filter(|l| l.file == file) {
        let range = render_range(text, l.span.start() as usize, l.span.end() as usize);
        let severity = match l.severity {
            LintSeverity::Error => 1,
            LintSeverity::Warning => 2,
            LintSeverity::Note => 3,
        };
        items.push(format!(
            "{{\"range\":{range},\"severity\":{severity},\"code\":{},\"source\":\"wap\",\"message\":{}}}",
            escape(&l.rule_id),
            escape(&l.message)
        ));
    }
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame(body: &str) -> String {
        format!("Content-Length: {}\r\n\r\n{body}", body.len())
    }

    /// Runs a canned transcript through a fresh server; returns
    /// (exit code, every framed body written).
    fn run_session(bodies: &[String]) -> (i32, Vec<String>) {
        let input: String = bodies.iter().map(|b| frame(b)).collect();
        let mut reader = Cursor::new(input.into_bytes());
        let mut output = Vec::new();
        let code = LspServer::new(LspConfig::default()).run(&mut reader, &mut output);
        let mut cursor = Cursor::new(output);
        let mut messages = Vec::new();
        while let Ok(Some(body)) = read_message(&mut cursor) {
            messages.push(body);
        }
        (code, messages)
    }

    #[test]
    fn framing_round_trips_and_rejects_garbage() {
        let mut buf = Vec::new();
        write_message(&mut buf, "{\"x\":1}").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_message(&mut r).unwrap().as_deref(), Some("{\"x\":1}"));
        assert_eq!(read_message(&mut r).unwrap(), None, "clean EOF");
        let mut r = Cursor::new(b"X-Other: 1\r\n\r\n".to_vec());
        assert!(read_message(&mut r).is_err(), "missing Content-Length");
        let mut r = Cursor::new(b"Content-Length: 99\r\n\r\n{}".to_vec());
        assert!(read_message(&mut r).is_err(), "truncated body");
    }

    #[test]
    fn positions_are_utf16_and_zero_based() {
        let text = "<?php\n$a = 'é😀';\necho $a;\n";
        assert_eq!(position(text, 0), (0, 0));
        let echo = text.find("echo").unwrap();
        assert_eq!(position(text, echo), (2, 0));
        // "$a = 'é" is 7 utf-16 units, '😀' is 2 more
        let after_emoji = text.find('😀').unwrap() + '😀'.len_utf8();
        assert_eq!(position(text, after_emoji), (1, 9));
        assert_eq!(position(text, 10_000).0, 3, "clamps to end");
    }

    #[test]
    fn uri_decoding() {
        assert_eq!(uri_to_path("file:///tmp/a%20b.php"), "/tmp/a b.php");
        assert_eq!(uri_to_path("file://localhost/x.php"), "/x.php");
        assert_eq!(uri_to_path("untitled:one"), "untitled:one");
    }

    #[test]
    fn session_initialize_diagnose_fix_shutdown() {
        let uri = "file:///live/v.php";
        let (code, messages) = run_session(&[
            r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}"#.to_string(),
            r#"{"jsonrpc":"2.0","method":"initialized","params":{}}"#.to_string(),
            format!(
                r#"{{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{{"textDocument":{{"uri":"{uri}","languageId":"php","version":1,"text":"<?php echo $_GET['v'];\n"}}}}}}"#
            ),
            format!(
                r#"{{"jsonrpc":"2.0","method":"textDocument/didChange","params":{{"textDocument":{{"uri":"{uri}","version":2}},"contentChanges":[{{"text":"<?php echo htmlentities($_GET['v']);\n"}}]}}}}"#
            ),
            r#"{"jsonrpc":"2.0","id":9,"method":"unknown/method","params":{}}"#.to_string(),
            r#"{"jsonrpc":"2.0","id":2,"method":"shutdown"}"#.to_string(),
            r#"{"jsonrpc":"2.0","method":"exit"}"#.to_string(),
        ]);
        assert_eq!(code, 0, "orderly shutdown exits 0");
        assert_eq!(messages.len(), 5, "{messages:#?}");

        let init = Value::parse(&messages[0]).unwrap();
        assert_eq!(init.get("id").and_then(Value::as_i64), Some(1));
        let sync = init
            .get("result")
            .and_then(|r| r.get("capabilities"))
            .and_then(|c| c.get("textDocumentSync"))
            .expect("capabilities.textDocumentSync");
        assert_eq!(sync.get("change").and_then(Value::as_i64), Some(1));
        assert_eq!(
            init.get("result")
                .and_then(|r| r.get("serverInfo"))
                .and_then(|s| s.get("name"))
                .and_then(Value::as_str),
            Some("wap-rs")
        );

        // didOpen: one diagnostic on the vulnerable buffer
        let open = Value::parse(&messages[1]).unwrap();
        assert_eq!(
            open.get("method").and_then(Value::as_str),
            Some("textDocument/publishDiagnostics")
        );
        let params = open.get("params").unwrap();
        assert_eq!(params.get("uri").and_then(Value::as_str), Some(uri));
        let diags = params.get("diagnostics").and_then(Value::as_arr).unwrap();
        assert_eq!(diags.len(), 1, "{:?}", messages[1]);
        assert_eq!(diags[0].get("severity").and_then(Value::as_i64), Some(1));
        assert_eq!(diags[0].get("code").and_then(Value::as_str), Some("XSS"));
        assert_eq!(diags[0].get("source").and_then(Value::as_str), Some("wap"));
        let start = diags[0].get("range").and_then(|r| r.get("start")).unwrap();
        assert_eq!(start.get("line").and_then(Value::as_i64), Some(0));

        // didChange with the sanitized buffer: diagnostics clear
        let fixed = Value::parse(&messages[2]).unwrap();
        let diags = fixed
            .get("params")
            .and_then(|p| p.get("diagnostics"))
            .and_then(Value::as_arr)
            .unwrap();
        assert!(diags.is_empty(), "{:?}", messages[2]);

        // unknown request gets MethodNotFound with the echoed id
        let err = Value::parse(&messages[3]).unwrap();
        assert_eq!(err.get("id").and_then(Value::as_i64), Some(9));
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_i64),
            Some(-32601)
        );

        // shutdown answers null
        let bye = Value::parse(&messages[4]).unwrap();
        assert_eq!(bye.get("id").and_then(Value::as_i64), Some(2));
        assert_eq!(bye.get("result"), Some(&Value::Null));
    }

    #[test]
    fn did_close_clears_diagnostics_and_exit_without_shutdown_fails() {
        let uri = "file:///live/w.php";
        let (code, messages) = run_session(&[
            r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}"#.to_string(),
            format!(
                r#"{{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{{"textDocument":{{"uri":"{uri}","text":"<?php echo $_GET['q'];\n"}}}}}}"#
            ),
            format!(
                r#"{{"jsonrpc":"2.0","method":"textDocument/didClose","params":{{"textDocument":{{"uri":"{uri}"}}}}}}"#
            ),
            r#"{"jsonrpc":"2.0","method":"exit"}"#.to_string(),
        ]);
        assert_eq!(code, 1, "exit without shutdown exits 1");
        // init response, didOpen publish, then the didClose clear
        assert_eq!(messages.len(), 3, "{messages:#?}");
        let clear = Value::parse(&messages[2]).unwrap();
        let diags = clear
            .get("params")
            .and_then(|p| p.get("diagnostics"))
            .and_then(Value::as_arr)
            .unwrap();
        assert!(diags.is_empty());
    }

    #[test]
    fn diagnostics_json_orders_findings_then_lint() {
        let text = "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n";
        let opts = CliOptions {
            lint: true,
            ..CliOptions::default()
        };
        let tool = build_tool(&opts).unwrap();
        let sources = vec![("q.php".to_string(), text.to_string())];
        let mut report = tool.analyze_sources(&sources);
        tool.apply_lint(&mut report, &sources);
        let rendered = diagnostics_json(&report, "q.php", text);
        let parsed = Value::parse(&rendered).unwrap();
        let items = parsed.as_arr().unwrap();
        assert!(items.len() >= 2, "finding + lint expected: {rendered}");
        assert_eq!(items[0].get("code").and_then(Value::as_str), Some("SQLI"));
        assert!(items
            .iter()
            .any(|d| d.get("code").and_then(Value::as_str) == Some(wap_cfg_rule())));
        // every range is on the sink line (line 2, 0-based)
        assert_eq!(
            items[0]
                .get("range")
                .and_then(|r| r.get("start"))
                .and_then(|s| s.get("line"))
                .and_then(Value::as_i64),
            Some(2)
        );
        // a file with no findings renders the empty array
        assert_eq!(diagnostics_json(&report, "other.php", ""), "[]");
    }

    fn wap_cfg_rule() -> &'static str {
        "WAP-LINT-TAINTED-SINK"
    }
}
