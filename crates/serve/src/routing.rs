//! Fleet job routing: deciding which replica owns a scan.
//!
//! When `wap serve` runs with `--peers`, every replica must agree on which
//! one owns a given scan so warm cache entries concentrate instead of
//! being duplicated N ways. Ownership uses rendezvous (highest-random-
//! weight) hashing: each peer's weight for a key is a [`Blake2s`] digest
//! of `peer \n key`, and the lexicographically largest digest wins. Adding
//! or removing one peer only moves the keys that hashed to it — no ring
//! state, no coordination, and every replica computes the same answer
//! from the same `--peers` list.
//!
//! The scan key itself is content-addressed ([`scan_key`]): file names and
//! content digests, order-independent. Two replicas receiving the same
//! tree — by upload or by `?path=` over a shared mount — derive the same
//! key and therefore the same owner.

use wap_php::fingerprint::{fields_hash, Blake2s};

/// Content-addressed identity of one scan: the sorted `(name, content)`
/// pairs, each reduced to `name \n blake2s(content)`. Independent of
/// upload order, request framing, and replica-local paths inside names
/// only when callers normalize them (the service scans what it is given).
pub fn scan_key(sources: &[(String, String)]) -> String {
    let mut fields: Vec<String> = sources
        .iter()
        .map(|(name, contents)| format!("{name}\n{}", Blake2s::hash_hex(contents.as_bytes())))
        .collect();
    fields.sort();
    fields_hash(fields)
}

/// The peer that owns `key` under rendezvous hashing, or `None` when the
/// peer list is empty. Every replica with the same list picks the same
/// winner; ties (identical URLs listed twice) resolve to the first.
pub fn owner<'a>(peers: &'a [String], key: &str) -> Option<&'a String> {
    peers.iter().max_by_key(|peer| {
        (
            Blake2s::hash_hex(format!("{peer}\n{key}").as_bytes()),
            // invert the index so max_by_key's last-wins tie break picks
            // the FIRST occurrence of a duplicated URL
            std::cmp::Reverse(peers.iter().position(|p| p == *peer)),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srcs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(n, c)| (n.to_string(), c.to_string()))
            .collect()
    }

    #[test]
    fn scan_key_is_order_independent_and_content_sensitive() {
        let a = scan_key(&srcs(&[("a.php", "<?php 1;"), ("b.php", "<?php 2;")]));
        let b = scan_key(&srcs(&[("b.php", "<?php 2;"), ("a.php", "<?php 1;")]));
        assert_eq!(a, b, "upload order must not matter");
        let c = scan_key(&srcs(&[("a.php", "<?php 1;"), ("b.php", "<?php 3;")]));
        assert_ne!(a, c, "content change must move the key");
        let d = scan_key(&srcs(&[("a.php", "<?php 1;"), ("c.php", "<?php 2;")]));
        assert_ne!(a, d, "rename must move the key");
    }

    #[test]
    fn owner_is_deterministic_and_total() {
        let peers: Vec<String> = ["http://a:1", "http://b:2", "http://c:3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(owner(&[], "k"), None);
        let first = owner(&peers, "some-key").unwrap();
        for _ in 0..10 {
            assert_eq!(owner(&peers, "some-key").unwrap(), first);
        }
        // a reordered list elects the same owner (set semantics)
        let mut shuffled = peers.clone();
        shuffled.rotate_left(1);
        assert_eq!(owner(&shuffled, "some-key").unwrap(), first);
    }

    #[test]
    fn keys_spread_across_peers() {
        let peers: Vec<String> = (0..4).map(|i| format!("http://replica-{i}:80")).collect();
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            seen.insert(owner(&peers, &format!("key-{i}")).unwrap().clone());
        }
        assert_eq!(seen.len(), peers.len(), "64 keys should reach all 4 peers");
    }

    #[test]
    fn removing_a_peer_only_moves_its_keys() {
        let peers: Vec<String> = (0..4).map(|i| format!("http://replica-{i}:80")).collect();
        let keys: Vec<String> = (0..64).map(|i| format!("key-{i}")).collect();
        let before: Vec<&String> = keys.iter().map(|k| owner(&peers, k).unwrap()).collect();
        let survivor_list: Vec<String> = peers[..3].to_vec();
        for (k, old) in keys.iter().zip(&before) {
            let new = owner(&survivor_list, k).unwrap();
            if **old != peers[3] {
                assert_eq!(&new, old, "{k} moved although its owner survived");
            }
        }
    }
}
