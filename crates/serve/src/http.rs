//! A deliberately small HTTP/1.1 layer: parse one request from a stream,
//! write one response, close the connection.
//!
//! The service needs exactly the subset implemented here — request line,
//! headers, `Content-Length` bodies, and `Connection: close` responses.
//! There is no keep-alive, no chunked transfer coding, and no TLS; a
//! reverse proxy owns those concerns in a real deployment.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on an accepted request body (tarball uploads included).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Upper bound on the request line plus all header lines.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// The raw request target exactly as sent (path + query, undecoded) —
    /// what a redirect must echo into `Location` to preserve the request.
    pub target: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Decoded query parameters, last occurrence wins.
    pub query: HashMap<String, String>,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// A decoded query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Returns a human-readable message for malformed or oversized requests;
/// the caller turns it into a `400`.
pub fn read_request<S: Read>(stream: S) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading request line: {e}"))?;
    head_bytes += line.len();
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("request line has no target")?;
    let version = parts.next().ok_or("request line has no version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version}"));
    }
    let target = target.to_string();
    let (path, query) = parse_target(&target)?;

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader
            .read_line(&mut h)
            .map_err(|e| format!("reading header: {e}"))?;
        head_bytes += h.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err("request head too large".to_string());
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (name, value) = h.split_once(':').ok_or_else(|| format!("bad header {h}"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| format!("bad content-length {value}"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(format!(
                    "body of {content_length} bytes exceeds the {MAX_BODY_BYTES} byte limit"
                ));
            }
        }
        headers.push((name, value));
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("reading body: {e}"))?;
    }
    Ok(Request {
        method,
        target,
        path,
        query,
        headers,
        body,
    })
}

/// Splits a request target into a decoded path and query map.
fn parse_target(target: &str) -> Result<(String, HashMap<String, String>), String> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    let mut query = HashMap::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.insert(percent_decode(k)?, percent_decode(v)?);
        }
    }
    Ok((path, query))
}

/// Decodes `%XX` escapes and `+`-as-space.
pub fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated percent escape in {s}"))?;
                let hex = std::str::from_utf8(hex).map_err(|_| "bad percent escape")?;
                let v = u8::from_str_radix(hex, 16)
                    .map_err(|_| format!("bad percent escape %{hex}"))?;
                out.push(v);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("target {s} is not UTF-8"))
}

/// Writes one response and flushes. `extra_headers` are appended verbatim
/// (e.g. `("Retry-After", "1")`).
pub fn write_response<W: Write>(
    mut w: W,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// The standard reason phrase for the statuses this service emits.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        307 => "Temporary Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_with_query() {
        let raw = b"GET /v1/scan?path=%2Ftmp%2Fapp&format=sarif HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/v1/scan?path=%2Ftmp%2Fapp&format=sarif");
        assert_eq!(req.path, "/v1/scan");
        assert_eq!(req.query_param("path"), Some("/tmp/app"));
        assert_eq!(req.query_param("format"), Some("sarif"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let raw = b"POST /v1/scan HTTP/1.1\r\nContent-Length: 5\r\nAccept: application/json\r\n\r\nhellotrailing";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("Accept"), Some("application/json"));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(read_request(&b""[..]).is_err());
        assert!(read_request(&b"GET\r\n\r\n"[..]).is_err());
        assert!(read_request(&b"GET / SPDY/3\r\n\r\n"[..]).is_err());
        assert!(read_request(&b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..]).is_err());
        assert!(read_request(&b"POST / HTTP/1.1\r\nContent-Length: pony\r\n\r\n"[..]).is_err());
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(read_request(huge.as_bytes()).is_err());
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("a+b%20c").unwrap(), "a b c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "text/plain",
            b"busy\n",
            &[("Retry-After", "1")],
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{s}");
        assert!(s.contains("Retry-After: 1\r\n"), "{s}");
        assert!(s.contains("Content-Length: 5\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\nbusy\n"), "{s}");
    }
}
