//! # wap-serve — the resident analysis service
//!
//! Scanning from a cold process pays parser/committee warm-up and an empty
//! incremental cache on every invocation. This crate keeps the whole
//! pipeline resident instead: one long-lived [`wap_core::WapTool`] — one
//! trained false-positive committee, one warm [`wap_core::cache`] store —
//! shared by every scan over plain HTTP/1.1 on `std::net::TcpListener`.
//! Like `wap-runtime` and `wap-cache`, the crate is dependency-free: no
//! async runtime, no HTTP framework, no TLS (a reverse proxy's job).
//!
//! ## Endpoints
//!
//! | Endpoint | Behavior |
//! |---|---|
//! | `POST /v1/scan` | Scan a server-local path (`?path=`) or an uploaded ustar archive (request body). Renders text/JSON/NDJSON/SARIF per `?format=` or `Accept`. `?async=1` returns `202` + job id immediately. `?lint=1` appends the CFG lint pass; `?rules=pack[@version],…` joins installed rule packs into it (implies lint; unknown packs answer `400`); `?fail_on=none|fpp|vuln|lint` answers `422` when the policy fails the report (default `none`: always `200`). With `--peers`, scans whose content key another replica owns are answered `307` ([`routing`]). |
//! | `POST /v1/batch` | Scan many apps in one request (tar grouped by top-level dir, or a manifest of server paths), streaming one NDJSON line per app ([`batch`]). |
//! | `GET /v1/rules` | List the rule packs installed under the server's pack store (`--rules-dir`): name, version, fingerprint, rule count. |
//! | `GET/PUT/HEAD /v1/cache/{key}` | The peer-served cache: fetch, push, or probe one framed entry — what `--cache-peer` on another replica talks to. |
//! | `GET /v1/jobs/{id}` | Poll an async job: small JSON while queued/running, the rendered report once done. |
//! | `GET /healthz` | Liveness: `200 ok` (also while draining). |
//! | `GET /metrics` | Prometheus text exposition ([`metrics`]). |
//!
//! Admission control is a bounded queue: a full queue answers `429` with
//! `Retry-After`, and once graceful shutdown begins new scans get `503`
//! while queued and in-flight scans still finish.
//!
//! Scans render through `wap-report`, the same renderers the CLI uses, and
//! the runtime guarantees bit-identical findings at any worker count — so
//! a server response is byte-identical to `wap --format json` over the
//! same tree (JSON/NDJSON/SARIF formats exclude wall-clock timings).

#![warn(missing_docs)]

pub mod batch;
pub mod cli;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod routing;
pub mod tar;

pub use cli::cli_main;

use metrics::Metrics;
use queue::{JobQueue, JobStatus, ScanOutcome, ScanRequest, SubmitError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wap_cache::{valid_key, CacheStore, RemoteBackend};
use wap_catalog::VulnClass;
use wap_core::cli::FailOn;
use wap_core::{Runtime, ToolConfig, WapError, WapTool};
use wap_report::Format;

/// How the accept loop polls for the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Server configuration (the `wap serve` flags).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Total analysis worker budget; `None` falls back to the `WAP_JOBS`
    /// environment variable, then all cores. The budget is partitioned
    /// across [`ServeConfig::workers`] concurrent scans.
    pub jobs: Option<usize>,
    /// Incremental cache root shared by every scan; `None` disables the
    /// disk cache (an in-memory cache still keeps repeat scans warm).
    pub cache_dir: Option<PathBuf>,
    /// Bounded queue capacity; submissions past it are answered `429`.
    pub queue_capacity: usize,
    /// Executor threads — scans analyzed concurrently.
    pub workers: usize,
    /// Base URL of a peer replica whose cache serves as a remote tier:
    /// misses read through to it, and new entries replicate back
    /// asynchronously. Any peer failure degrades to the local/cold path.
    pub cache_peer: Option<String>,
    /// The full fleet membership (this replica included) for consistent-
    /// hash job routing; scans whose key another peer owns are answered
    /// `307` with that peer in `Location`. Empty disables routing.
    pub peers: Vec<String>,
    /// This replica's own URL as it appears in [`ServeConfig::peers`] —
    /// required whenever `peers` is non-empty.
    pub advertise: Option<String>,
    /// Rule-pack store served by `GET /v1/rules` and consulted for
    /// `?rules=` references; `None` falls back to the `WAP_RULES_DIR`
    /// environment variable, then `.wap-rules/`.
    pub rules_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            jobs: None,
            cache_dir: None,
            queue_capacity: 32,
            workers: 2,
            cache_peer: None,
            peers: Vec::new(),
            advertise: None,
            rules_dir: None,
        }
    }
}

/// State shared by the accept loop, connection handlers, and executors.
pub(crate) struct Shared {
    pub(crate) tool: WapTool,
    /// Twin of `tool` with the interprocedural value analysis on,
    /// serving `?values=1` scans. Same cache store (the config
    /// fingerprint keeps the key spaces disjoint), same trained
    /// committee (memoized per process), so the second resident tool
    /// costs one catalog build.
    pub(crate) tool_values: WapTool,
    pub(crate) classes: Vec<VulnClass>,
    pub(crate) queue: JobQueue,
    pub(crate) metrics: Metrics,
    pub(crate) rules: wap_rules::Store,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
    /// `(peers, advertise)` when fleet routing is on.
    routing: Option<(Vec<String>, String)>,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

/// Remote control for a running [`Server`]: request graceful shutdown from
/// another thread (or a signal watcher).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Begins graceful shutdown: stop accepting, finish queued and
    /// in-flight scans, then return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Binds the listener and builds the resident tool (training the
    /// false-positive committee once, opening the shared cache once).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors; rejects inconsistent fleet flags
    /// (`--peers` without `--advertise`, or an advertise URL missing from
    /// the peer list) as `InvalidInput`.
    pub fn bind(config: &ServeConfig) -> io::Result<Server> {
        let routing = match (&config.peers[..], &config.advertise) {
            ([], _) => None,
            (_, None) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "--peers needs --advertise <URL> naming this replica",
                ));
            }
            (peers, Some(adv)) => {
                if !peers.contains(adv) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("--advertise {adv} is not in the --peers list"),
                    ));
                }
                Some((peers.to_vec(), adv.clone()))
            }
        };
        let listener = TcpListener::bind(&config.addr)?;
        let workers = config.workers.max(1);
        // every concurrent scan gets an equal slice of the job budget, so
        // `workers` simultaneous scans never oversubscribe it
        let per_scan = Runtime::from_config(config.jobs).partition(workers);
        let tool_config = ToolConfig::builder().jobs(per_scan.jobs()).build();
        let mut tool = WapTool::new(tool_config);
        let mut tool_values = WapTool::new(
            ToolConfig::builder()
                .jobs(per_scan.jobs())
                .values(true)
                .build(),
        );
        // the cache is composed here, not via ToolConfig: the local tier
        // is the configured dir (or process memory), and --cache-peer
        // stacks a remote read-through/write-back tier on top
        let store = match &config.cache_dir {
            Some(dir) => CacheStore::open(dir),
            None => CacheStore::in_memory(),
        };
        let store = match &config.cache_peer {
            Some(peer) => {
                let backend = RemoteBackend::new(peer)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
                store.with_remote(Arc::new(backend))
            }
            None => store,
        };
        tool.set_cache_store(store.clone());
        tool_values.set_cache_store(store);
        let classes: Vec<VulnClass> = tool.catalog().classes().cloned().collect();
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                tool,
                tool_values,
                classes,
                queue: JobQueue::new(config.queue_capacity),
                metrics: Metrics::default(),
                rules: wap_rules::Store::new(
                    config
                        .rules_dir
                        .clone()
                        .unwrap_or_else(wap_rules::default_rules_dir),
                ),
                shutdown: AtomicBool::new(false),
                open_connections: AtomicUsize::new(0),
                routing,
            }),
            workers,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures from the socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for requesting shutdown from another thread.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures from the socket.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            shared: self.shared.clone(),
            addr: self.listener.local_addr()?,
        })
    }

    /// Runs the accept loop until shutdown is requested, then drains:
    /// queued and in-flight scans finish, executors join, and open
    /// connections get a grace period to flush.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut executors = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let shared = self.shared.clone();
            executors.push(std::thread::spawn(move || executor_loop(&shared)));
        }

        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = self.shared.clone();
                    self.shared.open_connections.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        handle_connection(&shared, stream);
                        shared.open_connections.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // graceful drain: no new admissions, but everything admitted runs
        self.shared.queue.drain();
        for ex in executors {
            let _ = ex.join();
        }
        // give handlers that are writing responses a moment to finish
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.shared.open_connections.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(ACCEPT_POLL);
        }
        Ok(())
    }
}

/// One executor: claim scans, analyze on the shared tool, render, record.
fn executor_loop(shared: &Shared) {
    while let Some(task) = shared.queue.next_task() {
        shared.metrics.record_queue_wait(task.submitted.elapsed());
        let scan = &task.payload;
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tool = if scan.values {
                &shared.tool_values
            } else {
                &shared.tool
            };
            let mut report = tool.analyze_sources(&scan.sources);
            if scan.lint {
                tool.apply_lint_with(&mut report, &scan.sources, &scan.packs)
                    .expect("pack rules are validated when the pack is parsed");
            }
            let body = scan.format.render(&report, &shared.classes);
            let failing = scan.fail_on.exit_code(&report) != 0;
            (report, body, failing)
        }));
        match run {
            Ok((report, body, failing)) => {
                shared.metrics.record_report(&report);
                shared.queue.complete(
                    task.id,
                    ScanOutcome {
                        content_type: scan.format.content_type(),
                        body,
                        failing,
                    },
                );
            }
            Err(_) => {
                Metrics::inc(&shared.metrics.jobs_failed);
                shared.queue.fail(task.id, "scan panicked".to_string());
            }
        }
    }
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match http::read_request(&stream) {
        Ok(r) => r,
        Err(msg) => {
            Metrics::inc(&shared.metrics.bad_requests);
            let _ = http::write_response(
                &stream,
                400,
                "text/plain; charset=utf-8",
                format!("bad request: {msg}\n").as_bytes(),
                &[],
            );
            return;
        }
    };
    if request.method == "POST" && request.path == "/v1/batch" {
        // batch responses stream line by line; the handler owns the socket
        batch::handle_batch(shared, &request, &stream);
        return;
    }
    let (status, content_type, body, extra): (u16, &str, Vec<u8>, Vec<(&str, String)>) =
        route(shared, &request);
    let extra_refs: Vec<(&str, &str)> = extra.iter().map(|(n, v)| (*n, v.as_str())).collect();
    let _ = http::write_response(&stream, status, content_type, &body, &extra_refs);
}

/// Status, content type, body bytes, extra headers. Bodies are bytes, not
/// text, because `/v1/cache` serves binary cache frames.
type RouteResponse = (u16, &'static str, Vec<u8>, Vec<(&'static str, String)>);

/// Dispatches one parsed request.
fn route(shared: &Shared, req: &http::Request) -> RouteResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "text/plain; charset=utf-8", "ok\n".into(), vec![]),
        ("GET", "/metrics") => (
            200,
            "text/plain; version=0.0.4",
            shared
                .metrics
                .render(shared.queue.depth(), shared.queue.in_flight())
                .into_bytes(),
            vec![],
        ),
        ("POST", "/v1/scan") => handle_scan(shared, req),
        ("GET", "/v1/rules") => handle_rules_list(shared),
        ("GET", path) if path.starts_with("/v1/jobs/") => handle_job_poll(shared, path),
        ("GET" | "PUT" | "HEAD", path) if path.starts_with("/v1/cache/") => {
            handle_cache(shared, req)
        }
        (_, "/healthz" | "/metrics" | "/v1/scan" | "/v1/batch" | "/v1/rules") => (
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
            vec![],
        ),
        _ => {
            Metrics::inc(&shared.metrics.bad_requests);
            (
                404,
                "text/plain; charset=utf-8",
                "not found\n".into(),
                vec![],
            )
        }
    }
}

/// `/v1/cache/{key}`: the peer-served cache. `GET` answers the framed
/// entry bytes (or `404`), `HEAD` probes existence, `PUT` stores a frame
/// pushed by a peer's write-back. Frames are verified on both write
/// (`put_framed`) and later reads, so a corrupt peer can never inject
/// bytes that a scan will trust. Lookups serve local tiers only — a
/// replica never proxies a peer's `GET` onward to its own peer, so
/// chained `--cache-peer` topologies cannot loop.
fn handle_cache(shared: &Shared, req: &http::Request) -> RouteResponse {
    let key = req.path.trim_start_matches("/v1/cache/");
    if !valid_key(key) {
        Metrics::inc(&shared.metrics.bad_requests);
        return (
            400,
            "text/plain; charset=utf-8",
            "bad cache key\n".into(),
            vec![],
        );
    }
    let Some(store) = shared.tool.cache() else {
        // unreachable in practice: serve always composes a store
        return (
            404,
            "text/plain; charset=utf-8",
            "cache disabled\n".into(),
            vec![],
        );
    };
    match req.method.as_str() {
        "PUT" => {
            if store.put_framed(key, &req.body) {
                (201, "text/plain; charset=utf-8", Vec::new(), vec![])
            } else {
                (
                    422,
                    "text/plain; charset=utf-8",
                    "rejected: not a valid cache frame\n".into(),
                    vec![],
                )
            }
        }
        method => {
            let head = method == "HEAD";
            match store.get_framed(key) {
                Some(framed) => {
                    let body = if head { Vec::new() } else { framed };
                    (200, "application/octet-stream", body, vec![])
                }
                None => (
                    404,
                    "text/plain; charset=utf-8",
                    if head {
                        Vec::new()
                    } else {
                        "no such entry\n".into()
                    },
                    vec![],
                ),
            }
        }
    }
}

/// `POST /v1/scan`: gather sources, admit, and either wait (sync) or
/// return the job id (async).
fn handle_scan(shared: &Shared, req: &http::Request) -> RouteResponse {
    let format = match scan_format(req) {
        Ok(f) => f,
        Err(err) => {
            Metrics::inc(&shared.metrics.bad_requests);
            return (
                err.http_status(),
                "text/plain; charset=utf-8",
                format!("{err}\n").into_bytes(),
                vec![],
            );
        }
    };
    let sources = match scan_sources(req) {
        Ok(s) => s,
        Err(err) => {
            Metrics::inc(&shared.metrics.bad_requests);
            return (
                err.http_status(),
                "text/plain; charset=utf-8",
                format!("{err}\n").into_bytes(),
                vec![],
            );
        }
    };
    if sources.is_empty() {
        // mirror the CLI's answer for a tree with no PHP in it
        return (
            200,
            "text/plain; charset=utf-8",
            "no .php files found\n".into(),
            vec![],
        );
    }
    if let Some((peers, advertise)) = &shared.routing {
        // consistent-hash routing: the replica whose rendezvous weight
        // wins for this scan's content key serves it; everyone else
        // points the client there. 307 preserves method and body, so a
        // tar upload replays unchanged.
        let key = routing::scan_key(&sources);
        if let Some(owner) = routing::owner(peers, &key) {
            if owner != advertise {
                Metrics::inc(&shared.metrics.jobs_redirected);
                let location = format!("{}{}", owner.trim_end_matches('/'), req.target);
                return (
                    307,
                    "text/plain; charset=utf-8",
                    format!("scan key {key} is owned by {owner}\n").into_bytes(),
                    vec![("Location", location)],
                );
            }
        }
    }
    let mut packs = Vec::new();
    if let Some(refs) = req.query_param("rules") {
        for reference in refs.split(',').filter(|r| !r.is_empty()) {
            match shared.rules.resolve(reference) {
                Ok(pack) => packs.push(pack),
                Err(e) => {
                    Metrics::inc(&shared.metrics.bad_requests);
                    return (
                        400,
                        "text/plain; charset=utf-8",
                        format!("unknown rule pack {reference}: {e}\n").into_bytes(),
                        vec![],
                    );
                }
            }
        }
    }
    let lint = matches!(req.query_param("lint"), Some("1" | "true")) || !packs.is_empty();
    let values = matches!(req.query_param("values"), Some("1" | "true"));
    let fail_on = match req.query_param("fail_on") {
        // the server's default stays "never fail the response" so
        // existing clients keep their unconditional 200s
        None => FailOn::None,
        Some(v) => match FailOn::parse(v) {
            Some(p) => p,
            None => {
                Metrics::inc(&shared.metrics.bad_requests);
                return (
                    400,
                    "text/plain; charset=utf-8",
                    format!("unknown fail_on policy {v} (none|fpp|vuln|lint)\n").into_bytes(),
                    vec![],
                );
            }
        },
    };
    let id = match shared.queue.submit(ScanRequest {
        sources,
        format,
        lint,
        packs,
        values,
        fail_on,
    }) {
        Ok(id) => id,
        Err(SubmitError::Full) => {
            Metrics::inc(&shared.metrics.jobs_rejected);
            return (
                429,
                "text/plain; charset=utf-8",
                "scan queue is full, retry shortly\n".into(),
                vec![("Retry-After", "1".to_string())],
            );
        }
        Err(SubmitError::Draining) => {
            Metrics::inc(&shared.metrics.jobs_refused_draining);
            return (
                503,
                "text/plain; charset=utf-8",
                "server is draining for shutdown\n".into(),
                vec![],
            );
        }
    };
    Metrics::inc(&shared.metrics.jobs_accepted);

    let wants_async = matches!(req.query_param("async"), Some("1" | "true"));
    if wants_async {
        return (
            202,
            "application/json",
            format!("{{\"job\":{id},\"status\":\"queued\"}}\n").into_bytes(),
            vec![("Location", format!("/v1/jobs/{id}"))],
        );
    }
    match shared.queue.wait(id) {
        Some(JobStatus::Done(out)) => (
            if out.failing { 422 } else { 200 },
            out.content_type,
            out.body.into_bytes(),
            vec![],
        ),
        Some(JobStatus::Failed { message }) => (
            422,
            "text/plain; charset=utf-8",
            format!("scan failed: {message}\n").into_bytes(),
            vec![],
        ),
        _ => (
            500,
            "text/plain; charset=utf-8",
            "job vanished\n".into(),
            vec![],
        ),
    }
}

/// `GET /v1/rules`: the packs installed under the server's pack store,
/// as stable JSON sorted by name (and descending version within one).
fn handle_rules_list(shared: &Shared) -> RouteResponse {
    match shared.rules.list() {
        Ok(packs) => {
            let mut body = String::from("{\"packs\":[");
            for (i, p) in packs.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!(
                    "{{\"name\":{},\"version\":{},\"fingerprint\":{},\"rules\":{}}}",
                    wap_rules::json::quote(&p.name),
                    wap_rules::json::quote(&p.version),
                    wap_rules::json::quote(&p.fingerprint),
                    p.rules
                ));
            }
            body.push_str("]}\n");
            (200, "application/json", body.into_bytes(), vec![])
        }
        Err(e) => (
            500,
            "text/plain; charset=utf-8",
            format!("rule-pack store unreadable: {e}\n").into_bytes(),
            vec![],
        ),
    }
}

/// `GET /v1/jobs/{id}`: job state, or the finished report itself.
fn handle_job_poll(shared: &Shared, path: &str) -> RouteResponse {
    let id_str = path.trim_start_matches("/v1/jobs/");
    let Ok(id) = id_str.parse::<u64>() else {
        Metrics::inc(&shared.metrics.bad_requests);
        return (
            400,
            "text/plain; charset=utf-8",
            format!("bad job id {id_str}\n").into_bytes(),
            vec![],
        );
    };
    match shared.queue.status(id) {
        None => (
            404,
            "text/plain; charset=utf-8",
            "unknown job\n".into(),
            vec![],
        ),
        Some(JobStatus::Done(out)) => (
            if out.failing { 422 } else { 200 },
            out.content_type,
            out.body.into_bytes(),
            vec![],
        ),
        Some(JobStatus::Failed { message }) => (
            422,
            "text/plain; charset=utf-8",
            format!("scan failed: {message}\n").into_bytes(),
            vec![],
        ),
        Some(status) => (
            200,
            "application/json",
            format!("{{\"job\":{id},\"status\":\"{}\"}}\n", status.name()).into_bytes(),
            vec![],
        ),
    }
}

/// Resolves the render format: `?format=` wins, then `Accept`, then JSON
/// (the natural API default; the CLI's default stays text).
pub(crate) fn scan_format(req: &http::Request) -> Result<Format, WapError> {
    if let Some(f) = req.query_param("format") {
        return Format::parse(f).ok_or_else(|| WapError::usage(format!("unknown format {f}")));
    }
    if let Some(accept) = req.header("accept") {
        if let Some(f) = Format::from_accept(accept) {
            return Ok(f);
        }
    }
    Ok(Format::Json)
}

/// Gathers the sources to scan: an uploaded ustar body when present,
/// otherwise the server-local `?path=`. Errors carry their own HTTP
/// status via [`WapError::http_status`] — a malformed upload is the
/// client's fault (422), an unreadable server path is ours (500).
fn scan_sources(req: &http::Request) -> Result<Vec<(String, String)>, WapError> {
    if !req.body.is_empty() {
        let mut sources = tar::extract_php_sources(&req.body).map_err(|e| WapError::Parse {
            file: "tar upload".to_string(),
            detail: e.to_string(),
        })?;
        // same ordering contract as the CLI's directory walk
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        sources.dedup_by(|a, b| a.0 == b.0);
        return Ok(sources);
    }
    let Some(path) = req.query_param("path") else {
        return Err(WapError::usage("scan needs a ?path= or a tar upload body"));
    };
    let files = wap_core::cli::collect_php_files(&[PathBuf::from(path)])?;
    let mut sources = Vec::with_capacity(files.len());
    for f in files {
        let contents = std::fs::read_to_string(&f).map_err(|e| WapError::io(&f, e))?;
        sources.push((f.display().to_string(), contents));
    }
    Ok(sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// Boots a server on an ephemeral port; returns (handle, join).
    fn boot(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<io::Result<()>>) {
        let server = Server::bind(&config).expect("bind");
        let handle = server.handle().expect("handle");
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    /// One blocking HTTP exchange; returns (status, headers+body text).
    fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw).expect("send");
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).expect("recv");
        let text = String::from_utf8_lossy(&buf).to_string();
        let status = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        (status, text)
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        exchange(
            addr,
            format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
        )
    }

    /// Like [`exchange`] but binary-safe: returns (status, head text,
    /// exact body bytes) so cache frames and report bytes can be compared.
    fn exchange_bytes(addr: SocketAddr, raw: &[u8]) -> (u16, String, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw).expect("send");
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).expect("recv");
        let split = buf
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("header terminator");
        let head = String::from_utf8_lossy(&buf[..split]).to_string();
        let status = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        (status, head, buf[split + 4..].to_vec())
    }

    /// One synchronous `POST /v1/scan?path=` returning the exact body.
    fn scan_path_bytes(addr: SocketAddr, dir: &std::path::Path, format: &str) -> (u16, Vec<u8>) {
        let target = format!(
            "/v1/scan?path={}&format={format}",
            http_escape(&dir.display().to_string())
        );
        let (status, _, body) = exchange_bytes(
            addr,
            format!("POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n").as_bytes(),
        );
        (status, body)
    }

    #[test]
    fn healthz_metrics_and_shutdown() {
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let (status, body) = get(handle.addr(), "/healthz");
        assert_eq!(status, 200);
        assert!(body.ends_with("ok\n"), "{body}");
        let (status, body) = get(handle.addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("wap_serve_queue_depth 0"), "{body}");
        let (status, _) = get(handle.addr(), "/nope");
        assert_eq!(status, 404);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn scan_path_text_round_trip() {
        let dir = std::env::temp_dir().join(format!("wap-serve-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("x.php"), "<?php echo $_GET['v'];\n").unwrap();
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let target = format!(
            "/v1/scan?path={}&format=text",
            http_escape(&dir.display().to_string())
        );
        let (status, body) = exchange(
            handle.addr(),
            format!("POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n").as_bytes(),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("1 files"), "{body}");
        // missing path and bad format are client errors
        let (status, _) = exchange(
            handle.addr(),
            b"POST /v1/scan HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 400);
        let (status, _) = exchange(
            handle.addr(),
            b"POST /v1/scan?path=/tmp&format=xml HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 400);
        handle.shutdown();
        join.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_tar_upload_and_async_polling() {
        let archive = tar::build(&[(
            "app/x.php".to_string(),
            "<?php echo $_GET['v'];\n".to_string(),
        )]);
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let mut raw = format!(
            "POST /v1/scan?format=text&async=1 HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-tar\r\nContent-Length: {}\r\n\r\n",
            archive.len()
        )
        .into_bytes();
        raw.extend_from_slice(&archive);
        let (status, body) = exchange(handle.addr(), &raw);
        assert_eq!(status, 202, "{body}");
        assert!(body.contains("\"status\":\"queued\""), "{body}");
        let job_line = body.lines().last().unwrap();
        let id: u64 = job_line
            .trim_start_matches("{\"job\":")
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // poll until done
        let mut result = String::new();
        for _ in 0..400 {
            let (status, body) = get(handle.addr(), &format!("/v1/jobs/{id}"));
            assert!(status == 200, "{body}");
            if !body.contains("\"status\":\"") {
                result = body;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(result.contains("1 files"), "{result}");
        let (status, _) = get(handle.addr(), "/v1/jobs/999999");
        assert_eq!(status, 404);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn lint_param_appends_findings_and_fail_on_maps_to_422() {
        let dir = std::env::temp_dir().join(format!("wap-serve-lint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("v.php"),
            "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
        )
        .unwrap();
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let path = http_escape(&dir.display().to_string());
        let post = |target: String| {
            exchange(
                handle.addr(),
                format!("POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
                    .as_bytes(),
            )
        };
        // lint pass on, no fail policy: 200 with lint findings in the body
        let (status, body) = post(format!("/v1/scan?path={path}&format=text&lint=1"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("WAP-LINT-TAINTED-SINK"), "{body}");
        // the fail_on=lint policy maps a failing report to 422
        let (status, body) = post(format!(
            "/v1/scan?path={path}&format=text&lint=1&fail_on=lint"
        ));
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("WAP-LINT-TAINTED-SINK"), "{body}");
        // without ?lint= the default scan output is unchanged
        let (status, body) = post(format!("/v1/scan?path={path}&format=text"));
        assert_eq!(status, 200, "{body}");
        assert!(!body.contains("WAP-LINT-"), "{body}");
        // unknown policies are client errors
        let (status, _) = post(format!("/v1/scan?path={path}&fail_on=bogus"));
        assert_eq!(status, 400);
        handle.shutdown();
        join.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rules_endpoint_lists_packs_and_rules_param_joins_them() {
        let dir = std::env::temp_dir().join(format!("wap-serve-rules-{}", std::process::id()));
        let packs_dir = dir.join("packs");
        std::fs::create_dir_all(&dir).unwrap();
        wap_rules::Store::new(&packs_dir)
            .install_pack(&wap_rules::RulePack::wordpress())
            .unwrap();
        std::fs::write(
            dir.join("w.php"),
            "<?php\n$id = $_GET['id'];\n$wpdb->query(\"SELECT * FROM t WHERE id = $id\");\n",
        )
        .unwrap();
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            rules_dir: Some(packs_dir),
            ..ServeConfig::default()
        });
        // the pack inventory names the installed pack and its fingerprint
        let (status, body) = get(handle.addr(), "/v1/rules");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"name\":\"wordpress\""), "{body}");
        assert!(body.contains("\"fingerprint\":\""), "{body}");
        // ?rules= joins the pack into the scan and implies the lint pass
        let path = http_escape(&dir.display().to_string());
        let post = |target: String| {
            exchange(
                handle.addr(),
                format!("POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
                    .as_bytes(),
            )
        };
        let (status, body) = post(format!("/v1/scan?path={path}&format=text&rules=wordpress"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("WAP-WP-WPDB-INTERPOLATED-QUERY"), "{body}");
        // without ?rules= the pack rule stays out of the report
        let (status, body) = post(format!("/v1/scan?path={path}&format=text&lint=1"));
        assert_eq!(status, 200, "{body}");
        assert!(!body.contains("WAP-WP-WPDB-INTERPOLATED-QUERY"), "{body}");
        // unknown packs are client errors, not silent no-ops
        let (status, body) = post(format!("/v1/scan?path={path}&rules=no-such-pack"));
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("unknown rule pack"), "{body}");
        // only GET is served on the inventory
        let (status, _) = post("/v1/rules".to_string());
        assert_eq!(status, 405);
        handle.shutdown();
        join.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn draining_server_refuses_new_scans() {
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        // drain via the queue directly (as run() does on shutdown), while
        // the accept loop is still alive to answer
        handle.shared.queue.drain();
        let archive = tar::build(&[("x.php".to_string(), "<?php echo 1;\n".to_string())]);
        let mut raw = format!(
            "POST /v1/scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            archive.len()
        )
        .into_bytes();
        raw.extend_from_slice(&archive);
        let (status, body) = exchange(handle.addr(), &raw);
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("draining"), "{body}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn bind_rejects_inconsistent_fleet_flags() {
        let mut config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            peers: vec!["http://a:1".into(), "http://b:2".into()],
            ..ServeConfig::default()
        };
        let err = Server::bind(&config)
            .err()
            .expect("peers without advertise");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{err}");
        config.advertise = Some("http://c:3".into());
        let err = Server::bind(&config).err().expect("advertise not in peers");
        assert!(err.to_string().contains("not in the --peers list"), "{err}");
        config.advertise = Some("http://a:1".into());
        assert!(Server::bind(&config).is_ok());
    }

    #[test]
    fn cache_endpoint_round_trips_frames() {
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        // a frame produced the same way a peer's write-back produces one
        let donor = wap_cache::CacheStore::in_memory();
        donor.put("the-key", b"entry payload".to_vec());
        let frame = donor.get_framed("the-key").expect("framed");

        let put = |key: &str, body: &[u8]| {
            let mut raw = format!(
                "PUT /v1/cache/{key} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .into_bytes();
            raw.extend_from_slice(body);
            exchange_bytes(handle.addr(), &raw)
        };
        let (status, _, _) = put("the-key", &frame);
        assert_eq!(status, 201);
        // GET returns the identical frame bytes
        let (status, head, body) = exchange_bytes(
            handle.addr(),
            b"GET /v1/cache/the-key HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(head.contains("application/octet-stream"), "{head}");
        assert_eq!(body, frame, "served frame must be byte-identical");
        // HEAD probes existence without a body
        let (status, _, body) = exchange_bytes(
            handle.addr(),
            b"HEAD /v1/cache/the-key HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(body.is_empty());
        // absent keys, invalid keys, and corrupt frames are refused
        let (status, _, _) = exchange_bytes(
            handle.addr(),
            b"GET /v1/cache/absent-key HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        assert_eq!(status, 404);
        let (status, _, _) = exchange_bytes(
            handle.addr(),
            b"GET /v1/cache/bad%2Fkey HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        assert_eq!(status, 400, "path traversal in keys must be rejected");
        let (status, _, _) = put("junk-key", b"not a frame at all");
        assert_eq!(status, 422);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn peered_replica_warms_from_its_cache_peer() {
        let dir = std::env::temp_dir().join(format!("wap-serve-fleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.php"), "<?php echo $_GET['v'];\n").unwrap();
        std::fs::write(dir.join("b.php"), "<?php echo strlen($_GET['v']);\n").unwrap();
        // replica A scans cold and keeps the entries
        let (handle_a, join_a) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let (status, body_a) = scan_path_bytes(handle_a.addr(), &dir, "json");
        assert_eq!(status, 200);
        // replica B has a cold local cache but reads through to A
        let (handle_b, join_b) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_peer: Some(format!("http://{}", handle_a.addr())),
            ..ServeConfig::default()
        });
        let (status, body_b) = scan_path_bytes(handle_b.addr(), &dir, "json");
        assert_eq!(status, 200);
        assert_eq!(body_a, body_b, "peer-warmed scan must be byte-identical");
        let (_, metrics) = get(handle_b.addr(), "/metrics");
        let hits = metric_value(&metrics, "wap_serve_remote_cache_hits_total");
        assert!(
            hits > 0,
            "B should have been served by A's cache:\n{metrics}"
        );
        // a replica whose peer is gone degrades to the cold path
        handle_a.shutdown();
        join_a.join().unwrap().unwrap();
        let (handle_c, join_c) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_peer: Some(format!("http://{}", handle_a.addr())),
            ..ServeConfig::default()
        });
        let (status, body_c) = scan_path_bytes(handle_c.addr(), &dir, "json");
        assert_eq!(status, 200);
        assert_eq!(body_a, body_c, "dead peer must not change findings");
        handle_b.shutdown();
        handle_c.shutdown();
        join_b.join().unwrap().unwrap();
        join_c.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_routing_redirects_to_the_owner() {
        let sources = vec![(
            "app/r.php".to_string(),
            "<?php echo $_GET['q'];\n".to_string(),
        )];
        let peers = vec![
            "http://replica-a:1".to_string(),
            "http://replica-b:2".to_string(),
        ];
        let key = routing::scan_key(&sources);
        let owner = routing::owner(&peers, &key).unwrap().clone();
        let loser = peers.iter().find(|p| **p != owner).unwrap().clone();
        // a replica advertising the losing URL redirects to the owner...
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            peers: peers.clone(),
            advertise: Some(loser),
            ..ServeConfig::default()
        });
        let archive = tar::build(&sources);
        let mut raw = format!(
            "POST /v1/scan?format=json HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            archive.len()
        )
        .into_bytes();
        raw.extend_from_slice(&archive);
        let (status, head, _) = exchange_bytes(handle.addr(), &raw);
        assert_eq!(status, 307, "{head}");
        assert!(
            head.contains(&format!("Location: {owner}/v1/scan?format=json")),
            "{head}"
        );
        handle.shutdown();
        join.join().unwrap().unwrap();
        // ...and the owner serves it
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            peers,
            advertise: Some(owner),
            ..ServeConfig::default()
        });
        let (status, _, body) = exchange_bytes(handle.addr(), &raw);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn batch_streams_one_ndjson_line_per_app() {
        let archive = tar::build(&[
            (
                "beta/x.php".to_string(),
                "<?php echo $_GET['v'];\n".to_string(),
            ),
            ("alpha/y.php".to_string(), "<?php echo 1;\n".to_string()),
        ]);
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let mut raw = format!(
            "POST /v1/batch?format=json HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            archive.len()
        )
        .into_bytes();
        raw.extend_from_slice(&archive);
        let (status, head, body) = exchange_bytes(handle.addr(), &raw);
        assert_eq!(status, 200);
        assert!(head.contains("application/x-ndjson"), "{head}");
        assert!(!head.contains("Content-Length"), "streams are unframed");
        let text = String::from_utf8(body).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].starts_with("{\"app\":\"alpha\""), "{text}");
        assert!(lines[1].starts_with("{\"app\":\"beta\""), "{text}");
        for line in lines {
            assert!(line.contains("\"status\":\"done\""), "{line}");
            assert!(line.contains("\"report\":\""), "{line}");
        }
        // a batch with no usable body is a client error
        let (status, _, _) = exchange_bytes(
            handle.addr(),
            b"POST /v1/batch HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 422);
        // and only POST is accepted
        let (status, _) = get(handle.addr(), "/v1/batch");
        assert_eq!(status, 405);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    /// Reads one un-labelled counter/gauge value from an exposition body.
    fn metric_value(text: &str, name: &str) -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing"))
    }

    fn http_escape(s: &str) -> String {
        let mut out = String::new();
        for b in s.bytes() {
            match b {
                b'/' | b'.' | b'-' | b'_' => out.push(b as char),
                b if b.is_ascii_alphanumeric() => out.push(b as char),
                b => out.push_str(&format!("%{b:02X}")),
            }
        }
        out
    }
}
