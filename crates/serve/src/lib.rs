//! # wap-serve — the resident analysis service
//!
//! Scanning from a cold process pays parser/committee warm-up and an empty
//! incremental cache on every invocation. This crate keeps the whole
//! pipeline resident instead: one long-lived [`wap_core::WapTool`] — one
//! trained false-positive committee, one warm [`wap_core::cache`] store —
//! shared by every scan over plain HTTP/1.1 on `std::net::TcpListener`.
//! Like `wap-runtime` and `wap-cache`, the crate is dependency-free: no
//! async runtime, no HTTP framework, no TLS (a reverse proxy's job).
//!
//! ## Endpoints
//!
//! | Endpoint | Behavior |
//! |---|---|
//! | `POST /v1/scan` | Scan a server-local path (`?path=`) or an uploaded ustar archive (request body). Renders text/JSON/NDJSON/SARIF per `?format=` or `Accept`. `?async=1` returns `202` + job id immediately. `?lint=1` appends the CFG lint pass; `?fail_on=none|fpp|vuln|lint` answers `422` when the policy fails the report (default `none`: always `200`). |
//! | `GET /v1/jobs/{id}` | Poll an async job: small JSON while queued/running, the rendered report once done. |
//! | `GET /healthz` | Liveness: `200 ok` (also while draining). |
//! | `GET /metrics` | Prometheus text exposition ([`metrics`]). |
//!
//! Admission control is a bounded queue: a full queue answers `429` with
//! `Retry-After`, and once graceful shutdown begins new scans get `503`
//! while queued and in-flight scans still finish.
//!
//! Scans render through `wap-report`, the same renderers the CLI uses, and
//! the runtime guarantees bit-identical findings at any worker count — so
//! a server response is byte-identical to `wap --format json` over the
//! same tree (JSON/NDJSON/SARIF formats exclude wall-clock timings).

#![warn(missing_docs)]

pub mod cli;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod tar;

pub use cli::cli_main;

use metrics::Metrics;
use queue::{JobQueue, JobStatus, SubmitError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wap_catalog::VulnClass;
use wap_core::cli::FailOn;
use wap_core::{Runtime, ToolConfig, WapError, WapTool};
use wap_report::Format;

/// How the accept loop polls for the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Server configuration (the `wap serve` flags).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Total analysis worker budget; `None` falls back to the `WAP_JOBS`
    /// environment variable, then all cores. The budget is partitioned
    /// across [`ServeConfig::workers`] concurrent scans.
    pub jobs: Option<usize>,
    /// Incremental cache root shared by every scan; `None` disables the
    /// disk cache (an in-memory cache still keeps repeat scans warm).
    pub cache_dir: Option<PathBuf>,
    /// Bounded queue capacity; submissions past it are answered `429`.
    pub queue_capacity: usize,
    /// Executor threads — scans analyzed concurrently.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            jobs: None,
            cache_dir: None,
            queue_capacity: 32,
            workers: 2,
        }
    }
}

/// State shared by the accept loop, connection handlers, and executors.
struct Shared {
    tool: WapTool,
    classes: Vec<VulnClass>,
    queue: JobQueue,
    metrics: Metrics,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

/// Remote control for a running [`Server`]: request graceful shutdown from
/// another thread (or a signal watcher).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Begins graceful shutdown: stop accepting, finish queued and
    /// in-flight scans, then return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Binds the listener and builds the resident tool (training the
    /// false-positive committee once, opening the shared cache once).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let workers = config.workers.max(1);
        // every concurrent scan gets an equal slice of the job budget, so
        // `workers` simultaneous scans never oversubscribe it
        let per_scan = Runtime::from_config(config.jobs).partition(workers);
        let tool_config = ToolConfig::builder()
            .jobs(per_scan.jobs())
            .maybe_cache_dir(config.cache_dir.clone())
            .build();
        let mut tool = WapTool::new(tool_config);
        if config.cache_dir.is_none() {
            // no disk cache requested: still share a process-lifetime
            // in-memory cache so repeat scans stay warm
            tool.enable_memory_cache();
        }
        let classes: Vec<VulnClass> = tool.catalog().classes().cloned().collect();
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                tool,
                classes,
                queue: JobQueue::new(config.queue_capacity),
                metrics: Metrics::default(),
                shutdown: AtomicBool::new(false),
                open_connections: AtomicUsize::new(0),
            }),
            workers,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures from the socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for requesting shutdown from another thread.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures from the socket.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            shared: self.shared.clone(),
            addr: self.listener.local_addr()?,
        })
    }

    /// Runs the accept loop until shutdown is requested, then drains:
    /// queued and in-flight scans finish, executors join, and open
    /// connections get a grace period to flush.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut executors = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let shared = self.shared.clone();
            executors.push(std::thread::spawn(move || executor_loop(&shared)));
        }

        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = self.shared.clone();
                    self.shared.open_connections.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        handle_connection(&shared, stream);
                        shared.open_connections.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // graceful drain: no new admissions, but everything admitted runs
        self.shared.queue.drain();
        for ex in executors {
            let _ = ex.join();
        }
        // give handlers that are writing responses a moment to finish
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.shared.open_connections.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(ACCEPT_POLL);
        }
        Ok(())
    }
}

/// One executor: claim scans, analyze on the shared tool, render, record.
fn executor_loop(shared: &Shared) {
    while let Some(task) = shared.queue.next_task() {
        shared.metrics.record_queue_wait(task.submitted.elapsed());
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut report = shared.tool.analyze_sources(&task.sources);
            if task.lint {
                shared.tool.apply_lint(&mut report, &task.sources);
            }
            let body = task.format.render(&report, &shared.classes);
            let failing = task.fail_on.exit_code(&report) != 0;
            (report, body, failing)
        }));
        match run {
            Ok((report, body, failing)) => {
                shared.metrics.record_report(&report);
                shared
                    .queue
                    .complete(task.id, task.format.content_type(), body, failing);
            }
            Err(_) => {
                Metrics::inc(&shared.metrics.jobs_failed);
                shared.queue.fail(task.id, "scan panicked".to_string());
            }
        }
    }
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match http::read_request(&stream) {
        Ok(r) => r,
        Err(msg) => {
            Metrics::inc(&shared.metrics.bad_requests);
            let _ = http::write_response(
                &stream,
                400,
                "text/plain; charset=utf-8",
                format!("bad request: {msg}\n").as_bytes(),
                &[],
            );
            return;
        }
    };
    let (status, content_type, body, extra): (u16, &str, String, Vec<(&str, String)>) =
        route(shared, &request);
    let extra_refs: Vec<(&str, &str)> = extra.iter().map(|(n, v)| (*n, v.as_str())).collect();
    let _ = http::write_response(&stream, status, content_type, body.as_bytes(), &extra_refs);
}

type RouteResponse = (u16, &'static str, String, Vec<(&'static str, String)>);

/// Dispatches one parsed request.
fn route(shared: &Shared, req: &http::Request) -> RouteResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "text/plain; charset=utf-8", "ok\n".into(), vec![]),
        ("GET", "/metrics") => (
            200,
            "text/plain; version=0.0.4",
            shared
                .metrics
                .render(shared.queue.depth(), shared.queue.in_flight()),
            vec![],
        ),
        ("POST", "/v1/scan") => handle_scan(shared, req),
        ("GET", path) if path.starts_with("/v1/jobs/") => handle_job_poll(shared, path),
        (_, "/healthz" | "/metrics" | "/v1/scan") => (
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
            vec![],
        ),
        _ => {
            Metrics::inc(&shared.metrics.bad_requests);
            (
                404,
                "text/plain; charset=utf-8",
                "not found\n".into(),
                vec![],
            )
        }
    }
}

/// `POST /v1/scan`: gather sources, admit, and either wait (sync) or
/// return the job id (async).
fn handle_scan(shared: &Shared, req: &http::Request) -> RouteResponse {
    let format = match scan_format(req) {
        Ok(f) => f,
        Err(err) => {
            Metrics::inc(&shared.metrics.bad_requests);
            return (
                err.http_status(),
                "text/plain; charset=utf-8",
                format!("{err}\n"),
                vec![],
            );
        }
    };
    let sources = match scan_sources(req) {
        Ok(s) => s,
        Err(err) => {
            Metrics::inc(&shared.metrics.bad_requests);
            return (
                err.http_status(),
                "text/plain; charset=utf-8",
                format!("{err}\n"),
                vec![],
            );
        }
    };
    if sources.is_empty() {
        // mirror the CLI's answer for a tree with no PHP in it
        return (
            200,
            "text/plain; charset=utf-8",
            "no .php files found\n".into(),
            vec![],
        );
    }
    let lint = matches!(req.query_param("lint"), Some("1" | "true"));
    let fail_on = match req.query_param("fail_on") {
        // the server's default stays "never fail the response" so
        // existing clients keep their unconditional 200s
        None => FailOn::None,
        Some(v) => match FailOn::parse(v) {
            Some(p) => p,
            None => {
                Metrics::inc(&shared.metrics.bad_requests);
                return (
                    400,
                    "text/plain; charset=utf-8",
                    format!("unknown fail_on policy {v} (none|fpp|vuln|lint)\n"),
                    vec![],
                );
            }
        },
    };
    let id = match shared.queue.submit(sources, format, lint, fail_on) {
        Ok(id) => id,
        Err(SubmitError::Full) => {
            Metrics::inc(&shared.metrics.jobs_rejected);
            return (
                429,
                "text/plain; charset=utf-8",
                "scan queue is full, retry shortly\n".into(),
                vec![("Retry-After", "1".to_string())],
            );
        }
        Err(SubmitError::Draining) => {
            Metrics::inc(&shared.metrics.jobs_refused_draining);
            return (
                503,
                "text/plain; charset=utf-8",
                "server is draining for shutdown\n".into(),
                vec![],
            );
        }
    };
    Metrics::inc(&shared.metrics.jobs_accepted);

    let wants_async = matches!(req.query_param("async"), Some("1" | "true"));
    if wants_async {
        return (
            202,
            "application/json",
            format!("{{\"job\":{id},\"status\":\"queued\"}}\n"),
            vec![("Location", format!("/v1/jobs/{id}"))],
        );
    }
    match shared.queue.wait(id) {
        Some(JobStatus::Done {
            content_type,
            body,
            failing,
        }) => (if failing { 422 } else { 200 }, content_type, body, vec![]),
        Some(JobStatus::Failed { message }) => (
            422,
            "text/plain; charset=utf-8",
            format!("scan failed: {message}\n"),
            vec![],
        ),
        _ => (
            500,
            "text/plain; charset=utf-8",
            "job vanished\n".into(),
            vec![],
        ),
    }
}

/// `GET /v1/jobs/{id}`: job state, or the finished report itself.
fn handle_job_poll(shared: &Shared, path: &str) -> RouteResponse {
    let id_str = path.trim_start_matches("/v1/jobs/");
    let Ok(id) = id_str.parse::<u64>() else {
        Metrics::inc(&shared.metrics.bad_requests);
        return (
            400,
            "text/plain; charset=utf-8",
            format!("bad job id {id_str}\n"),
            vec![],
        );
    };
    match shared.queue.status(id) {
        None => (
            404,
            "text/plain; charset=utf-8",
            "unknown job\n".into(),
            vec![],
        ),
        Some(JobStatus::Done {
            content_type,
            body,
            failing,
        }) => (if failing { 422 } else { 200 }, content_type, body, vec![]),
        Some(JobStatus::Failed { message }) => (
            422,
            "text/plain; charset=utf-8",
            format!("scan failed: {message}\n"),
            vec![],
        ),
        Some(status) => (
            200,
            "application/json",
            format!("{{\"job\":{id},\"status\":\"{}\"}}\n", status.name()),
            vec![],
        ),
    }
}

/// Resolves the render format: `?format=` wins, then `Accept`, then JSON
/// (the natural API default; the CLI's default stays text).
fn scan_format(req: &http::Request) -> Result<Format, WapError> {
    if let Some(f) = req.query_param("format") {
        return Format::parse(f).ok_or_else(|| WapError::usage(format!("unknown format {f}")));
    }
    if let Some(accept) = req.header("accept") {
        if let Some(f) = Format::from_accept(accept) {
            return Ok(f);
        }
    }
    Ok(Format::Json)
}

/// Gathers the sources to scan: an uploaded ustar body when present,
/// otherwise the server-local `?path=`. Errors carry their own HTTP
/// status via [`WapError::http_status`] — a malformed upload is the
/// client's fault (422), an unreadable server path is ours (500).
fn scan_sources(req: &http::Request) -> Result<Vec<(String, String)>, WapError> {
    if !req.body.is_empty() {
        let mut sources = tar::extract_php_sources(&req.body).map_err(|e| WapError::Parse {
            file: "tar upload".to_string(),
            detail: e.to_string(),
        })?;
        // same ordering contract as the CLI's directory walk
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        sources.dedup_by(|a, b| a.0 == b.0);
        return Ok(sources);
    }
    let Some(path) = req.query_param("path") else {
        return Err(WapError::usage("scan needs a ?path= or a tar upload body"));
    };
    let files = wap_core::cli::collect_php_files(&[PathBuf::from(path)])?;
    let mut sources = Vec::with_capacity(files.len());
    for f in files {
        let contents = std::fs::read_to_string(&f).map_err(|e| WapError::io(&f, e))?;
        sources.push((f.display().to_string(), contents));
    }
    Ok(sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// Boots a server on an ephemeral port; returns (handle, join).
    fn boot(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<io::Result<()>>) {
        let server = Server::bind(&config).expect("bind");
        let handle = server.handle().expect("handle");
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    /// One blocking HTTP exchange; returns (status, headers+body text).
    fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw).expect("send");
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).expect("recv");
        let text = String::from_utf8_lossy(&buf).to_string();
        let status = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        (status, text)
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        exchange(
            addr,
            format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
        )
    }

    #[test]
    fn healthz_metrics_and_shutdown() {
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let (status, body) = get(handle.addr(), "/healthz");
        assert_eq!(status, 200);
        assert!(body.ends_with("ok\n"), "{body}");
        let (status, body) = get(handle.addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("wap_serve_queue_depth 0"), "{body}");
        let (status, _) = get(handle.addr(), "/nope");
        assert_eq!(status, 404);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn scan_path_text_round_trip() {
        let dir = std::env::temp_dir().join(format!("wap-serve-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("x.php"), "<?php echo $_GET['v'];\n").unwrap();
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let target = format!(
            "/v1/scan?path={}&format=text",
            http_escape(&dir.display().to_string())
        );
        let (status, body) = exchange(
            handle.addr(),
            format!("POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n").as_bytes(),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("1 files"), "{body}");
        // missing path and bad format are client errors
        let (status, _) = exchange(
            handle.addr(),
            b"POST /v1/scan HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 400);
        let (status, _) = exchange(
            handle.addr(),
            b"POST /v1/scan?path=/tmp&format=xml HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 400);
        handle.shutdown();
        join.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_tar_upload_and_async_polling() {
        let archive = tar::build(&[(
            "app/x.php".to_string(),
            "<?php echo $_GET['v'];\n".to_string(),
        )]);
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let mut raw = format!(
            "POST /v1/scan?format=text&async=1 HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-tar\r\nContent-Length: {}\r\n\r\n",
            archive.len()
        )
        .into_bytes();
        raw.extend_from_slice(&archive);
        let (status, body) = exchange(handle.addr(), &raw);
        assert_eq!(status, 202, "{body}");
        assert!(body.contains("\"status\":\"queued\""), "{body}");
        let job_line = body.lines().last().unwrap();
        let id: u64 = job_line
            .trim_start_matches("{\"job\":")
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // poll until done
        let mut result = String::new();
        for _ in 0..400 {
            let (status, body) = get(handle.addr(), &format!("/v1/jobs/{id}"));
            assert!(status == 200, "{body}");
            if !body.contains("\"status\":\"") {
                result = body;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(result.contains("1 files"), "{result}");
        let (status, _) = get(handle.addr(), "/v1/jobs/999999");
        assert_eq!(status, 404);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn lint_param_appends_findings_and_fail_on_maps_to_422() {
        let dir = std::env::temp_dir().join(format!("wap-serve-lint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("v.php"),
            "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
        )
        .unwrap();
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let path = http_escape(&dir.display().to_string());
        let post = |target: String| {
            exchange(
                handle.addr(),
                format!("POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
                    .as_bytes(),
            )
        };
        // lint pass on, no fail policy: 200 with lint findings in the body
        let (status, body) = post(format!("/v1/scan?path={path}&format=text&lint=1"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("WAP-LINT-TAINTED-SINK"), "{body}");
        // the fail_on=lint policy maps a failing report to 422
        let (status, body) = post(format!("/v1/scan?path={path}&format=text&lint=1&fail_on=lint"));
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("WAP-LINT-TAINTED-SINK"), "{body}");
        // without ?lint= the default scan output is unchanged
        let (status, body) = post(format!("/v1/scan?path={path}&format=text"));
        assert_eq!(status, 200, "{body}");
        assert!(!body.contains("WAP-LINT-"), "{body}");
        // unknown policies are client errors
        let (status, _) = post(format!("/v1/scan?path={path}&fail_on=bogus"));
        assert_eq!(status, 400);
        handle.shutdown();
        join.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn draining_server_refuses_new_scans() {
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        // drain via the queue directly (as run() does on shutdown), while
        // the accept loop is still alive to answer
        handle.shared.queue.drain();
        let archive = tar::build(&[("x.php".to_string(), "<?php echo 1;\n".to_string())]);
        let mut raw = format!(
            "POST /v1/scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            archive.len()
        )
        .into_bytes();
        raw.extend_from_slice(&archive);
        let (status, body) = exchange(handle.addr(), &raw);
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("draining"), "{body}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    fn http_escape(s: &str) -> String {
        let mut out = String::new();
        for b in s.bytes() {
            match b {
                b'/' | b'.' | b'-' | b'_' => out.push(b as char),
                b if b.is_ascii_alphanumeric() => out.push(b as char),
                b => out.push_str(&format!("%{b:02X}")),
            }
        }
        out
    }
}
