//! The scan-job payload types over the shared bounded queue.
//!
//! The queue implementation itself lives in [`wap_runtime::queue`] — one
//! `Mutex` + two `Condvar`s shared by `wap serve`, `wap watch`, and
//! `wap lsp` — and this module only defines what a *scan* job carries:
//! the pre-collected sources with their render options going in
//! ([`ScanRequest`]), and the rendered report coming out
//! ([`ScanOutcome`]). Admission control semantics are the queue's: a
//! full queue refuses with [`SubmitError::Full`] (the HTTP layer answers
//! `429` + `Retry-After`) and a draining one with
//! [`SubmitError::Draining`] (`503`).

pub use wap_runtime::queue::SubmitError;
use wap_core::cli::FailOn;
use wap_report::Format;

/// One scan waiting for (or owned by) an executor.
#[derive(Debug)]
pub struct ScanRequest {
    /// `(file name, contents)` pairs, pre-collected by the HTTP layer.
    pub sources: Vec<(String, String)>,
    /// Render format for the finished report.
    pub format: Format,
    /// Run the CFG lint pass after analysis (`?lint=1`).
    pub lint: bool,
    /// Rule packs joined into the lint pass (`?rules=`), resolved by the
    /// HTTP layer against the server's pack store. Non-empty packs imply
    /// the lint pass.
    pub packs: Vec<wap_rules::RulePack>,
    /// Run the interprocedural value analysis (`?values=1`).
    pub values: bool,
    /// Exit-code policy (`?fail_on=`); a failing report is answered with
    /// HTTP 422 instead of 200.
    pub fail_on: FailOn,
}

/// A finished scan: the rendered report and how to serve it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// `Content-Type` of the rendered body.
    pub content_type: &'static str,
    /// The rendered report.
    pub body: String,
    /// Whether the task's `fail_on` policy fails this report — the HTTP
    /// layer maps it to 422 (the CLI's exit-code 1 analogue).
    pub failing: bool,
}

/// A claimed scan task (the shared queue's task over [`ScanRequest`]).
pub type ScanTask = wap_runtime::queue::Task<ScanRequest>;

/// A scan job's externally visible state.
pub type JobStatus = wap_runtime::queue::JobStatus<ScanOutcome>;

/// The bounded scan queue shared by HTTP handlers and executors.
pub type JobQueue = wap_runtime::queue::JobQueue<ScanRequest, ScanOutcome>;

#[cfg(test)]
mod tests {
    use super::*;

    fn request(n: usize) -> ScanRequest {
        ScanRequest {
            sources: vec![(format!("f{n}.php"), "<?php echo 1;\n".to_string())],
            format: Format::Json,
            lint: false,
            packs: Vec::new(),
            values: false,
            fail_on: FailOn::None,
        }
    }

    #[test]
    fn scan_requests_round_trip_through_the_shared_queue() {
        let q = JobQueue::new(2);
        let id = q.submit(request(0)).unwrap();
        assert!(q.submit(request(1)).is_ok());
        assert_eq!(q.submit(request(2)).unwrap_err(), SubmitError::Full);
        let t = q.next_task().unwrap();
        assert_eq!(t.id, id);
        assert_eq!(t.payload.sources[0].0, "f0.php");
        assert_eq!(t.payload.format, Format::Json);
        q.complete(
            t.id,
            ScanOutcome {
                content_type: "application/json",
                body: "{}".into(),
                failing: false,
            },
        );
        match q.status(id) {
            Some(JobStatus::Done(out)) => {
                assert_eq!(out.body, "{}");
                assert!(!out.failing);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn draining_scan_queue_refuses_like_the_server_does() {
        let q = JobQueue::new(4);
        q.drain();
        assert_eq!(q.submit(request(0)).unwrap_err(), SubmitError::Draining);
        assert!(q.next_task().is_none());
    }
}
