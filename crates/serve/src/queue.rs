//! The bounded scan-job queue.
//!
//! Admission control happens at [`JobQueue::submit`]: when the queue is at
//! capacity the caller gets [`SubmitError::Full`] (the HTTP layer turns it
//! into `429` + `Retry-After`), and once draining has begun every submit is
//! refused with [`SubmitError::Draining`] (`503`). Executor threads block
//! in [`JobQueue::next_task`]; synchronous HTTP handlers block in
//! [`JobQueue::wait`]. Everything is a `Mutex` + two `Condvar`s — no
//! async runtime, matching the house style of `wap-runtime`.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;
use wap_core::cli::FailOn;
use wap_report::Format;

/// Finished jobs retained for polling before the oldest are evicted.
const DONE_RETAIN: usize = 256;

/// One scan waiting for (or owned by) an executor.
#[derive(Debug)]
pub struct ScanTask {
    /// Job id, unique for the server's lifetime.
    pub id: u64,
    /// `(file name, contents)` pairs, pre-collected by the HTTP layer.
    pub sources: Vec<(String, String)>,
    /// Render format for the finished report.
    pub format: Format,
    /// Run the CFG lint pass after analysis (`?lint=1`).
    pub lint: bool,
    /// Exit-code policy (`?fail_on=`); a failing report is answered with
    /// HTTP 422 instead of 200.
    pub fail_on: FailOn,
    /// When the job was admitted — executors subtract this to report
    /// queue-wait latency.
    pub submitted: Instant,
}

/// A job's externally visible state.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Admitted, not yet picked up by an executor.
    Queued,
    /// An executor is scanning.
    Running,
    /// Finished: the rendered report and its MIME type.
    Done {
        /// `Content-Type` of the rendered body.
        content_type: &'static str,
        /// The rendered report.
        body: String,
        /// Whether the task's `fail_on` policy fails this report — the
        /// HTTP layer maps it to 422 (the CLI's exit-code 1 analogue).
        failing: bool,
    },
    /// The scan could not be completed.
    Failed {
        /// Human-readable reason.
        message: String,
    },
}

impl JobStatus {
    /// Whether this state is terminal.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done { .. } | JobStatus::Failed { .. })
    }

    /// The status name used in job-polling responses.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done { .. } => "done",
            JobStatus::Failed { .. } => "failed",
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry shortly.
    Full,
    /// The server is draining for shutdown; no new work is admitted.
    Draining,
}

#[derive(Default)]
struct Inner {
    pending: VecDeque<ScanTask>,
    jobs: HashMap<u64, JobStatus>,
    done_order: VecDeque<u64>,
    next_id: u64,
    running: usize,
    draining: bool,
}

/// The bounded job queue shared by HTTP handlers and executors.
pub struct JobQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    /// Signals executors that work arrived or draining began.
    work_ready: Condvar,
    /// Signals pollers that some job reached a terminal state.
    job_changed: Condvar,
}

impl JobQueue {
    /// A queue admitting at most `capacity` pending jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            work_ready: Condvar::new(),
            job_changed: Condvar::new(),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a scan, returning its job id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Draining`] after
    /// [`JobQueue::drain`].
    pub fn submit(
        &self,
        sources: Vec<(String, String)>,
        format: Format,
        lint: bool,
        fail_on: FailOn,
    ) -> Result<u64, SubmitError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.draining {
            return Err(SubmitError::Draining);
        }
        if inner.pending.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(id, JobStatus::Queued);
        inner.pending.push_back(ScanTask {
            id,
            sources,
            format,
            lint,
            fail_on,
            submitted: Instant::now(),
        });
        self.work_ready.notify_one();
        Ok(id)
    }

    /// Blocks until a task is available and claims it, or returns `None`
    /// once the queue is draining and empty (executor shutdown signal).
    pub fn next_task(&self) -> Option<ScanTask> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(task) = inner.pending.pop_front() {
                inner.running += 1;
                inner.jobs.insert(task.id, JobStatus::Running);
                return Some(task);
            }
            if inner.draining {
                return None;
            }
            inner = self.work_ready.wait(inner).expect("queue lock");
        }
    }

    /// Records a finished scan.
    pub fn complete(&self, id: u64, content_type: &'static str, body: String, failing: bool) {
        self.finish(
            id,
            JobStatus::Done {
                content_type,
                body,
                failing,
            },
        );
    }

    /// Records a failed scan.
    pub fn fail(&self, id: u64, message: String) {
        self.finish(id, JobStatus::Failed { message });
    }

    fn finish(&self, id: u64, status: JobStatus) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.running = inner.running.saturating_sub(1);
        inner.jobs.insert(id, status);
        inner.done_order.push_back(id);
        while inner.done_order.len() > DONE_RETAIN {
            if let Some(old) = inner.done_order.pop_front() {
                inner.jobs.remove(&old);
            }
        }
        self.job_changed.notify_all();
    }

    /// A snapshot of one job's state; `None` for unknown (or evicted) ids.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.inner
            .lock()
            .expect("queue lock")
            .jobs
            .get(&id)
            .cloned()
    }

    /// Blocks until job `id` reaches a terminal state and returns it;
    /// `None` for unknown ids.
    pub fn wait(&self, id: u64) -> Option<JobStatus> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            match inner.jobs.get(&id) {
                None => return None,
                Some(s) if s.is_terminal() => return Some(s.clone()),
                Some(_) => inner = self.job_changed.wait(inner).expect("queue lock"),
            }
        }
    }

    /// Pending (admitted, not yet running) jobs.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").pending.len()
    }

    /// Jobs currently being scanned.
    pub fn in_flight(&self) -> usize {
        self.inner.lock().expect("queue lock").running
    }

    /// Stops admission and wakes every executor so that, once the pending
    /// queue empties, [`JobQueue::next_task`] returns `None`.
    pub fn drain(&self) {
        self.inner.lock().expect("queue lock").draining = true;
        self.work_ready.notify_all();
    }

    /// Whether draining has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().expect("queue lock").draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(n: usize) -> Vec<(String, String)> {
        vec![(format!("f{n}.php"), "<?php echo 1;\n".to_string())]
    }

    #[test]
    fn admission_control_fills_and_refuses() {
        let q = JobQueue::new(2);
        assert!(q.submit(src(0), Format::Json, false, FailOn::None).is_ok());
        assert!(q.submit(src(1), Format::Json, false, FailOn::None).is_ok());
        assert_eq!(
            q.submit(src(2), Format::Json, false, FailOn::None),
            Err(SubmitError::Full)
        );
        assert_eq!(q.depth(), 2);
        // claiming one frees a slot
        let t = q.next_task().unwrap();
        assert_eq!(q.status(t.id), Some(JobStatus::Running));
        assert!(q.submit(src(3), Format::Json, false, FailOn::None).is_ok());
    }

    #[test]
    fn draining_refuses_new_but_finishes_queued() {
        let q = JobQueue::new(4);
        let id = q.submit(src(0), Format::Text, false, FailOn::None).unwrap();
        q.drain();
        assert_eq!(
            q.submit(src(1), Format::Text, false, FailOn::None),
            Err(SubmitError::Draining)
        );
        // queued work is still handed out...
        let t = q.next_task().unwrap();
        assert_eq!(t.id, id);
        q.complete(t.id, "text/plain", "ok".into(), false);
        // ...and only then do executors see the shutdown signal
        assert!(q.next_task().is_none());
    }

    #[test]
    fn wait_blocks_until_terminal() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let id = q.submit(src(0), Format::Json, false, FailOn::None).unwrap();
        let q2 = q.clone();
        let waiter = std::thread::spawn(move || q2.wait(id));
        let t = q.next_task().unwrap();
        q.complete(t.id, "application/json", "{}".into(), false);
        match waiter.join().unwrap() {
            Some(JobStatus::Done { body, .. }) => assert_eq!(body, "{}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(q.wait(999_999), None, "unknown ids do not block");
    }

    #[test]
    fn failed_jobs_are_reported() {
        let q = JobQueue::new(1);
        let id = q.submit(src(0), Format::Json, false, FailOn::None).unwrap();
        let t = q.next_task().unwrap();
        q.fail(t.id, "boom".into());
        assert_eq!(
            q.status(id),
            Some(JobStatus::Failed {
                message: "boom".into()
            })
        );
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn done_jobs_are_evicted_oldest_first() {
        let q = JobQueue::new(1);
        let mut first = None;
        for i in 0..(DONE_RETAIN + 10) {
            let id = q.submit(src(i), Format::Text, false, FailOn::None).unwrap();
            first.get_or_insert(id);
            let t = q.next_task().unwrap();
            q.complete(t.id, "text/plain", String::new(), false);
        }
        assert_eq!(q.status(first.unwrap()), None, "oldest evicted");
        let newest = q.inner.lock().unwrap().next_id - 1;
        assert!(q.status(newest).is_some());
    }
}
