//! The `wap serve` front end: flag parsing, signal wiring, exit codes.

use crate::{ServeConfig, Server};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Help text for `wap serve`.
pub const SERVE_USAGE: &str = "\
wap serve — host the analysis pipeline as a resident HTTP service

USAGE:
    wap serve [FLAGS]

FLAGS:
    --addr <HOST:PORT>    bind address (default 127.0.0.1:8080; port 0 = ephemeral)
    --jobs <N>            analysis worker budget (default: WAP_JOBS env, then all cores)
    --cache-dir <DIR>     share a persistent incremental cache across scans
    --cache-peer <URL>    read through to (and replicate into) a peer replica's
                          cache; peer failures degrade to the local path
    --peers <URL,URL,..>  fleet membership for consistent-hash job routing
                          (requires --advertise; non-owned scans answer 307)
    --advertise <URL>     this replica's own URL in the --peers list
    --queue <N>           admission-queue capacity (default 32; full queue answers 429)
    --workers <N>         concurrent scans (default 2); each gets jobs/workers threads
    --rules-dir <DIR>     rule-pack store consulted for ?rules= and GET /v1/rules
                          (default: WAP_RULES_DIR, then .wap-rules/)
    --help                show this message

ENDPOINTS:
    POST /v1/scan?path=<dir>[&format=text|json|ndjson|sarif][&async=1]
    POST /v1/scan         (ustar body: scan an uploaded tree; ?rules=pack[@version]
                          joins installed rule packs into the lint pass)
    POST /v1/batch        (tar grouped by top dir, or a path manifest; NDJSON stream)
    GET  /v1/rules        installed rule packs (name, version, fingerprint)
    GET  /v1/cache/<key>  peer-served cache entry (also PUT and HEAD)
    GET  /v1/jobs/<id>    poll an async scan
    GET  /healthz         liveness
    GET  /metrics         Prometheus text exposition

SIGTERM or Ctrl-C drains gracefully: queued and in-flight scans finish,
new scans are refused with 503, then the process exits 0.
";

/// Parses `wap serve` arguments.
///
/// # Errors
///
/// Returns a message for unknown flags or malformed values.
pub fn parse_serve_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<(ServeConfig, bool), String> {
    let mut config = ServeConfig::default();
    let mut help = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => help = true,
            "--addr" => config.addr = it.next().ok_or("--addr needs HOST:PORT")?,
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs needs a thread count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs needs a number, got {v}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                config.jobs = Some(n);
            }
            "--cache-dir" => {
                let d = it.next().ok_or("--cache-dir needs a directory")?;
                config.cache_dir = Some(PathBuf::from(d));
            }
            "--cache-peer" => {
                let u = it.next().ok_or("--cache-peer needs a URL")?;
                config.cache_peer = Some(u);
            }
            "--peers" => {
                let list = it
                    .next()
                    .ok_or("--peers needs a comma-separated URL list")?;
                config.peers = list
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_string)
                    .collect();
                if config.peers.is_empty() {
                    return Err("--peers lists no URLs".to_string());
                }
            }
            "--advertise" => {
                let u = it.next().ok_or("--advertise needs this replica's URL")?;
                config.advertise = Some(u);
            }
            "--queue" => {
                let v = it.next().ok_or("--queue needs a capacity")?;
                config.queue_capacity = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--queue needs a positive number, got {v}"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a count")?;
                config.workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--workers needs a positive number, got {v}"))?;
            }
            "--rules-dir" => {
                let d = it.next().ok_or("--rules-dir needs a directory")?;
                config.rules_dir = Some(PathBuf::from(d));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok((config, help))
}

/// Process-global shutdown flag, set from the signal handler.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        // only an atomic store: async-signal-safe
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Runs `wap serve` to completion; returns the process exit code
/// (0 graceful shutdown, 1 runtime error, 2 usage error).
pub fn cli_main(args: Vec<String>) -> i32 {
    let (config, help) = match parse_serve_args(args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{SERVE_USAGE}");
            return 2;
        }
    };
    if help {
        print!("{SERVE_USAGE}");
        return 0;
    }
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding {}: {e}", config.addr);
            return 1;
        }
    };
    let handle = match server.handle() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    install_signal_handlers();
    println!("wap-serve listening on http://{}", handle.addr());
    let watcher_handle = handle.clone();
    std::thread::spawn(move || loop {
        if SIGNAL_SHUTDOWN.load(Ordering::SeqCst) {
            watcher_handle.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    match server.run() {
        Ok(()) => {
            println!("wap-serve drained, shutting down");
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let (c, help) = parse_serve_args(args(&[
            "--addr",
            "0.0.0.0:9000",
            "--jobs",
            "8",
            "--cache-dir",
            "/tmp/wc",
            "--queue",
            "5",
            "--workers",
            "3",
            "--cache-peer",
            "http://10.0.0.1:8080",
            "--peers",
            "http://10.0.0.1:8080, http://10.0.0.2:8080",
            "--advertise",
            "http://10.0.0.2:8080",
            "--rules-dir",
            "/tmp/rp",
        ]))
        .unwrap();
        assert!(!help);
        assert_eq!(c.rules_dir, Some(PathBuf::from("/tmp/rp")));
        assert_eq!(c.addr, "0.0.0.0:9000");
        assert_eq!(c.jobs, Some(8));
        assert_eq!(c.cache_dir, Some(PathBuf::from("/tmp/wc")));
        assert_eq!(c.queue_capacity, 5);
        assert_eq!(c.workers, 3);
        assert_eq!(c.cache_peer.as_deref(), Some("http://10.0.0.1:8080"));
        assert_eq!(
            c.peers,
            vec![
                "http://10.0.0.1:8080".to_string(),
                "http://10.0.0.2:8080".to_string()
            ]
        );
        assert_eq!(c.advertise.as_deref(), Some("http://10.0.0.2:8080"));
    }

    #[test]
    fn defaults_and_errors() {
        let (c, _) = parse_serve_args(args(&[])).unwrap();
        assert_eq!(c, ServeConfig::default());
        assert!(parse_serve_args(args(&["--frob"])).is_err());
        assert!(parse_serve_args(args(&["--jobs", "0"])).is_err());
        assert!(parse_serve_args(args(&["--queue", "0"])).is_err());
        assert!(parse_serve_args(args(&["--workers", "none"])).is_err());
        assert!(parse_serve_args(args(&["--addr"])).is_err());
        assert!(parse_serve_args(args(&["--cache-peer"])).is_err());
        assert!(parse_serve_args(args(&["--peers", " , "])).is_err());
        assert!(parse_serve_args(args(&["--advertise"])).is_err());
        assert!(parse_serve_args(args(&["--rules-dir"])).is_err());
        let (_, help) = parse_serve_args(args(&["--help"])).unwrap();
        assert!(help);
    }

    #[test]
    fn usage_names_the_endpoints() {
        for needle in [
            "/v1/scan",
            "/v1/jobs",
            "/v1/rules",
            "/healthz",
            "/metrics",
            "429",
            "503",
        ] {
            assert!(SERVE_USAGE.contains(needle), "usage missing {needle}");
        }
    }
}
