//! `POST /v1/batch`: scan many applications in one request, streaming one
//! NDJSON result line per app.
//!
//! The body is either a ustar archive whose members are grouped into apps
//! by their first path component (`app1/index.php`, `app2/lib/db.php`,
//! ...) or, when it does not look like a tar, a text manifest of
//! server-local directories (one per line; blank lines and `#` comments
//! ignored). Apps run in name order through the same bounded
//! [`crate::queue::JobQueue`] as single scans, so batch work obeys the
//! same admission control and drains cleanly on shutdown.
//!
//! The response streams: headers go out first (no `Content-Length`;
//! `Connection: close` delimits the stream), then one line per finished
//! app. Each line embeds the rendered report — byte-identical to what a
//! single `POST /v1/scan` of the same tree would return — as a JSON
//! string, so `jq -r .report` recovers the exact bytes.
//!
//! Batch requests are always served by the receiving replica, never
//! `307`-redirected: one batch may span many cache owners, and splitting
//! it would turn one request into N client round-trips. Cross-replica
//! cache sharing still applies per entry via the remote backend.

use crate::http::Request;
use crate::metrics::Metrics;
use crate::queue::{JobStatus, ScanRequest, SubmitError};
use crate::{scan_format, tar, Shared};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;
use wap_core::cli::FailOn;

/// How long a batch keeps retrying admission when the queue is full
/// before reporting the app as failed.
const FULL_RETRY_LIMIT: Duration = Duration::from_secs(30);

/// One named application extracted from the batch body.
struct BatchApp {
    name: String,
    sources: Vec<(String, String)>,
}

/// Handles `POST /v1/batch` end to end, writing the streamed response
/// itself (the only route that does not return through `route()`).
pub(crate) fn handle_batch(shared: &Shared, req: &Request, stream: &TcpStream) {
    let format = match scan_format(req) {
        Ok(f) => f,
        Err(err) => {
            Metrics::inc(&shared.metrics.bad_requests);
            let _ = crate::http::write_response(
                stream,
                err.http_status(),
                "text/plain; charset=utf-8",
                format!("{err}\n").as_bytes(),
                &[],
            );
            return;
        }
    };
    let lint = matches!(req.query_param("lint"), Some("1" | "true"));
    let values = matches!(req.query_param("values"), Some("1" | "true"));
    let apps = match gather_apps(&req.body) {
        Ok(a) => a,
        Err(msg) => {
            Metrics::inc(&shared.metrics.bad_requests);
            let _ = crate::http::write_response(
                stream,
                422,
                "text/plain; charset=utf-8",
                format!("bad batch: {msg}\n").as_bytes(),
                &[],
            );
            return;
        }
    };
    Metrics::inc(&shared.metrics.batch_requests);

    // stream from here on: status and headers first, then one line per
    // app as it finishes. No Content-Length — Connection: close delimits.
    let mut w = stream;
    if w.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
    )
    .is_err()
    {
        return;
    }
    for app in apps {
        let line = run_app(shared, app, format, lint, values);
        if w.write_all(line.as_bytes()).is_err() || w.flush().is_err() {
            return; // client went away; remaining apps are skipped
        }
    }
}

/// Runs one app through the shared queue and renders its NDJSON line.
fn run_app(
    shared: &Shared,
    app: BatchApp,
    format: wap_report::Format,
    lint: bool,
    values: bool,
) -> String {
    if app.sources.is_empty() {
        return format!(
            "{{\"app\":{},\"status\":\"done\",\"report\":{}}}\n",
            json_string(&app.name),
            json_string("no .php files found\n")
        );
    }
    let deadline = std::time::Instant::now() + FULL_RETRY_LIMIT;
    let id = loop {
        match shared.queue.submit(ScanRequest {
            sources: app.sources.clone(),
            format,
            lint,
            packs: Vec::new(),
            values,
            fail_on: FailOn::None,
        }) {
            Ok(id) => break id,
            Err(SubmitError::Full) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(SubmitError::Full) => {
                return fail_line(&app.name, "scan queue stayed full");
            }
            Err(SubmitError::Draining) => {
                return fail_line(&app.name, "server is draining for shutdown");
            }
        }
    };
    Metrics::inc(&shared.metrics.jobs_accepted);
    match shared.queue.wait(id) {
        Some(JobStatus::Done(out)) => format!(
            "{{\"app\":{},\"status\":\"done\",\"report\":{}}}\n",
            json_string(&app.name),
            json_string(&out.body)
        ),
        Some(JobStatus::Failed { message }) => fail_line(&app.name, &message),
        _ => fail_line(&app.name, "job vanished"),
    }
}

fn fail_line(app: &str, message: &str) -> String {
    format!(
        "{{\"app\":{},\"status\":\"failed\",\"error\":{}}}\n",
        json_string(app),
        json_string(message)
    )
}

/// Splits the batch body into named apps: a ustar upload grouped by first
/// path component, or a manifest of server-local directories.
fn gather_apps(body: &[u8]) -> Result<Vec<BatchApp>, String> {
    if body.is_empty() {
        return Err("batch needs a tar body or a directory manifest".to_string());
    }
    if looks_like_tar(body) {
        return group_tar(body);
    }
    let manifest = std::str::from_utf8(body).map_err(|_| "manifest is not UTF-8".to_string())?;
    let mut apps = Vec::new();
    for line in manifest.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let files = wap_core::cli::collect_php_files(&[PathBuf::from(line)])
            .map_err(|e| format!("{line}: {e}"))?;
        let mut sources = Vec::with_capacity(files.len());
        for f in files {
            let contents =
                std::fs::read_to_string(&f).map_err(|e| format!("{}: {e}", f.display()))?;
            sources.push((f.display().to_string(), contents));
        }
        apps.push(BatchApp {
            name: line.to_string(),
            sources,
        });
    }
    if apps.is_empty() {
        return Err("manifest lists no directories".to_string());
    }
    apps.sort_by(|a, b| a.name.cmp(&b.name));
    apps.dedup_by(|a, b| a.name == b.name);
    Ok(apps)
}

/// A 512-byte-aligned body with the ustar magic in its first header is an
/// archive; anything else is treated as a manifest.
fn looks_like_tar(body: &[u8]) -> bool {
    body.len() >= 512 && body.len() % 512 == 0 && &body[257..262] == b"ustar"
}

/// Groups archive members into apps by their first path component. Member
/// names are kept in full, so each app's sources — and therefore its
/// rendered report — are byte-identical to scanning the same archive
/// alone.
fn group_tar(body: &[u8]) -> Result<Vec<BatchApp>, String> {
    let members = tar::extract_php_sources(body)?;
    let mut by_app: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for (name, contents) in members {
        let app = name
            .trim_start_matches("./")
            .split('/')
            .next()
            .unwrap_or(&name)
            .to_string();
        by_app.entry(app).or_default().push((name, contents));
    }
    Ok(by_app
        .into_iter()
        .map(|(name, mut sources)| {
            // same ordering contract as scan_sources and the CLI walk
            sources.sort_by(|a, b| a.0.cmp(&b.0));
            sources.dedup_by(|a, b| a.0 == b.0);
            BatchApp { name, sources }
        })
        .collect())
}

/// Renders `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes_the_report_alphabet() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn tar_bodies_group_by_first_component() {
        let archive = tar::build(&[
            ("app2/x.php".to_string(), "<?php echo 2;\n".to_string()),
            ("app1/a/y.php".to_string(), "<?php echo 1;\n".to_string()),
            ("app1/z.php".to_string(), "<?php echo 3;\n".to_string()),
        ]);
        assert!(looks_like_tar(&archive));
        let apps = gather_apps(&archive).unwrap();
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].name, "app1");
        assert_eq!(
            apps[0]
                .sources
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["app1/a/y.php", "app1/z.php"],
            "member names stay full and sorted"
        );
        assert_eq!(apps[1].name, "app2");
    }

    #[test]
    fn manifest_bodies_list_directories() {
        let dir = std::env::temp_dir().join(format!("wap-batch-man-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("m.php"), "<?php echo 1;\n").unwrap();
        let manifest = format!("# comment\n\n{}\n", dir.display());
        let apps = gather_apps(manifest.as_bytes()).unwrap();
        assert_eq!(apps.len(), 1);
        assert_eq!(apps[0].sources.len(), 1);
        // empty and unreadable manifests are client errors
        assert!(gather_apps(b"").is_err());
        assert!(gather_apps(b"# only comments\n").is_err());
        assert!(gather_apps("/nonexistent-wap-dir\n".as_bytes()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
