//! Service counters, latency histograms, and their Prometheus exposition.
//!
//! Counters are plain atomics bumped by HTTP handlers and executors;
//! latency distributions are [`wap_obs::Histogram`]s fed from each scan's
//! [`wap_report::ScanStats`] and from queue timestamps. The `/metrics`
//! endpoint renders everything in the text exposition format (one
//! `# TYPE` line per family). Queue depth and in-flight gauges are read
//! from the live [`crate::queue::JobQueue`] at render time rather than
//! mirrored here, so they can never go stale.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wap_obs::Histogram;
use wap_report::{AppReport, Phase};

/// The pipeline phases exposed as per-phase latency series. These are the
/// phases every scan measures unconditionally (the finer traced phases
/// only exist when a collector is enabled), plus the CFG and lint phases,
/// which are zero unless a scan requested `?lint=1` or guard attributes.
pub const EXPOSED_PHASES: [Phase; 6] = [
    Phase::Parse,
    Phase::Taint,
    Phase::Predict,
    Phase::Cache,
    Phase::Cfg,
    Phase::Lint,
];

/// Monotonic service counters and latency histograms.
#[derive(Debug)]
pub struct Metrics {
    /// Scans admitted to the queue.
    pub jobs_accepted: AtomicU64,
    /// Scans refused at admission (queue full).
    pub jobs_rejected: AtomicU64,
    /// Scans refused because the server was draining.
    pub jobs_refused_draining: AtomicU64,
    /// Scans that finished and produced a report.
    pub jobs_completed: AtomicU64,
    /// Scans that failed.
    pub jobs_failed: AtomicU64,
    /// Requests that could not be parsed or routed.
    pub bad_requests: AtomicU64,
    /// Incremental-cache hits across all scans.
    pub cache_hits: AtomicU64,
    /// Incremental-cache misses across all scans.
    pub cache_misses: AtomicU64,
    /// Incremental-cache entries stored across all scans.
    pub cache_stored: AtomicU64,
    /// Entries served by the remote cache peer across all scans.
    pub remote_cache_hits: AtomicU64,
    /// Remote-peer lookups that found nothing.
    pub remote_cache_misses: AtomicU64,
    /// Remote-peer lookups that failed (unreachable, corrupt payload) and
    /// degraded to the local path.
    pub remote_cache_errors: AtomicU64,
    /// Scans answered `307` because a fleet peer owns their cache key.
    pub jobs_redirected: AtomicU64,
    /// `POST /v1/batch` requests accepted.
    pub batch_requests: AtomicU64,
    /// End-to-end scan latency (admission excluded), seconds.
    pub scan_duration: Histogram,
    /// Time from admission to executor pickup, seconds.
    pub queue_wait: Histogram,
    /// Per-phase time within each scan, one histogram per
    /// [`EXPOSED_PHASES`] entry.
    pub phase_durations: [Histogram; 6],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            jobs_accepted: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_refused_draining: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_stored: AtomicU64::new(0),
            remote_cache_hits: AtomicU64::new(0),
            remote_cache_misses: AtomicU64::new(0),
            remote_cache_errors: AtomicU64::new(0),
            jobs_redirected: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            scan_duration: Histogram::default(),
            queue_wait: Histogram::default(),
            phase_durations: std::array::from_fn(|_| Histogram::default()),
        }
    }
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one finished scan's statistics into the totals. Every
    /// completed scan contributes exactly one observation to the scan
    /// histogram and to each per-phase histogram, so their `_count`
    /// series always agree with `jobs_completed`.
    pub fn record_report(&self, report: &AppReport) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(report.cache.hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(report.cache.misses, Ordering::Relaxed);
        self.cache_stored
            .fetch_add(report.cache.stored, Ordering::Relaxed);
        self.remote_cache_hits
            .fetch_add(report.cache.remote_hits, Ordering::Relaxed);
        self.remote_cache_misses
            .fetch_add(report.cache.remote_misses, Ordering::Relaxed);
        self.remote_cache_errors
            .fetch_add(report.cache.remote_errors, Ordering::Relaxed);
        self.scan_duration
            .observe_ns(report.duration.as_nanos().min(u64::MAX as u128) as u64);
        for (i, phase) in EXPOSED_PHASES.iter().enumerate() {
            self.phase_durations[i].observe_ns(report.stats.phase_ns(*phase));
        }
    }

    /// Records how long one scan sat in the queue before an executor
    /// claimed it.
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait
            .observe_ns(wait.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Renders the text exposition, with the live queue gauges supplied by
    /// the caller.
    pub fn render(&self, queue_depth: usize, in_flight: usize) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        gauge(
            "wap_serve_queue_depth",
            "Scans admitted and waiting for an executor.",
            queue_depth as u64,
        );
        gauge(
            "wap_serve_jobs_in_flight",
            "Scans currently being analyzed.",
            in_flight as u64,
        );
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "wap_serve_jobs_accepted_total",
            "Scans admitted to the queue.",
            g(&self.jobs_accepted),
        );
        counter(
            "wap_serve_jobs_rejected_total",
            "Scans refused at admission (queue full).",
            g(&self.jobs_rejected),
        );
        counter(
            "wap_serve_jobs_refused_draining_total",
            "Scans refused during graceful shutdown.",
            g(&self.jobs_refused_draining),
        );
        counter(
            "wap_serve_jobs_completed_total",
            "Scans that produced a report.",
            g(&self.jobs_completed),
        );
        counter(
            "wap_serve_jobs_failed_total",
            "Scans that failed.",
            g(&self.jobs_failed),
        );
        counter(
            "wap_serve_bad_requests_total",
            "Requests that could not be parsed or routed.",
            g(&self.bad_requests),
        );
        counter(
            "wap_serve_cache_hits_total",
            "Incremental-cache hits across scans.",
            g(&self.cache_hits),
        );
        counter(
            "wap_serve_cache_misses_total",
            "Incremental-cache misses across scans.",
            g(&self.cache_misses),
        );
        counter(
            "wap_serve_cache_stored_total",
            "Incremental-cache entries stored across scans.",
            g(&self.cache_stored),
        );
        counter(
            "wap_serve_remote_cache_hits_total",
            "Incremental-cache entries served by the remote peer.",
            g(&self.remote_cache_hits),
        );
        counter(
            "wap_serve_remote_cache_misses_total",
            "Remote-peer lookups that found nothing.",
            g(&self.remote_cache_misses),
        );
        counter(
            "wap_serve_remote_cache_errors_total",
            "Remote-peer lookups that failed and fell back to local.",
            g(&self.remote_cache_errors),
        );
        counter(
            "wap_serve_jobs_redirected_total",
            "Scans answered 307 because a fleet peer owns the key.",
            g(&self.jobs_redirected),
        );
        counter(
            "wap_serve_batch_requests_total",
            "Batch scan requests accepted.",
            g(&self.batch_requests),
        );
        // the historical per-phase counter, now derived from the phase
        // histograms so the two families can never disagree
        out.push_str(
            "# HELP wap_serve_phase_ns_total Nanoseconds per pipeline phase, summed over scans.\n\
             # TYPE wap_serve_phase_ns_total counter\n",
        );
        for (i, phase) in EXPOSED_PHASES.iter().enumerate() {
            out.push_str(&format!(
                "wap_serve_phase_ns_total{{phase=\"{}\"}} {}\n",
                phase.name(),
                self.phase_durations[i].sum_ns()
            ));
        }
        out.push_str(
            "# HELP wap_serve_scan_duration_seconds End-to-end scan latency.\n\
             # TYPE wap_serve_scan_duration_seconds histogram\n",
        );
        self.scan_duration
            .render_into(&mut out, "wap_serve_scan_duration_seconds", "");
        out.push_str(
            "# HELP wap_serve_queue_wait_seconds Time from admission to executor pickup.\n\
             # TYPE wap_serve_queue_wait_seconds histogram\n",
        );
        self.queue_wait
            .render_into(&mut out, "wap_serve_queue_wait_seconds", "");
        out.push_str(
            "# HELP wap_serve_phase_duration_seconds Per-scan time spent in each pipeline phase.\n\
             # TYPE wap_serve_phase_duration_seconds histogram\n",
        );
        for (i, phase) in EXPOSED_PHASES.iter().enumerate() {
            self.phase_durations[i].render_into(
                &mut out,
                "wap_serve_phase_duration_seconds",
                &format!("phase=\"{}\"", phase.name()),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Maps a series name to the family that must carry its `# TYPE`
    /// line: histogram series drop their `_bucket`/`_sum`/`_count`
    /// suffix.
    fn family_of(name: &str) -> &str {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if base.ends_with("_seconds") {
                    return base;
                }
            }
        }
        name
    }

    #[test]
    fn exposition_contains_every_family() {
        let m = Metrics::default();
        Metrics::inc(&m.jobs_accepted);
        Metrics::inc(&m.jobs_rejected);
        let text = m.render(3, 1);
        assert!(text.contains("wap_serve_queue_depth 3"), "{text}");
        assert!(text.contains("wap_serve_jobs_in_flight 1"), "{text}");
        assert!(text.contains("wap_serve_jobs_accepted_total 1"), "{text}");
        assert!(text.contains("wap_serve_jobs_rejected_total 1"), "{text}");
        assert!(
            text.contains("wap_serve_phase_ns_total{phase=\"taint\"} 0"),
            "{text}"
        );
        // every exposed series belongs to a typed family
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            let family = family_of(name);
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "family {family} (series {name}) missing TYPE"
            );
        }
    }

    #[test]
    fn histograms_track_reports_and_queue_waits() {
        let m = Metrics::default();
        let mut report = AppReport::default();
        report.duration = Duration::from_millis(30);
        report.stats.set_phase_ns(Phase::Parse, 2_000_000);
        report.stats.set_phase_ns(Phase::Taint, 500_000_000);
        report.cache.remote_hits = 4;
        report.cache.remote_misses = 2;
        report.cache.remote_errors = 1;
        m.record_report(&report);
        m.record_report(&report);
        m.record_queue_wait(Duration::from_millis(3));
        assert_eq!(m.scan_duration.count(), 2);
        assert_eq!(m.queue_wait.count(), 1);
        for h in &m.phase_durations {
            assert_eq!(h.count(), 2, "one observation per scan per phase");
        }
        let text = m.render(0, 0);
        // cumulative bucket counts: both 30ms scans fall at or below 0.05s
        assert!(
            text.contains("wap_serve_scan_duration_seconds_bucket{le=\"0.05\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("wap_serve_scan_duration_seconds_count 2"),
            "{text}"
        );
        assert!(
            text.contains("wap_serve_queue_wait_seconds_count 1"),
            "{text}"
        );
        assert!(
            text.contains("wap_serve_phase_duration_seconds_count{phase=\"taint\"} 2"),
            "{text}"
        );
        // the legacy counter is the histogram's sum
        assert!(
            text.contains("wap_serve_phase_ns_total{phase=\"taint\"} 1000000000"),
            "{text}"
        );
        // remote-cache counters fold per-report deltas (two reports here)
        assert!(
            text.contains("wap_serve_remote_cache_hits_total 8"),
            "{text}"
        );
        assert!(
            text.contains("wap_serve_remote_cache_misses_total 4"),
            "{text}"
        );
        assert!(
            text.contains("wap_serve_remote_cache_errors_total 2"),
            "{text}"
        );
    }
}
