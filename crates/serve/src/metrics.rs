//! Service counters and their Prometheus text exposition.
//!
//! Counters are plain atomics bumped by HTTP handlers and executors; the
//! `/metrics` endpoint renders them in the text exposition format (one
//! `# TYPE` line per family). Queue depth and in-flight gauges are read
//! from the live [`crate::queue::JobQueue`] at render time rather than
//! mirrored here, so they can never go stale.

use std::sync::atomic::{AtomicU64, Ordering};
use wap_report::AppReport;

/// Monotonic service counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Scans admitted to the queue.
    pub jobs_accepted: AtomicU64,
    /// Scans refused at admission (queue full).
    pub jobs_rejected: AtomicU64,
    /// Scans refused because the server was draining.
    pub jobs_refused_draining: AtomicU64,
    /// Scans that finished and produced a report.
    pub jobs_completed: AtomicU64,
    /// Scans that failed.
    pub jobs_failed: AtomicU64,
    /// Requests that could not be parsed or routed.
    pub bad_requests: AtomicU64,
    /// Incremental-cache hits across all scans.
    pub cache_hits: AtomicU64,
    /// Incremental-cache misses across all scans.
    pub cache_misses: AtomicU64,
    /// Incremental-cache entries stored across all scans.
    pub cache_stored: AtomicU64,
    /// Nanoseconds spent parsing, summed over scans.
    pub parse_ns: AtomicU64,
    /// Nanoseconds spent in taint analysis, summed over scans.
    pub taint_ns: AtomicU64,
    /// Nanoseconds spent predicting false positives, summed over scans.
    pub predict_ns: AtomicU64,
    /// Nanoseconds of cache overhead, summed over scans.
    pub cache_ns: AtomicU64,
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one finished scan's statistics into the totals.
    pub fn record_report(&self, report: &AppReport) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(report.cache.hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(report.cache.misses, Ordering::Relaxed);
        self.cache_stored
            .fetch_add(report.cache.stored, Ordering::Relaxed);
        self.parse_ns.fetch_add(report.parse_ns, Ordering::Relaxed);
        self.taint_ns.fetch_add(report.taint_ns, Ordering::Relaxed);
        self.predict_ns
            .fetch_add(report.predict_ns, Ordering::Relaxed);
        self.cache_ns.fetch_add(report.cache_ns, Ordering::Relaxed);
    }

    /// Renders the text exposition, with the live queue gauges supplied by
    /// the caller.
    pub fn render(&self, queue_depth: usize, in_flight: usize) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        gauge(
            "wap_serve_queue_depth",
            "Scans admitted and waiting for an executor.",
            queue_depth as u64,
        );
        gauge(
            "wap_serve_jobs_in_flight",
            "Scans currently being analyzed.",
            in_flight as u64,
        );
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "wap_serve_jobs_accepted_total",
            "Scans admitted to the queue.",
            g(&self.jobs_accepted),
        );
        counter(
            "wap_serve_jobs_rejected_total",
            "Scans refused at admission (queue full).",
            g(&self.jobs_rejected),
        );
        counter(
            "wap_serve_jobs_refused_draining_total",
            "Scans refused during graceful shutdown.",
            g(&self.jobs_refused_draining),
        );
        counter(
            "wap_serve_jobs_completed_total",
            "Scans that produced a report.",
            g(&self.jobs_completed),
        );
        counter(
            "wap_serve_jobs_failed_total",
            "Scans that failed.",
            g(&self.jobs_failed),
        );
        counter(
            "wap_serve_bad_requests_total",
            "Requests that could not be parsed or routed.",
            g(&self.bad_requests),
        );
        counter(
            "wap_serve_cache_hits_total",
            "Incremental-cache hits across scans.",
            g(&self.cache_hits),
        );
        counter(
            "wap_serve_cache_misses_total",
            "Incremental-cache misses across scans.",
            g(&self.cache_misses),
        );
        counter(
            "wap_serve_cache_stored_total",
            "Incremental-cache entries stored across scans.",
            g(&self.cache_stored),
        );
        out.push_str(
            "# HELP wap_serve_phase_ns_total Nanoseconds per pipeline phase, summed over scans.\n\
             # TYPE wap_serve_phase_ns_total counter\n",
        );
        for (phase, v) in [
            ("parse", g(&self.parse_ns)),
            ("taint", g(&self.taint_ns)),
            ("predict", g(&self.predict_ns)),
            ("cache", g(&self.cache_ns)),
        ] {
            out.push_str(&format!(
                "wap_serve_phase_ns_total{{phase=\"{phase}\"}} {v}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_every_family() {
        let m = Metrics::default();
        Metrics::inc(&m.jobs_accepted);
        Metrics::inc(&m.jobs_rejected);
        let text = m.render(3, 1);
        assert!(text.contains("wap_serve_queue_depth 3"), "{text}");
        assert!(text.contains("wap_serve_jobs_in_flight 1"), "{text}");
        assert!(text.contains("wap_serve_jobs_accepted_total 1"), "{text}");
        assert!(text.contains("wap_serve_jobs_rejected_total 1"), "{text}");
        assert!(
            text.contains("wap_serve_phase_ns_total{phase=\"taint\"} 0"),
            "{text}"
        );
        // every exposed family is typed
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(
                text.contains(&format!("# TYPE {name} ")),
                "family {name} missing TYPE"
            );
        }
    }
}
