//! Minimal ustar reading and writing.
//!
//! `POST /v1/scan` accepts an uploaded tarball of PHP sources; this module
//! extracts regular `.php` members into `(name, contents)` pairs. Only the
//! subset of ustar the service needs is implemented: regular files, names
//! split across the `name` and `prefix` fields, octal sizes, 512-byte
//! blocks. Anything else (symlinks, devices, pax extensions) is skipped.
//! The writer exists for tests and clients; it emits plain ustar.

const BLOCK: usize = 512;

/// Extracts the `.php` regular files from a ustar archive.
///
/// Member paths are normalized (leading `./` stripped) and validated:
/// absolute paths and `..` components are rejected outright, so a crafted
/// archive cannot name files outside its own tree.
///
/// # Errors
///
/// Returns a message for truncated archives, non-UTF-8 PHP sources, and
/// unsafe member paths.
pub fn extract_php_sources(data: &[u8]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset + BLOCK <= data.len() {
        let header = &data[offset..offset + BLOCK];
        if header.iter().all(|&b| b == 0) {
            break; // end-of-archive marker
        }
        let name = header_name(header)?;
        let size = octal_field(&header[124..136])
            .ok_or_else(|| format!("bad size field for member {name}"))?;
        let typeflag = header[156];
        offset += BLOCK;
        let end = offset
            .checked_add(size)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| format!("member {name} is truncated"))?;
        if typeflag == b'0' || typeflag == 0 {
            check_member_path(&name)?;
            if name.ends_with(".php") {
                let contents = std::str::from_utf8(&data[offset..end])
                    .map_err(|_| format!("member {name} is not UTF-8"))?
                    .to_string();
                out.push((name, contents));
            }
        }
        offset = end.div_ceil(BLOCK) * BLOCK;
    }
    Ok(out)
}

/// Reassembles a member name from the ustar `prefix` and `name` fields and
/// strips a leading `./`.
fn header_name(header: &[u8]) -> Result<String, String> {
    let name = cstr_field(&header[0..100]);
    let prefix = cstr_field(&header[345..500]);
    let full = if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}/{name}")
    };
    let full = full.strip_prefix("./").unwrap_or(&full).to_string();
    if full.is_empty() {
        return Err("tar member with empty name".to_string());
    }
    Ok(full)
}

/// Rejects member paths that escape the archive root.
fn check_member_path(name: &str) -> Result<(), String> {
    if name.starts_with('/') {
        return Err(format!("absolute member path {name}"));
    }
    if name.split('/').any(|c| c == "..") {
        return Err(format!("member path {name} contains .."));
    }
    Ok(())
}

/// A NUL-terminated string field.
fn cstr_field(field: &[u8]) -> &str {
    let end = field.iter().position(|&b| b == 0).unwrap_or(field.len());
    std::str::from_utf8(&field[..end]).unwrap_or("").trim()
}

/// Parses an octal size field (NUL/space padded).
fn octal_field(field: &[u8]) -> Option<usize> {
    let s = cstr_field(field);
    if s.is_empty() {
        return Some(0);
    }
    usize::from_str_radix(s, 8).ok()
}

/// Builds a ustar archive of the given `(name, contents)` members.
/// Used by tests and by clients that upload in-memory trees.
pub fn build(members: &[(String, String)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (name, contents) in members {
        let mut header = [0u8; BLOCK];
        let name_bytes = name.as_bytes();
        assert!(name_bytes.len() < 100, "tar writer: name too long: {name}");
        header[..name_bytes.len()].copy_from_slice(name_bytes);
        header[100..108].copy_from_slice(b"0000644\0"); // mode
        header[108..116].copy_from_slice(b"0000000\0"); // uid
        header[116..124].copy_from_slice(b"0000000\0"); // gid
        let size = format!("{:011o}\0", contents.len());
        header[124..136].copy_from_slice(size.as_bytes());
        header[136..148].copy_from_slice(b"00000000000\0"); // mtime
        header[148..156].copy_from_slice(b"        "); // checksum placeholder
        header[156] = b'0'; // regular file
        header[257..263].copy_from_slice(b"ustar\0");
        header[263..265].copy_from_slice(b"00");
        let checksum: u32 = header.iter().map(|&b| b as u32).sum();
        let checksum = format!("{checksum:06o}\0 ");
        header[148..156].copy_from_slice(checksum.as_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(contents.as_bytes());
        let pad = contents.len().div_ceil(BLOCK) * BLOCK - contents.len();
        out.extend(std::iter::repeat(0u8).take(pad));
    }
    out.extend(std::iter::repeat(0u8).take(2 * BLOCK)); // end-of-archive
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(v: &[(&str, &str)]) -> Vec<(String, String)> {
        v.iter()
            .map(|(n, c)| (n.to_string(), c.to_string()))
            .collect()
    }

    #[test]
    fn round_trips_php_members() {
        let m = members(&[
            ("app/index.php", "<?php echo $_GET['v'];\n"),
            ("app/readme.txt", "not php"),
            ("app/lib/db.php", "<?php mysql_query($_GET['q']);\n"),
        ]);
        let archive = build(&m);
        let got = extract_php_sources(&archive).unwrap();
        assert_eq!(
            got,
            members(&[
                ("app/index.php", "<?php echo $_GET['v'];\n"),
                ("app/lib/db.php", "<?php mysql_query($_GET['q']);\n"),
            ])
        );
    }

    #[test]
    fn rejects_escaping_paths() {
        let archive = build(&members(&[("../evil.php", "<?php ?>")]));
        assert!(extract_php_sources(&archive).is_err());
        let archive = build(&members(&[("a/../../evil.php", "<?php ?>")]));
        assert!(extract_php_sources(&archive).is_err());
    }

    #[test]
    fn rejects_truncated_archives() {
        let mut archive = build(&members(&[("a.php", "<?php echo 1;\n")]));
        archive.truncate(BLOCK + 4); // header + partial body
        assert!(extract_php_sources(&archive).is_err());
    }

    #[test]
    fn empty_archive_is_empty() {
        assert!(extract_php_sources(&[0u8; 2 * BLOCK]).unwrap().is_empty());
        assert!(extract_php_sources(&[]).unwrap().is_empty());
    }

    #[test]
    fn strips_leading_dot_slash() {
        let archive = build(&members(&[("./x.php", "<?php ?>")]));
        let got = extract_php_sources(&archive).unwrap();
        assert_eq!(got[0].0, "x.php");
    }
}
