//! Dominance-based guard analysis.
//!
//! A sink is *guarded* on variable `$v` when either
//!
//! 1. some CFG edge carrying a guard on `$v` (e.g. the true edge of
//!    `is_numeric($v)`, or the false edge of `!is_numeric($v)`) leads to a
//!    block that **dominates** the sink, and `$v` is not redefined on any
//!    path between that block and the sink; or
//! 2. every definition of `$v` reaching the sink is itself sanitizing —
//!    an `(int)`/`(float)`/`(bool)` cast or an `intval`-family conversion.
//!
//! Both conditions are sound over the lowered graph: dominance proves the
//! validation necessarily executed, and the redefinition check proves the
//! validated value is the one flowing into the sink.

use crate::dominators::Dominators;
use crate::graph::{BlockId, Cfg, Guard};
use crate::reach::ReachingDefs;
use wap_php::ast::Expr;
use wap_php::Symbol;

/// A proven "validator dominates this program point" fact.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GuardFact {
    /// The guarded variable (without `$`).
    pub var: Symbol,
    /// Lower-cased validator establishing the guard (`is_numeric`,
    /// `preg_match`, `in_array`, `cast_int`, `intval`, ...).
    pub validator: Symbol,
}

/// Validators whose truthiness checks their **first** argument.
const ARG0_VALIDATORS: &[&str] = &[
    "is_numeric",
    "is_int",
    "is_integer",
    "is_long",
    "is_float",
    "is_double",
    "is_real",
    "is_bool",
    "is_scalar",
    "ctype_digit",
    "ctype_alpha",
    "ctype_alnum",
    "in_array",
];

/// Validators whose truthiness checks their **second** argument
/// (`preg_match($pattern, $subject)`).
const ARG1_VALIDATORS: &[&str] = &["preg_match", "preg_match_all"];

/// Recognizes a call to a known validator and extracts the guarded
/// variable. Function-name matching is case-insensitive, like PHP.
pub(crate) fn validator_call(name: Symbol, args: &[Expr]) -> Option<Guard> {
    let lower = name.lower();
    let arg = if ARG0_VALIDATORS.contains(&lower.as_str()) {
        args.first()
    } else if ARG1_VALIDATORS.contains(&lower.as_str()) {
        args.get(1)
    } else {
        return None;
    }?;
    let var = arg.root_var_symbol()?;
    Some(Guard {
        var,
        validator: lower,
    })
}

/// Whether an expression is a call to a known validator (any position).
/// Used by consumers that only need a yes/no classification.
pub fn is_validator_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    ARG0_VALIDATORS.contains(&lower.as_str()) || ARG1_VALIDATORS.contains(&lower.as_str())
}

/// Per-function guard analysis: dominators + reaching defs over one CFG.
#[derive(Debug)]
pub struct GuardAnalysis<'c> {
    cfg: &'c Cfg,
    doms: Dominators,
    reach: ReachingDefs,
    reachable: Vec<bool>,
}

impl<'c> GuardAnalysis<'c> {
    /// Builds the analysis for `cfg` (computes dominators and reaching
    /// definitions once; queries are then cheap graph walks).
    pub fn new(cfg: &'c Cfg) -> GuardAnalysis<'c> {
        GuardAnalysis {
            cfg,
            doms: Dominators::compute(cfg),
            reach: ReachingDefs::compute(cfg),
            reachable: cfg.reachable(),
        }
    }

    /// All guards on any of `vars` proven to dominate node
    /// `(block, node)`. Deterministically sorted by `(var, validator)`.
    pub fn guards_at(&self, block: BlockId, node: usize, vars: &[Symbol]) -> Vec<GuardFact> {
        let mut out: Vec<GuardFact> = Vec::new();
        // condition 1: a dominating guard *edge* with no intervening redef.
        // The edge P→Q dominates the sink when Q dominates it AND P→Q is
        // Q's only in-edge: then every path to the sink takes the edge, and
        // re-entering Q (e.g. around a loop) re-validates the variable.
        for (p, pb) in self.cfg.blocks.iter().enumerate() {
            for e in &pb.succs {
                if e.guards.is_empty() || !self.reachable.get(e.to).copied().unwrap_or(false) {
                    continue;
                }
                if self.cfg.blocks[e.to].preds != [p] {
                    continue;
                }
                if !self.doms.dominates(e.to, block) {
                    continue;
                }
                for g in &e.guards {
                    if !vars.contains(&g.var) {
                        continue;
                    }
                    if self.redefined_between(g.var, e.to, block, node) {
                        continue;
                    }
                    out.push(GuardFact {
                        var: g.var,
                        validator: g.validator,
                    });
                }
            }
        }
        // condition 2: every reaching def is itself sanitizing
        for var in vars {
            let defs = self.reach.defs_reaching(self.cfg, block, node, *var);
            if !defs.is_empty() && defs.iter().all(|d| d.is_guard()) {
                for d in defs {
                    out.push(GuardFact {
                        var: *var,
                        validator: d.validator.expect("guard def has validator"),
                    });
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Whether `var` may be redefined on some path segment from the guard
    /// edge's target `q` to node `(block, node)` that does **not** pass
    /// through `q` again (re-entering `q` re-takes the guard edge, which
    /// re-validates the variable).
    fn redefined_between(&self, var: Symbol, q: BlockId, block: BlockId, node: usize) -> bool {
        // defs inside q itself run after the guard and before any exit
        let q_limit = if q == block {
            node
        } else {
            self.cfg.blocks[q].nodes.len()
        };
        for n in &self.cfg.blocks[q].nodes[..q_limit] {
            if n.defs.contains(&var) {
                return true;
            }
        }
        if q == block {
            return false;
        }
        let from_set = self.cfg.reachable_from(q);
        let avoid_q = self.reaching_avoiding(block, q);
        for (x, xb) in self.cfg.blocks.iter().enumerate() {
            if x == q || !from_set[x] || !avoid_q[x] {
                continue;
            }
            for (i, n) in xb.nodes.iter().enumerate() {
                if x == block && i >= node {
                    break; // at or after the sink
                }
                if n.defs.contains(&var) {
                    return true;
                }
            }
        }
        false
    }

    /// Blocks with a path to `to` that does not pass through `q`.
    fn reaching_avoiding(&self, to: BlockId, q: BlockId) -> Vec<bool> {
        let mut seen = vec![false; self.cfg.blocks.len()];
        let mut stack = vec![to];
        seen[to] = true;
        while let Some(b) = stack.pop() {
            if b == q {
                continue; // do not traverse through q
            }
            for &p in &self.cfg.blocks[b].preds {
                if !seen[p] {
                    seen[p] = true;
                    stack.push(p);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::lower_program;
    use wap_php::parse;

    fn guards(src: &str, sink: &str, vars: &[&str]) -> Vec<GuardFact> {
        let f = lower_program(&parse(src).expect("parse"));
        let span = f.find_call(sink).expect("sink call present");
        let syms: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
        f.dominating_guards(span, &syms)
    }

    #[test]
    fn positive_guard_dominates_then_branch() {
        let g = guards(
            "<?php $id = $_GET['id']; if (is_numeric($id)) { mysql_query($id); }",
            "mysql_query",
            &["id"],
        );
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].validator, "is_numeric");
        assert_eq!(g[0].var, "id");
    }

    #[test]
    fn negated_guard_with_exit_dominates_continuation() {
        let g = guards(
            "<?php $id = $_GET['id']; if (!is_numeric($id)) { exit; } mysql_query($id);",
            "mysql_query",
            &["id"],
        );
        assert_eq!(g.len(), 1, "false-edge guard must dominate the sink");
        assert_eq!(g[0].validator, "is_numeric");
    }

    #[test]
    fn unguarded_sink_yields_nothing() {
        let g = guards(
            "<?php $id = $_GET['id']; mysql_query($id);",
            "mysql_query",
            &["id"],
        );
        assert!(g.is_empty());
    }

    #[test]
    fn guard_on_one_branch_only_does_not_dominate() {
        let g = guards(
            "<?php if ($c) { if (!is_numeric($id)) { exit; } } mysql_query($id);",
            "mysql_query",
            &["id"],
        );
        assert!(g.is_empty(), "guard inside one arm must not dominate");
    }

    #[test]
    fn redefinition_after_guard_invalidates_it() {
        let g = guards(
            "<?php if (!is_numeric($id)) { exit; } $id = $_GET['id']; mysql_query($id);",
            "mysql_query",
            &["id"],
        );
        assert!(g.is_empty(), "redef between guard and sink kills the guard");
    }

    #[test]
    fn sanitizing_cast_guards_without_a_branch() {
        let g = guards(
            "<?php $id = (int)$_GET['id']; mysql_query($id);",
            "mysql_query",
            &["id"],
        );
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].validator, "cast_int");
    }

    #[test]
    fn intval_def_guards() {
        let g = guards(
            "<?php $n = intval($_POST['n']); mysql_query($n);",
            "mysql_query",
            &["n"],
        );
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].validator, "intval");
    }

    #[test]
    fn mixed_defs_do_not_guard() {
        let g = guards(
            "<?php if ($c) { $id = intval($x); } else { $id = $_GET['id']; } mysql_query($id);",
            "mysql_query",
            &["id"],
        );
        assert!(g.is_empty());
    }

    #[test]
    fn preg_match_guard_on_subject() {
        let g = guards(
            "<?php if (!preg_match('/^[a-z]+$/', $name)) { die('bad'); } mysql_query($name);",
            "mysql_query",
            &["name"],
        );
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].validator, "preg_match");
        assert_eq!(g[0].var, "name");
    }

    #[test]
    fn in_array_guard_on_first_arg() {
        let g = guards(
            "<?php if (in_array($col, array('a','b'))) { mysql_query($col); }",
            "mysql_query",
            &["col"],
        );
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].validator, "in_array");
    }

    #[test]
    fn guard_inside_loop_body_applies_to_loop_sink() {
        let g = guards(
            "<?php foreach ($ids as $id) { if (!is_int($id)) { continue; } mysql_query($id); }",
            "mysql_query",
            &["id"],
        );
        assert_eq!(g.len(), 1, "continue-guard dominates the rest of the body");
        assert_eq!(g[0].validator, "is_int");
    }

    #[test]
    fn multiple_vars_report_only_guarded_ones() {
        let g = guards(
            "<?php if (!is_numeric($a)) { exit; } mysql_query($a . $b);",
            "mysql_query",
            &["a", "b"],
        );
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].var, "a");
    }

    #[test]
    fn validator_name_classification() {
        assert!(is_validator_name("is_numeric"));
        assert!(is_validator_name("PREG_MATCH"));
        assert!(!is_validator_name("strlen"));
    }
}
