//! Interprocedural constant/string value analysis (`--values`).
//!
//! The taint pass knows *whether* attacker data reaches a sink; this pass
//! knows *what else* is there: constant scalars, literal string prefixes,
//! and the concrete strings dynamic constructs evaluate to. Three
//! consumers make it load-bearing:
//!
//! 1. **Call/include resolution** — `include $base . "/db.php"` and
//!    variable-function/`call_user_func` targets that evaluate to a known
//!    constant set become extra call-graph edges for the taint engine
//!    (resolved includes are executed instead of skipped).
//! 2. **Sink-context modeling** — a [`SinkContext`] query derived from
//!    the value lattice at a tainted sink (`quoted-string`,
//!    `numeric-cast`, `identifier-position`) feeds the FP committee.
//! 3. **Value-aware pattern rules** — `const($X)` / `matches-value($X)`
//!    `where` constraints in rule packs query [`FileValues::value_at`].
//!
//! ## The lattice
//!
//! ```text
//!                    ⊤ (Top — anything)
//!            /               |              \
//!       NumTop        Strs{exact:false}      |
//!          |          (known prefixes)       |
//!       Num(n)        Strs{exact:true}       |
//!            \               |              /
//!                    ⊥ (Bot — no value)
//! ```
//!
//! String sets are bounded by [`MAX_VALUE_SET`] members of at most
//! [`MAX_VALUE_LEN`] bytes; concatenation past either bound widens an
//! exact set to a prefix set (the left operand's strings survive as
//! known prefixes), and joins past the bound widen to ⊤. This keeps the
//! domain finite, so the bounded loop re-execution the taint engine also
//! uses (two passes) reaches a fixpoint.
//!
//! ## Analysis shape
//!
//! The interpreter walks the *AST* flow-sensitively (branch joins,
//! bounded loops) rather than iterating over CFG blocks: statement-level
//! environments are exactly what the consumers query, and the AST walk
//! mirrors the taint engine's evaluation order so the two analyses agree
//! on what executes. Interprocedural flow uses the same two-phase shape
//! as `wap-taint`: [`summarize_values`] extracts a per-function return
//! template (phase A, per file), the caller merges templates
//! first-declaration-wins across files, and [`analyze_file_values`]
//! (phase B) applies them at call sites. Function bodies are analyzed
//! once with parameters at ⊤ (context-insensitive); call-site argument
//! values flow through the return templates instead.
//!
//! Everything here is deterministic: ordered containers (`BTreeMap`/
//! `BTreeSet`) everywhere results are iterated, and no hashing-order
//! dependence reaches any output.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use wap_php::ast::*;
use wap_php::{Span, Symbol};

/// Maximum number of concrete strings tracked per abstract value; joins
/// and concatenations that would exceed it widen.
pub const MAX_VALUE_SET: usize = 8;

/// Maximum length in bytes of any tracked string; longer concatenation
/// results widen the exact set to a prefix set.
pub const MAX_VALUE_LEN: usize = 128;

/// Re-execution count for loop bodies (same bound as the taint engine).
const LOOP_PASSES: usize = 2;

/// One point in the value lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbstractValue {
    /// No value reaches here (join identity).
    Bot,
    /// A known integer constant.
    Num(i64),
    /// Definitely numeric, value unknown (int casts, `intval`, counts).
    NumTop,
    /// A known set of strings. With `exact: true` the value is one of
    /// `items`; with `exact: false` the value *starts with* one of them.
    Strs {
        /// The tracked strings (values or prefixes).
        items: BTreeSet<String>,
        /// Whether `items` are complete values rather than prefixes.
        exact: bool,
    },
    /// Anything.
    Top,
}

impl AbstractValue {
    /// An exact single-string value.
    pub fn exact(s: impl Into<String>) -> Self {
        let mut items = BTreeSet::new();
        items.insert(s.into());
        AbstractValue::Strs { items, exact: true }
    }

    /// The complete string set, when exactly known.
    pub fn exact_strings(&self) -> Option<&BTreeSet<String>> {
        match self {
            AbstractValue::Strs { items, exact: true } => Some(items),
            _ => None,
        }
    }

    /// Whether the value is a compile-time constant (a known number or a
    /// complete string set).
    pub fn is_const(&self) -> bool {
        matches!(
            self,
            AbstractValue::Num(_) | AbstractValue::Strs { exact: true, .. }
        )
    }

    /// Least upper bound of two lattice points.
    pub fn join(&self, other: &AbstractValue) -> AbstractValue {
        use AbstractValue::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x.clone(),
            (Top, _) | (_, Top) => Top,
            (Num(a), Num(b)) if a == b => Num(*a),
            (Num(_) | NumTop, Num(_) | NumTop) => NumTop,
            (
                Strs { items: a, exact: ea },
                Strs { items: b, exact: eb },
            ) => {
                let items: BTreeSet<String> = a.union(b).cloned().collect();
                if items.len() > MAX_VALUE_SET {
                    Top
                } else {
                    Strs {
                        items,
                        exact: *ea && *eb,
                    }
                }
            }
            // numbers joined with strings: no common structure we track
            _ => Top,
        }
    }

    /// Abstract string concatenation `self . other`, with the widening
    /// rules documented on the module.
    pub fn concat(&self, other: &AbstractValue) -> AbstractValue {
        use AbstractValue::*;
        let (lhs, lhs_exact) = match self {
            Num(n) => {
                let mut s = BTreeSet::new();
                s.insert(n.to_string());
                (s, true)
            }
            Strs { items, exact } => (items.clone(), *exact),
            // unknown prefix: nothing about the result is known
            _ => return Top,
        };
        if !lhs_exact {
            // a prefix stays a prefix no matter the suffix
            return Strs {
                items: lhs,
                exact: false,
            };
        }
        let (rhs, rhs_exact) = match other {
            Num(n) => {
                let mut s = BTreeSet::new();
                s.insert(n.to_string());
                (s, true)
            }
            Strs { items, exact } => (items.clone(), *exact),
            _ => {
                return Strs {
                    items: lhs,
                    exact: false,
                }
            }
        };
        if lhs.len().saturating_mul(rhs.len()) > MAX_VALUE_SET {
            return Strs {
                items: lhs,
                exact: false,
            };
        }
        let mut out = BTreeSet::new();
        for a in &lhs {
            for b in &rhs {
                if a.len() + b.len() > MAX_VALUE_LEN {
                    return Strs {
                        items: lhs,
                        exact: false,
                    };
                }
                out.insert(format!("{a}{b}"));
            }
        }
        Strs {
            items: out,
            exact: rhs_exact,
        }
    }
}

/// What surrounds a tainted value at a sink, derived from the value
/// lattice of the sink's carrier variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkContext {
    /// The carrier is definitely numeric (payloads cannot survive).
    NumericCast,
    /// The carrier's known prefix ends inside a string quote — the
    /// tainted data lands in quoted-string position.
    QuotedString,
    /// The tainted data lands unquoted (identifier/numeric position).
    IdentifierPosition,
}

impl SinkContext {
    /// Classifies one abstract value; `None` when the lattice has no
    /// usable structure (⊤/⊥).
    pub fn classify(v: &AbstractValue) -> Option<SinkContext> {
        match v {
            AbstractValue::Num(_) | AbstractValue::NumTop => Some(SinkContext::NumericCast),
            AbstractValue::Strs { items, .. } if !items.is_empty() => {
                if items
                    .iter()
                    .all(|s| s.ends_with('\'') || s.ends_with('"'))
                {
                    Some(SinkContext::QuotedString)
                } else {
                    Some(SinkContext::IdentifierPosition)
                }
            }
            _ => None,
        }
    }

    /// The higher-priority of two contexts for one sink (declaration
    /// order is priority order: a numeric cast beats a quoted string
    /// beats an identifier position).
    pub fn max_priority(self, other: SinkContext) -> SinkContext {
        self.min(other)
    }

    /// Stable kebab-case name (symptom attribute / trace label).
    pub fn name(self) -> &'static str {
        match self {
            SinkContext::NumericCast => "numeric-cast",
            SinkContext::QuotedString => "quoted-string",
            SinkContext::IdentifierPosition => "identifier-position",
        }
    }
}

/// One piece of a function's return template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// A literal fragment.
    Lit(String),
    /// The caller's argument at this position, substituted at call sites.
    Param(usize),
}

/// The value summary of one user function: a concatenation template for
/// its return value, or opaque.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueSummary {
    /// `Some(pieces)` when the function's single return statement is a
    /// concatenation of literals and parameters; `None` → returns ⊤.
    pub pieces: Option<Vec<Piece>>,
}

impl ValueSummary {
    /// Substitutes call-site argument values into the template.
    pub fn apply(&self, args: &[AbstractValue]) -> AbstractValue {
        let Some(pieces) = &self.pieces else {
            return AbstractValue::Top;
        };
        let mut out = AbstractValue::exact("");
        for p in pieces {
            let v = match p {
                Piece::Lit(s) => AbstractValue::exact(s.clone()),
                Piece::Param(i) => args.get(*i).cloned().unwrap_or(AbstractValue::Top),
            };
            out = out.concat(&v);
        }
        out
    }
}

/// Phase A: per-function value summaries, in declaration order, keyed by
/// lowercased name. The caller merges across files first-declaration-wins
/// (the same owner rule the taint engine's function index applies).
pub fn summarize_values(program: &Program) -> Vec<(Symbol, ValueSummary)> {
    program
        .functions()
        .into_iter()
        .map(|f| (f.name.lower(), summarize_function(f)))
        .collect()
}

fn summarize_function(func: &Function) -> ValueSummary {
    let mut returns = Vec::new();
    collect_returns(&func.body, &mut returns);
    let [only] = returns.as_slice() else {
        return ValueSummary::default();
    };
    let params: HashMap<Symbol, usize> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name, i))
        .collect();
    let mut pieces = Vec::new();
    if template_pieces(only, &params, &mut pieces) {
        ValueSummary {
            pieces: Some(pieces),
        }
    } else {
        ValueSummary::default()
    }
}

fn collect_returns<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a Expr>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Return(Some(e)) => out.push(e),
            StmtKind::Return(None) => {}
            // nested declarations have their own summaries
            StmtKind::Function(_) | StmtKind::Class(_) => {}
            _ => {
                for b in s.kind.child_blocks() {
                    collect_returns(b, out);
                }
            }
        }
    }
}

fn template_pieces(e: &Expr, params: &HashMap<Symbol, usize>, out: &mut Vec<Piece>) -> bool {
    match &e.kind {
        ExprKind::Lit(Lit::Str(s)) => {
            out.push(Piece::Lit(s.clone()));
            true
        }
        ExprKind::Lit(Lit::Int(n)) => {
            out.push(Piece::Lit(n.to_string()));
            true
        }
        ExprKind::Var(n) => match params.get(n) {
            Some(i) => {
                out.push(Piece::Param(*i));
                true
            }
            None => false,
        },
        ExprKind::Binary {
            op: BinOp::Concat,
            lhs,
            rhs,
        } => template_pieces(lhs, params, out) && template_pieces(rhs, params, out),
        ExprKind::Interp(parts) => parts.iter().all(|p| template_pieces(p, params, out)),
        _ => false,
    }
}

/// The cache-friendly half of a file's value facts: everything the taint
/// engine and the lint pass consume, with no per-statement state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueResolution {
    /// Include sites whose path evaluated to scan-set files: path-expr
    /// `span.start()` → resolved file names (sorted, deduplicated).
    pub includes: BTreeMap<u32, Vec<String>>,
    /// Dynamic (non-literal) include sites the analysis could not
    /// resolve: the path expression's span, for the
    /// `WAP-LINT-UNRESOLVED-INCLUDE` lint.
    pub unresolved_includes: Vec<Span>,
    /// Dynamic call sites whose callee evaluated to known function
    /// names: call-expr `span.start()` → names (sorted, deduplicated).
    pub calls: BTreeMap<u32, Vec<String>>,
    /// Dynamic include sites whose path evaluated to a known string set
    /// *and* matched at least one scan-set file.
    pub dynamic_includes_resolved: usize,
    /// Dynamic call sites resolved to known function names.
    pub dynamic_calls_resolved: usize,
    /// Dynamic call sites left opaque.
    pub dynamic_calls_unresolved: usize,
}

impl ValueResolution {
    /// Resolved + unresolved dynamic edge counts `(resolved, unresolved)`.
    pub fn edge_counts(&self) -> (usize, usize) {
        (
            self.dynamic_includes_resolved + self.dynamic_calls_resolved,
            self.unresolved_includes.len() + self.dynamic_calls_unresolved,
        )
    }
}

/// The full per-file result of [`analyze_file_values`]: resolution facts
/// plus statement-level environment snapshots for point queries.
#[derive(Debug, Clone, Default)]
pub struct FileValues {
    /// Resolution facts (the cacheable half).
    pub resolution: ValueResolution,
    /// Environment before each executed statement, keyed by the
    /// statement's `span.start()`. Only non-⊤ bindings are stored.
    snapshots: BTreeMap<u32, HashMap<Symbol, AbstractValue>>,
}

impl FileValues {
    /// The abstract value of `var` at source offset `offset`: the binding
    /// in the nearest statement snapshot at or before the offset.
    pub fn value_at(&self, var: Symbol, offset: u32) -> Option<&AbstractValue> {
        self.snapshots
            .range(..=offset)
            .next_back()
            .and_then(|(_, env)| env.get(&var))
    }

    /// [`SinkContext`] of `var` at `offset`, when the lattice knows one.
    pub fn sink_context(&self, var: Symbol, offset: u32) -> Option<SinkContext> {
        SinkContext::classify(self.value_at(var, offset)?)
    }

    /// Whether the include whose path expression starts at `offset`
    /// resolved to scan-set files.
    pub fn is_resolved_include(&self, offset: u32) -> bool {
        self.resolution.includes.contains_key(&offset)
    }

    /// Canonical fingerprint material: every snapshot binding plus the
    /// resolution facts, rendered deterministically (bindings sorted by
    /// variable name, never by interner id). Cache layers fold this into
    /// lint entry keys so a cross-file change that shifts this file's
    /// value facts re-keys its cached predicate-rule findings.
    pub fn facts_fingerprint(&self) -> String {
        fn canon(v: &AbstractValue) -> String {
            match v {
                AbstractValue::Bot => "_".to_string(),
                AbstractValue::Num(n) => format!("n{n}"),
                AbstractValue::NumTop => "N".to_string(),
                AbstractValue::Strs { items, exact } => {
                    let body = items.iter().cloned().collect::<Vec<_>>().join("\u{1e}");
                    format!("s{}{}", if *exact { "=" } else { "^" }, body)
                }
                AbstractValue::Top => "T".to_string(),
            }
        }
        let mut out = String::new();
        for (off, env) in &self.snapshots {
            let mut entries: Vec<(&str, &AbstractValue)> =
                env.iter().map(|(k, v)| (k.as_str(), v)).collect();
            entries.sort_by_key(|(k, _)| *k);
            for (name, v) in entries {
                out.push_str(&format!("{off}\u{1f}{name}\u{1f}{}\u{1d}", canon(v)));
            }
        }
        for (off, targets) in &self.resolution.includes {
            out.push_str(&format!("i{off}\u{1f}{}\u{1d}", targets.join("\u{1e}")));
        }
        for (off, names) in &self.resolution.calls {
            out.push_str(&format!("c{off}\u{1f}{}\u{1d}", names.join("\u{1e}")));
        }
        out
    }
}

/// Span of every *dynamic* (non-literal-path) include site in a program,
/// in source order — the candidate sites for the unresolved-include lint.
pub fn dynamic_include_sites(program: &Program) -> Vec<Span> {
    struct V(Vec<Span>);
    impl wap_php::visitor::Visitor for V {
        fn visit_stmt(&mut self, s: &Stmt) {
            if let StmtKind::Include { path, .. } = &s.kind {
                if path.as_str_lit().is_none() {
                    self.0.push(path.span);
                }
            }
            wap_php::visitor::walk_stmt(self, s);
        }
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::IncludeExpr { path, .. } = &e.kind {
                if path.as_str_lit().is_none() {
                    self.0.push(path.span);
                }
            }
            wap_php::visitor::walk_expr(self, e);
        }
    }
    let mut v = V(Vec::new());
    use wap_php::visitor::Visitor as _;
    v.visit_program(program);
    v.0.sort_by_key(|s| s.start());
    v.0
}

/// Phase B: analyzes one file against merged summaries. `known_files`
/// is the scan set's file names — include paths resolve against it and
/// never touch the filesystem.
pub fn analyze_file_values(
    file: &str,
    program: &Program,
    summaries: &HashMap<Symbol, ValueSummary>,
    known_files: &BTreeSet<String>,
) -> FileValues {
    let dir = match file.rsplit_once('/') {
        Some((d, _)) => d.to_string(),
        None => String::new(),
    };
    // Scan-set names arrive however the caller collected them (bare,
    // "./"-prefixed, absolute). Candidate include paths are normalized
    // before matching, so the scan set must be keyed the same way — and
    // the *raw* name is what downstream consumers (the taint engine's
    // program table, the pipeline's resolution map) look targets up by.
    let mut canonical: BTreeMap<String, String> = BTreeMap::new();
    for name in known_files {
        canonical
            .entry(normalize_path(name))
            .or_insert_with(|| name.clone());
    }
    let mut interp = Interp {
        file,
        dir,
        summaries,
        known_files: &canonical,
        constants: HashMap::new(),
        out: FileValues::default(),
    };
    let mut env = Env::new();
    interp.exec_block(&mut env, &program.stmts);
    // function bodies: parameters unknown, call/include sites and
    // statement snapshots still collected
    for func in program.functions() {
        let mut fenv = Env::new();
        interp.exec_block(&mut fenv, &func.body);
    }
    interp.out
}

type Env = HashMap<Symbol, AbstractValue>;

struct Interp<'a> {
    file: &'a str,
    /// Directory prefix of `file` ("" for a bare name) — `__DIR__` and
    /// relative include resolution.
    dir: String,
    summaries: &'a HashMap<Symbol, ValueSummary>,
    /// Normalized scan-set name → the raw name as the caller spelled it.
    known_files: &'a BTreeMap<String, String>,
    /// `define()`d constants seen in this file.
    constants: HashMap<Symbol, AbstractValue>,
    out: FileValues,
}

impl<'a> Interp<'a> {
    fn snapshot(&mut self, env: &Env, offset: u32) {
        let filtered: HashMap<Symbol, AbstractValue> = env
            .iter()
            .filter(|(_, v)| !matches!(v, AbstractValue::Top | AbstractValue::Bot))
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        self.out.snapshots.insert(offset, filtered);
    }

    fn exec_block(&mut self, env: &mut Env, stmts: &[Stmt]) {
        for s in stmts {
            self.exec_stmt(env, s);
        }
    }

    fn exec_stmt(&mut self, env: &mut Env, stmt: &Stmt) {
        self.snapshot(env, stmt.span.start());
        match &stmt.kind {
            StmtKind::Expr(e) | StmtKind::Throw(e) => {
                self.eval(env, e);
            }
            StmtKind::Echo(items) => {
                for e in items {
                    self.eval(env, e);
                }
            }
            StmtKind::InlineHtml(_) | StmtKind::Nop => {}
            StmtKind::If {
                cond,
                then_branch,
                elseifs,
                else_branch,
            } => {
                self.eval(env, cond);
                let mut branches: Vec<Env> = Vec::new();
                let mut b1 = env.clone();
                self.exec_block(&mut b1, then_branch);
                branches.push(b1);
                for (c, b) in elseifs {
                    self.eval(env, c);
                    let mut bi = env.clone();
                    self.exec_block(&mut bi, b);
                    branches.push(bi);
                }
                match else_branch {
                    Some(b) => {
                        let mut be = env.clone();
                        self.exec_block(&mut be, b);
                        branches.push(be);
                    }
                    None => branches.push(env.clone()),
                }
                *env = join_envs(branches);
            }
            StmtKind::While { cond, body } => {
                for _ in 0..LOOP_PASSES {
                    self.eval(env, cond);
                    let mut b = env.clone();
                    self.exec_block(&mut b, body);
                    *env = join_envs(vec![env.clone(), b]);
                }
            }
            StmtKind::DoWhile { body, cond } => {
                for _ in 0..LOOP_PASSES {
                    let mut b = env.clone();
                    self.exec_block(&mut b, body);
                    *env = join_envs(vec![env.clone(), b]);
                    self.eval(env, cond);
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init {
                    self.eval(env, e);
                }
                for _ in 0..LOOP_PASSES {
                    for e in cond {
                        self.eval(env, e);
                    }
                    let mut b = env.clone();
                    self.exec_block(&mut b, body);
                    for e in step {
                        self.eval(&mut b, e);
                    }
                    *env = join_envs(vec![env.clone(), b]);
                }
            }
            StmtKind::Foreach {
                array,
                key,
                value,
                body,
                ..
            } => {
                self.eval(env, array);
                if let Some(k) = key {
                    self.assign_top(env, k);
                }
                self.assign_top(env, value);
                for _ in 0..LOOP_PASSES {
                    let mut b = env.clone();
                    self.exec_block(&mut b, body);
                    *env = join_envs(vec![env.clone(), b]);
                }
            }
            StmtKind::Switch { subject, cases } => {
                self.eval(env, subject);
                let mut branches: Vec<Env> = vec![env.clone()];
                for c in cases {
                    if let Some(t) = &c.test {
                        self.eval(env, t);
                    }
                    let mut b = env.clone();
                    self.exec_block(&mut b, &c.body);
                    branches.push(b);
                }
                *env = join_envs(branches);
            }
            StmtKind::Break(_) | StmtKind::Continue(_) => {}
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.eval(env, e);
                }
            }
            StmtKind::Global(names) => {
                for n in names {
                    env.insert(*n, AbstractValue::Top);
                }
            }
            StmtKind::StaticVars(vars) => {
                for (n, d) in vars {
                    let v = d
                        .as_ref()
                        .map(|e| self.eval(env, e))
                        .unwrap_or(AbstractValue::Top);
                    env.insert(*n, v);
                }
            }
            // summarized separately; bodies walked by analyze_file_values
            StmtKind::Function(_) | StmtKind::Class(_) => {}
            StmtKind::Include { path, .. } => {
                self.handle_include(env, path);
            }
            StmtKind::Unset(targets) => {
                for t in targets {
                    if let Some(root) = t.root_var_symbol() {
                        env.remove(&root);
                    }
                }
            }
            StmtKind::Block(b) => self.exec_block(env, b),
            StmtKind::Try {
                body,
                catches,
                finally,
            } => {
                self.exec_block(env, body);
                let mut branches = vec![env.clone()];
                for c in catches {
                    let mut b = env.clone();
                    if let Some(v) = c.var {
                        b.insert(v, AbstractValue::Top);
                    }
                    self.exec_block(&mut b, &c.body);
                    branches.push(b);
                }
                *env = join_envs(branches);
                if let Some(f) = finally {
                    self.exec_block(env, f);
                }
            }
        }
    }

    fn assign_top(&mut self, env: &mut Env, target: &Expr) {
        if let Some(root) = target.root_var_symbol() {
            env.insert(root, AbstractValue::Top);
        }
    }

    fn handle_include(&mut self, env: &mut Env, path: &Expr) {
        let v = self.eval(env, path);
        let dynamic = path.as_str_lit().is_none();
        match v.exact_strings() {
            Some(items) => {
                let mut targets: BTreeSet<String> = BTreeSet::new();
                for s in items {
                    if let Some(t) = self.resolve_path(s) {
                        targets.insert(t);
                    }
                }
                if !targets.is_empty() {
                    self.out
                        .resolution
                        .includes
                        .insert(path.span.start(), targets.into_iter().collect());
                    if dynamic {
                        self.out.resolution.dynamic_includes_resolved += 1;
                    }
                } else if dynamic {
                    // The path evaluated to concrete strings but none of
                    // them name a scan-set file: still a coverage gap.
                    self.out.resolution.unresolved_includes.push(path.span);
                }
            }
            None if dynamic => self.out.resolution.unresolved_includes.push(path.span),
            None => {}
        }
    }

    /// Matches one evaluated include path against the scan set: the path
    /// as spelled, then relative to the including file's directory.
    /// Purely name-based — never reads the filesystem.
    fn resolve_path(&self, path: &str) -> Option<String> {
        let direct = normalize_path(path);
        if let Some(raw) = self.known_files.get(&direct) {
            return Some(raw.clone());
        }
        if !self.dir.is_empty() {
            let joined = normalize_path(&format!("{}/{}", self.dir, path));
            if let Some(raw) = self.known_files.get(&joined) {
                return Some(raw.clone());
            }
        }
        None
    }

    fn eval(&mut self, env: &mut Env, expr: &Expr) -> AbstractValue {
        use AbstractValue as V;
        match &expr.kind {
            ExprKind::Var(n) => env.get(n).cloned().unwrap_or(V::Top),
            ExprKind::Lit(l) => match l {
                Lit::Str(s) => V::exact(s.clone()),
                Lit::Int(n) => V::Num(*n),
                Lit::Float(_) => V::NumTop,
                Lit::Bool(_) | Lit::Null => V::Top,
            },
            ExprKind::Name(n) => self.eval_name(*n),
            ExprKind::Interp(parts) => {
                let mut out = V::exact("");
                for p in parts {
                    let pv = self.eval(env, p);
                    out = out.concat(&pv);
                }
                out
            }
            ExprKind::ArrayDim { base, index } => {
                self.eval(env, base);
                if let Some(i) = index {
                    self.eval(env, i);
                }
                V::Top
            }
            ExprKind::Prop { base, .. } => {
                self.eval(env, base);
                V::Top
            }
            ExprKind::StaticProp { .. } | ExprKind::ClassConst { .. } => V::Top,
            ExprKind::Call { callee, args } => self.eval_call(env, callee, args, expr.span),
            ExprKind::MethodCall { target, args, .. } => {
                self.eval(env, target);
                for a in args {
                    self.eval(env, a);
                }
                V::Top
            }
            ExprKind::StaticCall { args, .. } | ExprKind::New { args, .. } => {
                for a in args {
                    self.eval(env, a);
                }
                V::Top
            }
            ExprKind::Assign {
                target, op, value, ..
            } => {
                let vt = self.eval(env, value);
                let new = match op {
                    AssignOp::Assign => vt,
                    AssignOp::Concat => {
                        let old = self.read_lvalue(env, target);
                        old.concat(&vt)
                    }
                    AssignOp::Coalesce => {
                        let old = self.read_lvalue(env, target);
                        old.join(&vt)
                    }
                    AssignOp::Add | AssignOp::Sub | AssignOp::Mul => {
                        let old = self.read_lvalue(env, target);
                        arith(*op, &old, &vt)
                    }
                    _ => V::NumTop,
                };
                match &target.kind {
                    ExprKind::Var(n) => {
                        env.insert(*n, new.clone());
                    }
                    _ => self.assign_top(env, target),
                }
                new
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lv = self.eval(env, lhs);
                let rv = self.eval(env, rhs);
                match op {
                    BinOp::Concat => lv.concat(&rv),
                    BinOp::Coalesce => lv.join(&rv),
                    BinOp::Add => num_binop(&lv, &rv, i64::checked_add),
                    BinOp::Sub => num_binop(&lv, &rv, i64::checked_sub),
                    BinOp::Mul => num_binop(&lv, &rv, i64::checked_mul),
                    BinOp::Div | BinOp::Mod | BinOp::Shl | BinOp::Shr => V::NumTop,
                    // comparisons/logic yield booleans we do not track
                    _ => V::Top,
                }
            }
            ExprKind::Unary { op, expr: inner } => {
                let v = self.eval(env, inner);
                match op {
                    UnOp::Neg => match v {
                        V::Num(n) => n.checked_neg().map(V::Num).unwrap_or(V::NumTop),
                        _ => V::NumTop,
                    },
                    UnOp::Pos => match v {
                        V::Num(n) => V::Num(n),
                        _ => V::NumTop,
                    },
                    _ => V::Top,
                }
            }
            ExprKind::IncDec { target, .. } => {
                if let Some(root) = target.root_var_symbol() {
                    env.insert(root, V::NumTop);
                }
                V::NumTop
            }
            ExprKind::Ternary {
                cond,
                then,
                otherwise,
            } => {
                let cv = self.eval(env, cond);
                let tv = match then {
                    Some(t) => self.eval(env, t),
                    None => cv,
                };
                let ov = self.eval(env, otherwise);
                tv.join(&ov)
            }
            ExprKind::Cast { ty, expr: inner } => {
                let v = self.eval(env, inner);
                match ty {
                    CastType::Int => match v {
                        V::Num(n) => V::Num(n),
                        _ => V::NumTop,
                    },
                    CastType::Float | CastType::Bool => V::NumTop,
                    CastType::Str => match v {
                        V::Num(n) => V::exact(n.to_string()),
                        s @ V::Strs { .. } => s,
                        _ => V::Top,
                    },
                    _ => V::Top,
                }
            }
            ExprKind::Isset(es) => {
                for e in es {
                    self.eval(env, e);
                }
                V::Top
            }
            ExprKind::Empty(e) | ExprKind::InstanceOf { expr: e, .. } => {
                self.eval(env, e);
                V::Top
            }
            ExprKind::Array(items) => {
                for it in items {
                    if let Some(k) = &it.key {
                        self.eval(env, k);
                    }
                    self.eval(env, &it.value);
                }
                V::Top
            }
            ExprKind::List(_) => V::Top,
            ExprKind::Closure { body, uses, .. } => {
                let mut inner = Env::new();
                for (name, _) in uses {
                    if let Some(v) = env.get(name) {
                        inner.insert(*name, v.clone());
                    }
                }
                self.exec_block(&mut inner, body);
                V::Top
            }
            ExprKind::ErrorSuppress(e) | ExprKind::Clone(e) => self.eval(env, e),
            ExprKind::Exit(arg) => {
                if let Some(a) = arg {
                    self.eval(env, a);
                }
                V::Top
            }
            ExprKind::Print(e) => {
                self.eval(env, e);
                V::NumTop
            }
            ExprKind::ShellExec(parts) => {
                for p in parts {
                    self.eval(env, p);
                }
                V::Top
            }
            ExprKind::IncludeExpr { path, .. } => {
                self.handle_include(env, path);
                V::Top
            }
        }
    }

    fn eval_name(&self, n: Symbol) -> AbstractValue {
        match n.as_str() {
            "__DIR__" => AbstractValue::exact(if self.dir.is_empty() {
                ".".to_string()
            } else {
                self.dir.clone()
            }),
            "__FILE__" => AbstractValue::exact(self.file.to_string()),
            "PHP_EOL" => AbstractValue::exact("\n"),
            "DIRECTORY_SEPARATOR" => AbstractValue::exact("/"),
            _ => self
                .constants
                .get(&n)
                .cloned()
                .unwrap_or(AbstractValue::Top),
        }
    }

    fn read_lvalue(&mut self, env: &mut Env, target: &Expr) -> AbstractValue {
        match &target.kind {
            ExprKind::Var(n) => env.get(n).cloned().unwrap_or(AbstractValue::Top),
            _ => AbstractValue::Top,
        }
    }

    fn eval_call(
        &mut self,
        env: &mut Env,
        callee: &Expr,
        args: &[Expr],
        span: Span,
    ) -> AbstractValue {
        let name = match &callee.kind {
            ExprKind::Name(n) => *n,
            _ => {
                // dynamic call `$f(...)`: resolve the callee's value
                let cv = self.eval(env, callee);
                let arg_vals: Vec<AbstractValue> =
                    args.iter().map(|a| self.eval(env, a)).collect();
                return self.dispatch_dynamic(&cv, &arg_vals, span);
            }
        };
        let arg_vals: Vec<AbstractValue> = args.iter().map(|a| self.eval(env, a)).collect();
        let lower = name.as_str().to_ascii_lowercase();

        // define("NAME", value): record the constant for later Name reads
        if lower == "define" {
            if let (Some(cname), Some(cval)) = (
                args.first().and_then(Expr::as_str_lit),
                arg_vals.get(1),
            ) {
                self.constants
                    .insert(Symbol::intern(cname), cval.clone());
            }
            return AbstractValue::Top;
        }

        // call_user_func(_array): args[0] names the real callee
        if lower == "call_user_func" || lower == "call_user_func_array" {
            if let Some(cv) = arg_vals.first() {
                let rest: Vec<AbstractValue> = arg_vals.get(1..).unwrap_or(&[]).to_vec();
                return self.dispatch_dynamic(&cv.clone(), &rest, span);
            }
            return AbstractValue::Top;
        }

        // user-defined function: apply its merged return template
        if let Some(summary) = self.summaries.get(&name.lower()) {
            return summary.apply(&arg_vals);
        }

        builtin_value(&lower, &arg_vals)
    }

    /// Resolves a dynamic callee value to function names, records the
    /// edge, and returns the call's abstract result (through summaries
    /// when the targets have them).
    fn dispatch_dynamic(
        &mut self,
        callee: &AbstractValue,
        arg_vals: &[AbstractValue],
        span: Span,
    ) -> AbstractValue {
        let Some(items) = callee.exact_strings() else {
            self.out.resolution.dynamic_calls_unresolved += 1;
            return AbstractValue::Top;
        };
        let targets: Vec<String> = items
            .iter()
            .filter(|s| is_function_name(s))
            .cloned()
            .collect();
        if targets.is_empty() {
            self.out.resolution.dynamic_calls_unresolved += 1;
            return AbstractValue::Top;
        }
        let mut out = AbstractValue::Bot;
        for t in &targets {
            let v = match self.summaries.get(&Symbol::intern(t).lower()) {
                Some(s) => s.apply(arg_vals),
                None => AbstractValue::Top,
            };
            out = out.join(&v);
        }
        self.out.resolution.calls.insert(span.start(), targets);
        self.out.resolution.dynamic_calls_resolved += 1;
        out
    }
}

/// Whether a resolved string can name a PHP function.
fn is_function_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Collapses `.`/`..`/empty segments of a virtual path.
fn normalize_path(p: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for seg in p.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            s => parts.push(s),
        }
    }
    parts.join("/")
}

fn arith(op: AssignOp, a: &AbstractValue, b: &AbstractValue) -> AbstractValue {
    let f = match op {
        AssignOp::Add => i64::checked_add,
        AssignOp::Sub => i64::checked_sub,
        AssignOp::Mul => i64::checked_mul,
        _ => return AbstractValue::NumTop,
    };
    num_binop(a, b, f)
}

fn num_binop(
    a: &AbstractValue,
    b: &AbstractValue,
    f: fn(i64, i64) -> Option<i64>,
) -> AbstractValue {
    match (a, b) {
        (AbstractValue::Num(x), AbstractValue::Num(y)) => {
            f(*x, *y).map(AbstractValue::Num).unwrap_or(AbstractValue::NumTop)
        }
        _ => AbstractValue::NumTop,
    }
}

/// Abstract results of the PHP builtins the lattice can model.
fn builtin_value(lower: &str, args: &[AbstractValue]) -> AbstractValue {
    match lower {
        // definitely-numeric results
        "intval" | "floatval" | "doubleval" | "count" | "sizeof" | "strlen" | "abs"
        | "floor" | "ceil" | "round" | "time" | "rand" | "mt_rand" | "random_int" | "ord"
        | "crc32" => AbstractValue::NumTop,
        // string transforms computed on exact sets
        "dirname" | "basename" | "trim" | "rtrim" | "ltrim" | "strtolower" | "strtoupper" => {
            let Some(items) = args.first().and_then(AbstractValue::exact_strings) else {
                return AbstractValue::Top;
            };
            // multi-arg trim variants have custom charlists we don't model
            if lower.ends_with("trim") && args.len() > 1 {
                return AbstractValue::Top;
            }
            let mapped: BTreeSet<String> = items
                .iter()
                .map(|s| match lower {
                    "dirname" => match s.rsplit_once('/') {
                        Some((d, _)) if !d.is_empty() => d.to_string(),
                        _ => ".".to_string(),
                    },
                    "basename" => s.rsplit('/').next().unwrap_or(s).to_string(),
                    "trim" => s.trim().to_string(),
                    "rtrim" => s.trim_end().to_string(),
                    "ltrim" => s.trim_start().to_string(),
                    "strtolower" => s.to_ascii_lowercase(),
                    _ => s.to_ascii_uppercase(),
                })
                .collect();
            AbstractValue::Strs {
                items: mapped,
                exact: true,
            }
        }
        _ => AbstractValue::Top,
    }
}

fn join_envs(mut envs: Vec<Env>) -> Env {
    let mut out = envs.pop().unwrap_or_default();
    for env in envs {
        for (k, v) in env {
            let joined = match out.get(&k) {
                Some(existing) => existing.join(&v),
                None => v,
            };
            out.insert(k, joined);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wap_php::parse;

    fn values_for(file: &str, src: &str, known: &[&str]) -> FileValues {
        let program = parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
        let mut summaries = HashMap::new();
        for (n, s) in summarize_values(&program) {
            summaries.entry(n).or_insert(s);
        }
        let known: BTreeSet<String> = known.iter().map(|s| s.to_string()).collect();
        analyze_file_values(file, &program, &summaries, &known)
    }

    #[test]
    fn join_and_concat_follow_the_lattice() {
        use AbstractValue as V;
        let a = V::exact("a");
        let b = V::exact("b");
        let ab = a.join(&b);
        assert_eq!(ab.exact_strings().map(|s| s.len()), Some(2));
        assert_eq!(V::Num(3).join(&V::Num(3)), V::Num(3));
        assert_eq!(V::Num(3).join(&V::Num(4)), V::NumTop);
        assert_eq!(V::Num(3).join(&a), V::Top);
        assert_eq!(V::Bot.join(&a), a);

        // exact ⊕ exact = cartesian; exact ⊕ ⊤ = prefix
        let pre = V::exact("SELECT '").concat(&V::Top);
        match &pre {
            V::Strs { items, exact } => {
                assert!(!exact);
                assert!(items.contains("SELECT '"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // a prefix swallows any suffix
        let still = pre.concat(&V::exact("'"));
        assert_eq!(still, pre);
        // numbers render into concatenations
        assert_eq!(V::exact("v").concat(&V::Num(7)), V::exact("v7"));
    }

    #[test]
    fn concat_widens_past_the_bounds() {
        use AbstractValue as V;
        let long = "x".repeat(MAX_VALUE_LEN);
        let widened = V::exact(long.clone()).concat(&V::exact("y"));
        match widened {
            V::Strs { items, exact } => {
                assert!(!exact);
                assert!(items.contains(&long));
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut many = BTreeSet::new();
        for i in 0..MAX_VALUE_SET {
            many.insert(format!("s{i}"));
        }
        let set = V::Strs {
            items: many,
            exact: true,
        };
        match set.concat(&set.clone()) {
            V::Strs { exact: false, .. } => {}
            other => panic!("expected widening, got {other:?}"),
        }
    }

    #[test]
    fn includes_resolve_through_concat_and_dir() {
        let v = values_for(
            "app/index.php",
            r#"<?php
            $base = __DIR__;
            include $base . "/db.php";
            include "lib/util.php";
            include $_GET['page'] . ".php";
            "#,
            &["app/index.php", "app/db.php", "app/lib/util.php"],
        );
        let resolved: Vec<&Vec<String>> = v.resolution.includes.values().collect();
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0], &vec!["app/db.php".to_string()]);
        assert_eq!(resolved[1], &vec!["app/lib/util.php".to_string()]);
        assert_eq!(v.resolution.dynamic_includes_resolved, 1);
        assert_eq!(v.resolution.unresolved_includes.len(), 1);
        assert_eq!(v.resolution.edge_counts(), (1, 1));
    }

    #[test]
    fn includes_resolve_under_absolute_and_dot_prefixed_scan_names() {
        // The CLI collects names as spelled on the command line — absolute
        // or "./"-prefixed. Matching is normalization-consistent and the
        // *raw* name comes back (it keys the engine's program table).
        let src = r#"<?php
        $base = "lib";
        include $base . "/db.php";
        "#;
        let abs = values_for(
            "/srv/app/index.php",
            src,
            &["/srv/app/index.php", "/srv/app/lib/db.php"],
        );
        let targets: Vec<&Vec<String>> = abs.resolution.includes.values().collect();
        assert_eq!(targets, vec![&vec!["/srv/app/lib/db.php".to_string()]]);
        assert_eq!(abs.resolution.edge_counts(), (1, 0));

        let dotted = values_for("./index.php", src, &["./index.php", "./lib/db.php"]);
        let targets: Vec<&Vec<String>> = dotted.resolution.includes.values().collect();
        assert_eq!(targets, vec![&vec!["./lib/db.php".to_string()]]);
        assert_eq!(dotted.resolution.edge_counts(), (1, 0));
    }

    #[test]
    fn evaluated_include_outside_the_scan_set_counts_as_unresolved() {
        let v = values_for(
            "index.php",
            r#"<?php
            $base = "vendor";
            include $base . "/missing.php";
            "#,
            &["index.php"],
        );
        assert!(v.resolution.includes.is_empty());
        assert_eq!(v.resolution.dynamic_includes_resolved, 0);
        assert_eq!(v.resolution.unresolved_includes.len(), 1);
        assert_eq!(v.resolution.edge_counts(), (0, 1));
    }

    #[test]
    fn function_templates_resolve_call_built_paths() {
        let v = values_for(
            "index.php",
            r#"<?php
            function page_path($name) { return "pages/" . $name . ".php"; }
            $p = page_path("home");
            include $p;
            "#,
            &["index.php", "pages/home.php"],
        );
        assert_eq!(
            v.resolution.includes.values().next(),
            Some(&vec!["pages/home.php".to_string()])
        );
        assert_eq!(v.resolution.dynamic_includes_resolved, 1);
        assert!(v.resolution.unresolved_includes.is_empty());
    }

    #[test]
    fn dynamic_calls_resolve_to_known_names() {
        let v = values_for(
            "a.php",
            r#"<?php
            $f = "handle_" . "login";
            $f($x);
            call_user_func("do_thing", $y);
            $g = $_POST['cb'];
            $g($z);
            "#,
            &["a.php"],
        );
        let calls: Vec<&Vec<String>> = v.resolution.calls.values().collect();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0], &vec!["handle_login".to_string()]);
        assert_eq!(calls[1], &vec!["do_thing".to_string()]);
        assert_eq!(v.resolution.dynamic_calls_resolved, 2);
        assert_eq!(v.resolution.dynamic_calls_unresolved, 1);
    }

    #[test]
    fn sink_context_classifies_carriers() {
        let v = values_for(
            "q.php",
            r#"<?php
            $id = $_GET['id'];
            $q = "SELECT * FROM t WHERE name = '" . $id . "'";
            mysql_query($q);
            $n = intval($_GET['n']);
            $u = "DELETE FROM t WHERE id = " . $id;
            mysql_query($u);
            "#,
            &["q.php"],
        );
        let src = r#"<?php
            $id = $_GET['id'];
            $q = "SELECT * FROM t WHERE name = '" . $id . "'";
            mysql_query($q);
            $n = intval($_GET['n']);
            $u = "DELETE FROM t WHERE id = " . $id;
            mysql_query($u);
            "#;
        let sink1 = src.find("mysql_query($q)").unwrap() as u32;
        let sink2 = src.find("mysql_query($u)").unwrap() as u32;
        assert_eq!(
            v.sink_context(Symbol::intern("q"), sink1),
            Some(SinkContext::QuotedString)
        );
        assert_eq!(
            v.sink_context(Symbol::intern("u"), sink2),
            Some(SinkContext::IdentifierPosition)
        );
        assert_eq!(
            v.sink_context(Symbol::intern("n"), sink2),
            Some(SinkContext::NumericCast)
        );
        assert_eq!(v.sink_context(Symbol::intern("id"), sink1), None);
    }

    #[test]
    fn value_at_respects_statement_order_and_branches() {
        let src = r#"<?php
            $mode = "list";
            if ($_GET['x']) { $mode = "edit"; }
            echo $mode;
            $mode = $_GET['m'];
            echo "late";
            "#;
        let v = values_for("m.php", src, &["m.php"]);
        let at_first_echo = src.find("echo $mode").unwrap() as u32;
        let at_late = src.find(r#"echo "late""#).unwrap() as u32;
        let mode = Symbol::intern("mode");
        let joined = v.value_at(mode, at_first_echo).unwrap();
        let strs = joined.exact_strings().expect("exact set");
        assert!(strs.contains("list") && strs.contains("edit"));
        assert_eq!(v.value_at(mode, at_late), None, "reassigned to ⊤");
    }

    #[test]
    fn constants_and_magic_names_evaluate() {
        let v = values_for(
            "site/init.php",
            r#"<?php
            define("TPL", "tpl");
            include TPL . "/head.php";
            include __DIR__ . "/conf.php";
            "#,
            &["site/init.php", "tpl/head.php", "site/conf.php"],
        );
        let all: Vec<&Vec<String>> = v.resolution.includes.values().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], &vec!["tpl/head.php".to_string()]);
        assert_eq!(all[1], &vec!["site/conf.php".to_string()]);
    }

    #[test]
    fn dynamic_include_sites_lists_only_non_literals() {
        let p = parse(
            r#"<?php
            include "static.php";
            include $x;
            require_once $y . ".php";
            "#,
        )
        .unwrap();
        let sites = dynamic_include_sites(&p);
        assert_eq!(sites.len(), 2);
        assert!(sites[0].start() < sites[1].start());
    }

    #[test]
    fn normalize_path_collapses_segments() {
        assert_eq!(normalize_path("./a/b.php"), "a/b.php");
        assert_eq!(normalize_path("a/../b.php"), "b.php");
        assert_eq!(normalize_path("a//b.php"), "a/b.php");
        assert_eq!(normalize_path("."), "");
    }

    #[test]
    fn summaries_only_template_single_return_concats() {
        let p = parse(
            r#"<?php
            function one($a) { return "x/" . $a; }
            function two($a) { if ($a) { return "y"; } return "z"; }
            function three() { return somecall(); }
            "#,
        )
        .unwrap();
        let sums: HashMap<Symbol, ValueSummary> = summarize_values(&p).into_iter().collect();
        let one = &sums[&Symbol::intern("one")];
        assert_eq!(
            one.apply(&[AbstractValue::exact("q")]),
            AbstractValue::exact("x/q")
        );
        assert_eq!(sums[&Symbol::intern("two")].pieces, None);
        assert_eq!(sums[&Symbol::intern("three")].pieces, None);
    }
}
