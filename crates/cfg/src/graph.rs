//! AST → control-flow-graph lowering.
//!
//! Each parsed function body — and the top-level script — lowers to one
//! [`Cfg`]: basic blocks of straight-line [`Node`]s connected by branch,
//! loop, and try [`Edge`]s. Edges out of a conditional carry the
//! [`Guard`]s established by taking that edge (`is_numeric($x)` on the
//! true edge, its complement on the false edge of `!is_numeric($x)`),
//! which is what the dominance-based guard analysis consumes.
//!
//! Lowering is deliberately syntax-directed and total: unknown constructs
//! become opaque straight-line nodes, `exit`/`die`/`return`/`throw`
//! terminate the current block, and statements after a terminator land in
//! a fresh block with no incoming edge — which is exactly how the
//! unreachable-code lint finds them.

use crate::guard::validator_call;
use wap_php::ast::*;
use wap_php::Span;
use wap_php::Symbol;

/// Index of a [`Block`] inside its [`Cfg`].
pub type BlockId = usize;

/// A validation fact established by taking one CFG edge: "`validator`
/// succeeded on variable `var`".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Guard {
    /// The guarded simple variable (without `$`).
    pub var: Symbol,
    /// Lower-cased validator name (`is_numeric`, `preg_match`, ...).
    pub validator: Symbol,
}

/// A control-flow edge with the guards its traversal establishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Successor block.
    pub to: BlockId,
    /// Guards known to hold after taking this edge.
    pub guards: Vec<Guard>,
}

/// One function or method call observed in a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Called function or method name (original spelling).
    pub name: Symbol,
    /// Root variables appearing anywhere in the argument list.
    pub arg_vars: Vec<Symbol>,
    /// Span of the call expression.
    pub span: Span,
    /// 1-based line of the call.
    pub line: u32,
}

/// One straight-line statement (or condition evaluation) in a block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Node {
    /// Source span of the statement or condition expression.
    pub span: Span,
    /// 1-based source line.
    pub line: u32,
    /// Simple variables (re)defined here (assignment roots, `++`,
    /// `foreach` bindings, catch bindings, function parameters).
    pub defs: Vec<Symbol>,
    /// Defs whose right-hand side is itself sanitizing: `(int)` casts and
    /// `intval`-family conversions. `(var, validator)` pairs.
    pub guard_defs: Vec<(Symbol, Symbol)>,
    /// Function and method calls inside the statement.
    pub calls: Vec<CallSite>,
    /// This node is a branch condition containing an assignment — the
    /// classic `if ($x = f())` typo the lint flags.
    pub assign_in_cond: bool,
    /// This node is a branch/loop condition evaluation.
    pub is_cond: bool,
}

/// A basic block: straight-line nodes plus its out-edges.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Straight-line nodes in execution order.
    pub nodes: Vec<Node>,
    /// Out-edges in lowering order.
    pub succs: Vec<Edge>,
    /// Predecessor block ids (maintained alongside `succs`).
    pub preds: Vec<BlockId>,
    /// The block ends in `exit`/`die`/`return`/`throw`/`break`/`continue`
    /// and has no fall-through successor.
    pub terminated: bool,
}

/// The control-flow graph of one function body or the top-level script.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Function name; `None` for the top-level script.
    pub name: Option<Symbol>,
    /// Parameter names (defined at entry).
    pub params: Vec<Symbol>,
    /// All blocks; index 0 is the entry block.
    pub blocks: Vec<Block>,
}

impl Cfg {
    /// The entry block id (always 0).
    pub fn entry(&self) -> BlockId {
        0
    }

    /// Which blocks are reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry()];
        seen[self.entry()] = true;
        while let Some(b) = stack.pop() {
            for e in &self.blocks[b].succs {
                if !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// Blocks reachable *from* `from` (inclusive), following out-edges.
    pub fn reachable_from(&self, from: BlockId) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(b) = stack.pop() {
            for e in &self.blocks[b].succs {
                if !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// Blocks that can reach `to` (inclusive), following in-edges.
    pub fn reaching(&self, to: BlockId) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![to];
        seen[to] = true;
        while let Some(b) = stack.pop() {
            for &p in &self.blocks[b].preds {
                if !seen[p] {
                    seen[p] = true;
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Finds the node whose span most tightly contains `span`, if any.
    pub fn locate(&self, span: Span) -> Option<(BlockId, usize)> {
        let mut best: Option<(BlockId, usize, u32)> = None;
        for (b, block) in self.blocks.iter().enumerate() {
            for (i, node) in block.nodes.iter().enumerate() {
                if node.span.start() <= span.start() && span.end() <= node.span.end() {
                    let width = node.span.len();
                    if best.map(|(_, _, w)| width < w).unwrap_or(true) {
                        best = Some((b, i, width));
                    }
                }
            }
        }
        best.map(|(b, i, _)| (b, i))
    }
}

/// All CFGs of one file: the top-level script first, then every
/// user-defined function and method in declaration order.
#[derive(Debug, Clone)]
pub struct FileCfgs {
    /// Lowered graphs; index 0 is the top-level script.
    pub cfgs: Vec<Cfg>,
}

impl FileCfgs {
    /// The graph whose nodes contain `span`, with the located node.
    pub fn locate(&self, span: Span) -> Option<(usize, BlockId, usize)> {
        // prefer the tightest containing node across all graphs: function
        // bodies produce no nodes in the enclosing graph, so at most one
        // graph matches in practice
        let mut best: Option<(usize, BlockId, usize, u32)> = None;
        for (c, cfg) in self.cfgs.iter().enumerate() {
            if let Some((b, i)) = cfg.locate(span) {
                let width = cfg.blocks[b].nodes[i].span.len();
                if best.map(|(_, _, _, w)| width < w).unwrap_or(true) {
                    best = Some((c, b, i, width));
                }
            }
        }
        best.map(|(c, b, i, _)| (c, b, i))
    }

    /// The guards dominating the node containing `span`, restricted to
    /// `vars`. Empty when the span is not found or nothing dominates it.
    pub fn dominating_guards(&self, span: Span, vars: &[Symbol]) -> Vec<crate::guard::GuardFact> {
        match self.locate(span) {
            Some((c, b, i)) => crate::guard::GuardAnalysis::new(&self.cfgs[c]).guards_at(b, i, vars),
            None => Vec::new(),
        }
    }

    /// Span of the first call to `name` (case-insensitive), for tests and
    /// examples.
    pub fn find_call(&self, name: &str) -> Option<Span> {
        for cfg in &self.cfgs {
            for block in &cfg.blocks {
                for node in &block.nodes {
                    for call in &node.calls {
                        if call.name.as_str().eq_ignore_ascii_case(name) {
                            return Some(call.span);
                        }
                    }
                }
            }
        }
        None
    }
}

/// Lowers a whole parsed program: the top-level script plus every
/// function and method body.
pub fn lower_program(program: &Program) -> FileCfgs {
    let mut cfgs = vec![lower_stmts(&program.stmts, None, &[])];
    for f in program.functions() {
        let params: Vec<Symbol> = f.params.iter().map(|p| p.name).collect();
        cfgs.push(lower_stmts(&f.body, Some(f.name), &params));
    }
    FileCfgs { cfgs }
}

/// Lowers one statement list into a [`Cfg`]. `params` are treated as
/// definitions at function entry.
pub fn lower_stmts(stmts: &[Stmt], name: Option<Symbol>, params: &[Symbol]) -> Cfg {
    let mut lw = Lowerer {
        blocks: vec![Block::default()],
        current: 0,
        loops: Vec::new(),
    };
    if !params.is_empty() {
        // synthetic span: the entry node must never win a `locate` query
        let span = Span::synthetic();
        lw.append(Node {
            span,
            line: span.line(),
            defs: params.to_vec(),
            ..Node::default()
        });
    }
    lw.lower_block(stmts);
    Cfg {
        name,
        params: params.to_vec(),
        blocks: lw.blocks,
    }
}

struct LoopCtx {
    continue_to: BlockId,
    break_to: BlockId,
}

struct Lowerer {
    blocks: Vec<Block>,
    current: BlockId,
    loops: Vec<LoopCtx>,
}

impl Lowerer {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId, guards: Vec<Guard>) {
        self.blocks[from].succs.push(Edge { to, guards });
        self.blocks[to].preds.push(from);
    }

    /// Appends a node to the current block; a terminated block spills into
    /// a fresh, edge-less block so trailing dead code is representable.
    fn append(&mut self, node: Node) {
        if self.blocks[self.current].terminated {
            self.current = self.new_block();
        }
        self.blocks[self.current].nodes.push(node);
    }

    fn terminate(&mut self) {
        self.blocks[self.current].terminated = true;
    }

    fn terminated(&self) -> bool {
        self.blocks[self.current].terminated
    }

    /// Adds a fall-through edge from the current block unless it already
    /// ended in a terminator.
    fn fall_to(&mut self, to: BlockId) {
        if !self.terminated() {
            self.edge(self.current, to, Vec::new());
        }
    }

    fn lower_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.lower_stmt(s);
        }
    }

    fn stmt_node(&mut self, s: &Stmt, exprs: &[&Expr]) {
        let mut node = Node {
            span: s.span,
            line: s.span.line(),
            ..Node::default()
        };
        for e in exprs {
            collect_facts(e, &mut node);
        }
        self.append(node);
    }

    fn cond_node(&mut self, cond: &Expr) -> (Vec<Guard>, Vec<Guard>) {
        let mut node = Node {
            span: cond.span,
            line: cond.span.line(),
            is_cond: true,
            ..Node::default()
        };
        collect_facts(cond, &mut node);
        node.assign_in_cond = contains_assign(cond);
        self.append(node);
        cond_guards(cond)
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                self.stmt_node(s, &[e]);
                if is_exit_expr(e) {
                    self.terminate();
                }
            }
            StmtKind::Echo(es) => {
                let refs: Vec<&Expr> = es.iter().collect();
                self.stmt_node(s, &refs);
            }
            StmtKind::InlineHtml(_) | StmtKind::Nop | StmtKind::Global(_) => {
                self.stmt_node(s, &[]);
            }
            StmtKind::StaticVars(vars) => {
                let mut node = Node {
                    span: s.span,
                    line: s.span.line(),
                    ..Node::default()
                };
                for (name, init) in vars {
                    node.defs.push(*name);
                    if let Some(e) = init {
                        collect_facts(e, &mut node);
                    }
                }
                self.append(node);
            }
            StmtKind::Unset(targets) => {
                let mut node = Node {
                    span: s.span,
                    line: s.span.line(),
                    ..Node::default()
                };
                for t in targets {
                    if let Some(v) = t.root_var_symbol() {
                        node.defs.push(v);
                    }
                }
                self.append(node);
            }
            StmtKind::Include { path, .. } => self.stmt_node(s, &[path]),
            StmtKind::Return(e) => {
                let refs: Vec<&Expr> = e.iter().collect();
                self.stmt_node(s, &refs);
                self.terminate();
            }
            StmtKind::Throw(e) => {
                self.stmt_node(s, &[e]);
                self.terminate();
            }
            StmtKind::Break(n) => {
                self.stmt_node(s, &[]);
                if let Some(ctx) = self.loop_ctx(*n) {
                    let target = ctx.break_to;
                    let from = self.current;
                    self.edge(from, target, Vec::new());
                }
                self.terminate();
            }
            StmtKind::Continue(n) => {
                self.stmt_node(s, &[]);
                if let Some(ctx) = self.loop_ctx(*n) {
                    let target = ctx.continue_to;
                    let from = self.current;
                    self.edge(from, target, Vec::new());
                }
                self.terminate();
            }
            StmtKind::Block(b) => self.lower_block(b),
            // function/method bodies lower to their own graphs
            StmtKind::Function(_) | StmtKind::Class(_) => {}
            StmtKind::If {
                cond,
                then_branch,
                elseifs,
                else_branch,
            } => self.lower_if(cond, then_branch, elseifs, else_branch.as_deref()),
            StmtKind::While { cond, body } => self.lower_while(cond, body),
            StmtKind::DoWhile { body, cond } => self.lower_do_while(body, cond),
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => self.lower_for(s, init, cond, step, body),
            StmtKind::Foreach {
                array,
                key,
                value,
                body,
                ..
            } => self.lower_foreach(s, array, key.as_ref(), value, body),
            StmtKind::Switch { subject, cases } => self.lower_switch(s, subject, cases),
            StmtKind::Try {
                body,
                catches,
                finally,
            } => self.lower_try(s, body, catches, finally.as_deref()),
        }
    }

    fn loop_ctx(&self, levels: Option<i64>) -> Option<&LoopCtx> {
        let n = levels.unwrap_or(1).max(1) as usize;
        if n <= self.loops.len() {
            Some(&self.loops[self.loops.len() - n])
        } else {
            self.loops.last()
        }
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then_branch: &[Stmt],
        elseifs: &[(Expr, Vec<Stmt>)],
        else_branch: Option<&[Stmt]>,
    ) {
        let (tg, fg) = self.cond_node(cond);
        let cond_block = self.current;
        let after = self.new_block();

        // then arm
        let then_entry = self.new_block();
        self.edge(cond_block, then_entry, tg);
        self.current = then_entry;
        self.lower_block(then_branch);
        self.fall_to(after);

        // chain of elseif arms: each evaluates in a block entered via the
        // previous condition's false edge
        let mut pending = (cond_block, fg);
        for (econd, ebody) in elseifs {
            let eval = self.new_block();
            self.edge(pending.0, eval, pending.1.clone());
            self.current = eval;
            let (etg, efg) = self.cond_node(econd);
            let body_entry = self.new_block();
            self.edge(eval, body_entry, etg);
            self.current = body_entry;
            self.lower_block(ebody);
            self.fall_to(after);
            pending = (eval, efg);
        }

        match else_branch {
            Some(body) => {
                let else_entry = self.new_block();
                self.edge(pending.0, else_entry, pending.1);
                self.current = else_entry;
                self.lower_block(body);
                self.fall_to(after);
            }
            None => self.edge(pending.0, after, pending.1),
        }
        self.current = after;
    }

    fn lower_while(&mut self, cond: &Expr, body: &[Stmt]) {
        let head = self.new_block();
        self.fall_to(head);
        self.current = head;
        let (tg, fg) = self.cond_node(cond);
        let body_entry = self.new_block();
        let after = self.new_block();
        self.edge(head, body_entry, tg);
        self.edge(head, after, fg);
        self.loops.push(LoopCtx {
            continue_to: head,
            break_to: after,
        });
        self.current = body_entry;
        self.lower_block(body);
        self.fall_to(head);
        self.loops.pop();
        self.current = after;
    }

    fn lower_do_while(&mut self, body: &[Stmt], cond: &Expr) {
        let body_entry = self.new_block();
        self.fall_to(body_entry);
        let cond_block = self.new_block();
        let after = self.new_block();
        self.loops.push(LoopCtx {
            continue_to: cond_block,
            break_to: after,
        });
        self.current = body_entry;
        self.lower_block(body);
        self.fall_to(cond_block);
        self.loops.pop();
        self.current = cond_block;
        let (tg, fg) = self.cond_node(cond);
        self.edge(cond_block, body_entry, tg);
        self.edge(cond_block, after, fg);
        self.current = after;
    }

    fn lower_for(&mut self, s: &Stmt, init: &[Expr], cond: &[Expr], step: &[Expr], body: &[Stmt]) {
        let _ = s;
        let init_refs: Vec<&Expr> = init.iter().collect();
        if !init_refs.is_empty() {
            let span = init_refs
                .iter()
                .map(|e| e.span)
                .reduce(|a, b| a.merge(b))
                .unwrap_or_else(Span::synthetic);
            let mut node = Node {
                span,
                line: span.line(),
                ..Node::default()
            };
            for e in &init_refs {
                collect_facts(e, &mut node);
            }
            self.append(node);
        }
        let head = self.new_block();
        self.fall_to(head);
        self.current = head;
        let (tg, fg, has_cond) = match cond.last() {
            Some(c) => {
                for extra in &cond[..cond.len() - 1] {
                    let mut node = Node {
                        span: extra.span,
                        line: extra.span.line(),
                        is_cond: true,
                        ..Node::default()
                    };
                    collect_facts(extra, &mut node);
                    self.append(node);
                }
                let (tg, fg) = self.cond_node(c);
                (tg, fg, true)
            }
            None => (Vec::new(), Vec::new(), false),
        };
        let body_entry = self.new_block();
        let step_block = self.new_block();
        let after = self.new_block();
        self.edge(head, body_entry, tg);
        if has_cond {
            self.edge(head, after, fg);
        }
        self.loops.push(LoopCtx {
            continue_to: step_block,
            break_to: after,
        });
        self.current = body_entry;
        self.lower_block(body);
        self.fall_to(step_block);
        self.loops.pop();
        self.current = step_block;
        for e in step {
            let mut node = Node {
                span: e.span,
                line: e.span.line(),
                ..Node::default()
            };
            collect_facts(e, &mut node);
            self.blocks[step_block].nodes.push(node);
        }
        self.edge(step_block, head, Vec::new());
        self.current = after;
    }

    fn lower_foreach(
        &mut self,
        s: &Stmt,
        array: &Expr,
        key: Option<&Expr>,
        value: &Expr,
        body: &[Stmt],
    ) {
        // evaluate the iterated expression once, before the loop
        let mut node = Node {
            span: array.span,
            line: array.span.line(),
            ..Node::default()
        };
        collect_facts(array, &mut node);
        self.append(node);
        let _ = s;

        let head = self.new_block();
        self.fall_to(head);
        let body_entry = self.new_block();
        let after = self.new_block();
        self.edge(head, body_entry, Vec::new());
        self.edge(head, after, Vec::new());
        self.loops.push(LoopCtx {
            continue_to: head,
            break_to: after,
        });
        self.current = body_entry;
        let mut bind = Node {
            span: value.span,
            line: value.span.line(),
            ..Node::default()
        };
        for e in key.into_iter().chain(std::iter::once(value)) {
            if let Some(v) = e.root_var_symbol() {
                bind.defs.push(v);
            }
        }
        self.append(bind);
        self.lower_block(body);
        self.fall_to(head);
        self.loops.pop();
        self.current = after;
    }

    fn lower_switch(&mut self, s: &Stmt, subject: &Expr, cases: &[SwitchCase]) {
        let _ = s;
        let mut node = Node {
            span: subject.span,
            line: subject.span.line(),
            ..Node::default()
        };
        collect_facts(subject, &mut node);
        self.append(node);
        let head = self.current;
        let after = self.new_block();
        // PHP `continue` inside `switch` behaves like `break`; an enclosing
        // loop's continue target still wins for `continue 2`-style levels,
        // which loop_ctx resolves from the stack
        self.loops.push(LoopCtx {
            continue_to: after,
            break_to: after,
        });
        let has_default = cases.iter().any(|c| c.test.is_none());
        let mut fallthrough: Option<BlockId> = None;
        for case in cases {
            let entry = self.new_block();
            self.edge(head, entry, Vec::new());
            if let Some(prev) = fallthrough {
                self.edge(prev, entry, Vec::new());
            }
            self.current = entry;
            if let Some(test) = &case.test {
                let mut tnode = Node {
                    span: test.span,
                    line: test.span.line(),
                    is_cond: true,
                    ..Node::default()
                };
                collect_facts(test, &mut tnode);
                self.append(tnode);
            }
            self.lower_block(&case.body);
            fallthrough = if self.terminated() {
                None
            } else {
                Some(self.current)
            };
        }
        if let Some(prev) = fallthrough {
            self.edge(prev, after, Vec::new());
        }
        if !has_default {
            self.edge(head, after, Vec::new());
        }
        self.loops.pop();
        self.current = after;
    }

    fn lower_try(
        &mut self,
        s: &Stmt,
        body: &[Stmt],
        catches: &[CatchClause],
        finally: Option<&[Stmt]>,
    ) {
        let pre = self.current;
        let body_entry = self.new_block();
        self.edge(pre, body_entry, Vec::new());
        self.current = body_entry;
        self.lower_block(body);
        let mut exits: Vec<BlockId> = Vec::new();
        if !self.terminated() {
            exits.push(self.current);
        }
        for c in catches {
            // an exception may fire before any effect of the body, so the
            // handler is conservatively reachable straight from the block
            // preceding the try — guards set inside the body never
            // dominate a handler
            let entry = self.new_block();
            self.edge(pre, entry, Vec::new());
            self.current = entry;
            let mut bind = Node {
                span: s.span,
                line: s.span.line(),
                ..Node::default()
            };
            if let Some(v) = c.var {
                bind.defs.push(v);
            }
            self.append(bind);
            self.lower_block(&c.body);
            if !self.terminated() {
                exits.push(self.current);
            }
        }
        let after = self.new_block();
        match finally {
            Some(fin) => {
                let fin_entry = self.new_block();
                for e in exits {
                    self.edge(e, fin_entry, Vec::new());
                }
                self.current = fin_entry;
                self.lower_block(fin);
                self.fall_to(after);
            }
            None => {
                for e in exits {
                    self.edge(e, after, Vec::new());
                }
            }
        }
        self.current = after;
    }
}

/// Whether evaluating this expression unconditionally stops the script.
fn is_exit_expr(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Exit(_) => true,
        ExprKind::ErrorSuppress(inner) => is_exit_expr(inner),
        _ => false,
    }
}

/// Whether the expression contains a plain or compound assignment —
/// closures excluded (their bodies are separate graphs).
fn contains_assign(e: &Expr) -> bool {
    let mut found = false;
    walk_expr_shallow(e, &mut |x| {
        if matches!(x.kind, ExprKind::Assign { .. }) {
            found = true;
        }
    });
    found
}

/// Extracts defs, guard-defs, and call sites from one expression tree
/// into `node`. Closure bodies are skipped: they lower to their own graph.
fn collect_facts(e: &Expr, node: &mut Node) {
    walk_expr_shallow(e, &mut |x| match &x.kind {
        ExprKind::Assign { target, value, .. } => {
            match &target.kind {
                ExprKind::List(items) => {
                    for item in items.iter().flatten() {
                        if let Some(v) = item.root_var_symbol() {
                            node.defs.push(v);
                        }
                    }
                }
                _ => {
                    if let Some(v) = target.root_var_symbol() {
                        node.defs.push(v);
                        if let Some(validator) = sanitizing_value(value) {
                            node.guard_defs.push((v, validator));
                        }
                    }
                }
            };
        }
        ExprKind::IncDec { target, .. } => {
            if let Some(v) = target.root_var_symbol() {
                node.defs.push(v);
            }
        }
        ExprKind::Call { callee, args } => {
            if let ExprKind::Name(n) = &callee.kind {
                node.calls.push(call_site(*n, args, x.span));
            }
        }
        ExprKind::MethodCall { method, args, .. } => {
            node.calls.push(call_site(*method, args, x.span));
        }
        ExprKind::StaticCall { method, args, .. } => {
            node.calls.push(call_site(*method, args, x.span));
        }
        _ => {}
    });
}

fn call_site(name: Symbol, args: &[Expr], span: Span) -> CallSite {
    let mut arg_vars: Vec<Symbol> = Vec::new();
    for a in args {
        collect_arg_vars(a, &mut arg_vars);
    }
    // Symbol's Ord is string order, so after sorting, equal ids (equal
    // strings) are adjacent and dedup works.
    arg_vars.sort();
    arg_vars.dedup();
    CallSite {
        name,
        arg_vars,
        span,
        line: span.line(),
    }
}

fn collect_arg_vars(e: &Expr, out: &mut Vec<Symbol>) {
    walk_expr_shallow(e, &mut |x| {
        if let ExprKind::Var(v) = &x.kind {
            out.push(*v);
        }
    });
}

/// A sanitizing right-hand side: `(int)`/`(float)`/`(bool)` casts and the
/// conversion functions. Returns the validator name to record.
fn sanitizing_value(e: &Expr) -> Option<Symbol> {
    match &e.kind {
        ExprKind::Cast { ty, .. } if ty.is_sanitizing() => {
            Some(Symbol::intern(&format!("cast_{}", ty.keyword())))
        }
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Name(n)
                if matches!(
                    n.lower().as_str(),
                    "intval" | "floatval" | "doubleval" | "boolval"
                ) =>
            {
                Some(n.lower())
            }
            _ => None,
        },
        _ => None,
    }
}

/// Pre-order walk over an expression tree, skipping closure bodies.
fn walk_expr_shallow<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Var(_)
        | ExprKind::Lit(_)
        | ExprKind::Name(_)
        | ExprKind::StaticProp { .. }
        | ExprKind::ClassConst { .. }
        | ExprKind::Closure { .. } => {}
        ExprKind::Interp(parts) | ExprKind::Isset(parts) | ExprKind::ShellExec(parts) => {
            for p in parts {
                walk_expr_shallow(p, f);
            }
        }
        ExprKind::ArrayDim { base, index } => {
            walk_expr_shallow(base, f);
            if let Some(i) = index {
                walk_expr_shallow(i, f);
            }
        }
        ExprKind::Prop { base, .. } => walk_expr_shallow(base, f),
        ExprKind::Call { callee, args } => {
            walk_expr_shallow(callee, f);
            for a in args {
                walk_expr_shallow(a, f);
            }
        }
        ExprKind::MethodCall { target, args, .. } => {
            walk_expr_shallow(target, f);
            for a in args {
                walk_expr_shallow(a, f);
            }
        }
        ExprKind::StaticCall { args, .. } | ExprKind::New { args, .. } => {
            for a in args {
                walk_expr_shallow(a, f);
            }
        }
        ExprKind::Assign { target, value, .. } => {
            walk_expr_shallow(target, f);
            walk_expr_shallow(value, f);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr_shallow(lhs, f);
            walk_expr_shallow(rhs, f);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::ErrorSuppress(expr)
        | ExprKind::Empty(expr)
        | ExprKind::Print(expr)
        | ExprKind::Clone(expr)
        | ExprKind::IncludeExpr { path: expr, .. } => walk_expr_shallow(expr, f),
        ExprKind::IncDec { target, .. } => walk_expr_shallow(target, f),
        ExprKind::Ternary {
            cond,
            then,
            otherwise,
        } => {
            walk_expr_shallow(cond, f);
            if let Some(t) = then {
                walk_expr_shallow(t, f);
            }
            walk_expr_shallow(otherwise, f);
        }
        ExprKind::Array(items) => {
            for item in items {
                if let Some(k) = &item.key {
                    walk_expr_shallow(k, f);
                }
                walk_expr_shallow(&item.value, f);
            }
        }
        ExprKind::List(items) => {
            for item in items.iter().flatten() {
                walk_expr_shallow(item, f);
            }
        }
        ExprKind::Exit(arg) => {
            if let Some(a) = arg {
                walk_expr_shallow(a, f);
            }
        }
        ExprKind::InstanceOf { expr, .. } => walk_expr_shallow(expr, f),
    }
}

/// `(true_guards, false_guards)` established by branching on `cond`.
///
/// Handles direct validator calls, `!`, `&&` (guards hold on the true
/// edge), `||` (complement guards hold on the false edge), and the
/// comparison idioms `preg_match(...) === 1` / `=== 0` / `!= 0`.
pub(crate) fn cond_guards(cond: &Expr) -> (Vec<Guard>, Vec<Guard>) {
    match &cond.kind {
        ExprKind::Call { callee, args } => {
            if let ExprKind::Name(n) = &callee.kind {
                if let Some(g) = validator_call(*n, args) {
                    return (vec![g], Vec::new());
                }
            }
            (Vec::new(), Vec::new())
        }
        ExprKind::Unary {
            op: UnOp::Not,
            expr,
        } => {
            let (t, f) = cond_guards(expr);
            (f, t)
        }
        ExprKind::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            let (mut lt, _) = cond_guards(lhs);
            let (rt, _) = cond_guards(rhs);
            lt.extend(rt);
            (lt, Vec::new())
        }
        ExprKind::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
        } => {
            let (_, mut lf) = cond_guards(lhs);
            let (_, rf) = cond_guards(rhs);
            lf.extend(rf);
            (Vec::new(), lf)
        }
        ExprKind::Binary { op, lhs, rhs }
            if matches!(
                op,
                BinOp::Eq | BinOp::NotEq | BinOp::Identical | BinOp::NotIdentical
            ) =>
        {
            let (lit, other) = match (&lhs.kind, &rhs.kind) {
                (ExprKind::Lit(l), _) => (Some(l), rhs.as_ref()),
                (_, ExprKind::Lit(l)) => (Some(l), lhs.as_ref()),
                _ => (None, lhs.as_ref()),
            };
            let Some(lit) = lit else {
                return (Vec::new(), Vec::new());
            };
            let truthy = match lit {
                Lit::Int(i) => *i != 0,
                Lit::Bool(b) => *b,
                _ => return (Vec::new(), Vec::new()),
            };
            let equals = matches!(op, BinOp::Eq | BinOp::Identical);
            let (t, f) = cond_guards(other);
            if truthy == equals {
                (t, f)
            } else {
                (f, t)
            }
        }
        _ => (Vec::new(), Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wap_php::parse;

    fn cfgs(src: &str) -> FileCfgs {
        lower_program(&parse(src).expect("parse"))
    }

    #[test]
    fn straight_line_is_one_block() {
        let f = cfgs("<?php $a = 1; $b = $a + 1; echo $b;");
        let top = &f.cfgs[0];
        let live: Vec<&Block> = top.blocks.iter().filter(|b| !b.nodes.is_empty()).collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].nodes.len(), 3);
        assert_eq!(live[0].nodes[0].defs, vec!["a"]);
    }

    #[test]
    fn if_else_produces_diamond() {
        let f = cfgs("<?php if ($x) { echo 1; } else { echo 2; } echo 3;");
        let top = &f.cfgs[0];
        let reach = top.reachable();
        assert!(reach.iter().all(|r| *r), "no unreachable blocks: {top:?}");
        // entry has two successors (then, else)
        assert_eq!(top.blocks[0].succs.len(), 2);
    }

    #[test]
    fn code_after_exit_is_unreachable() {
        let f = cfgs("<?php exit; echo 'dead';");
        let top = &f.cfgs[0];
        let reach = top.reachable();
        let dead: Vec<&Block> = top
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| !reach[*i] && !b.nodes.is_empty())
            .map(|(_, b)| b)
            .collect();
        assert_eq!(dead.len(), 1);
    }

    #[test]
    fn code_after_return_in_function_is_unreachable() {
        let f = cfgs("<?php function g() { return 1; echo 'dead'; }");
        let fun = &f.cfgs[1];
        let reach = fun.reachable();
        assert!(fun
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| !reach[i] && !b.nodes.is_empty()));
    }

    #[test]
    fn loops_have_back_edges() {
        let f = cfgs("<?php while ($x) { $x = $x - 1; } echo $x;");
        let top = &f.cfgs[0];
        // some block has an edge to an earlier block (the loop head)
        let back = top
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|e| e.to <= i && e.to != i + 1));
        assert!(back, "expected a back edge: {top:?}");
        assert!(top.reachable().iter().all(|r| *r));
    }

    #[test]
    fn break_exits_loop_continue_reenters() {
        let f = cfgs("<?php while (true) { if ($x) { break; } continue; } echo 'after';");
        let top = &f.cfgs[0];
        let reach = top.reachable();
        // `echo 'after'` must be reachable through the break edge
        let after_reachable = top
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.nodes.iter().any(|n| !n.is_cond))
            .all(|(i, _)| reach[i]);
        assert!(after_reachable, "{top:?}");
    }

    #[test]
    fn guards_attach_to_branch_edges() {
        let f = cfgs("<?php if (is_numeric($id)) { echo $id; }");
        let top = &f.cfgs[0];
        let guard_edges: Vec<&Edge> = top
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .filter(|e| !e.guards.is_empty())
            .collect();
        assert_eq!(guard_edges.len(), 1);
        assert_eq!(guard_edges[0].guards[0].var, "id");
        assert_eq!(guard_edges[0].guards[0].validator, "is_numeric");
    }

    #[test]
    fn negated_guard_attaches_to_false_edge() {
        let src = "<?php if (!is_numeric($id)) { exit; } echo $id;";
        let f = cfgs(src);
        let top = &f.cfgs[0];
        // the false edge (continuation) carries the guard
        let mut found = false;
        for b in &top.blocks {
            for e in &b.succs {
                if !e.guards.is_empty() {
                    found = true;
                    // the target block holds the echo, not the exit
                    assert!(top.blocks[e.to]
                        .nodes
                        .iter()
                        .all(|n| !n.span.slice(src).contains("exit")));
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn preg_match_comparison_idiom() {
        let (t, f) = cond_guards(
            &parse_cond("<?php if (preg_match('/^[0-9]+$/', $x) === 1) { echo $x; }").clone(),
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].validator, "preg_match");
        assert_eq!(t[0].var, "x");
        assert!(f.is_empty());

        let (t, f) =
            cond_guards(&parse_cond("<?php if (preg_match('/x/', $x) === 0) { echo 1; }").clone());
        assert!(t.is_empty());
        assert_eq!(f.len(), 1);
    }

    fn parse_cond(src: &str) -> Expr {
        let p = parse(src).expect("parse");
        match &p.stmts[0].kind {
            StmtKind::If { cond, .. } => cond.clone(),
            other => panic!("not an if: {other:?}"),
        }
    }

    #[test]
    fn and_combines_or_complements() {
        let (t, _) =
            cond_guards(&parse_cond("<?php if (is_int($a) && is_numeric($b)) { echo 1; }"));
        assert_eq!(t.len(), 2);

        let (t, f) =
            cond_guards(&parse_cond("<?php if (!is_int($a) || !is_numeric($b)) { exit; }"));
        assert!(t.is_empty());
        assert_eq!(f.len(), 2, "both complements hold on the false edge");
    }

    #[test]
    fn assignment_in_condition_is_flagged() {
        let f = cfgs("<?php if ($x = rand()) { echo $x; }");
        let cond = f.cfgs[0]
            .blocks
            .iter()
            .flat_map(|b| b.nodes.iter())
            .find(|n| n.is_cond)
            .expect("cond node");
        assert!(cond.assign_in_cond);

        let f = cfgs("<?php if ($x == rand()) { echo $x; }");
        let cond = f.cfgs[0]
            .blocks
            .iter()
            .flat_map(|b| b.nodes.iter())
            .find(|n| n.is_cond)
            .expect("cond node");
        assert!(!cond.assign_in_cond);
    }

    #[test]
    fn cast_assignment_records_guard_def() {
        let f = cfgs("<?php $id = (int)$_GET['id']; $n = intval($_GET['n']);");
        let node0 = &f.cfgs[0].blocks[0].nodes[0];
        assert_eq!(node0.guard_defs, vec![("id".into(), "cast_int".into())]);
        let node1 = &f.cfgs[0].blocks[0].nodes[1];
        assert_eq!(node1.guard_defs, vec![("n".into(), "intval".into())]);
    }

    #[test]
    fn calls_record_argument_roots() {
        let f = cfgs("<?php mysql_query(\"SELECT \" . $q, $conn);");
        let call = &f.cfgs[0].blocks[0].nodes[0].calls[0];
        assert_eq!(call.name, "mysql_query");
        assert_eq!(call.arg_vars, vec!["conn", "q"]);
    }

    #[test]
    fn functions_get_their_own_graphs() {
        let f = cfgs("<?php function g($a) { return $a; } g(1);");
        assert_eq!(f.cfgs.len(), 2);
        assert_eq!(f.cfgs[1].name.map(Symbol::as_str), Some("g"));
        assert_eq!(f.cfgs[1].params, vec!["a"]);
        // param defs land in the entry node
        assert_eq!(f.cfgs[1].blocks[0].nodes[0].defs, vec!["a"]);
    }

    #[test]
    fn switch_fallthrough_and_default() {
        let f = cfgs(
            "<?php switch ($x) { case 1: echo 'a'; case 2: echo 'b'; break; default: echo 'c'; } echo 'after';",
        );
        let top = &f.cfgs[0];
        assert!(top.reachable().iter().enumerate().all(|(i, r)| {
            *r || top.blocks[i].nodes.is_empty() // only structural blocks may be dead
        }));
    }

    #[test]
    fn try_catch_finally_reaches_after() {
        let f = cfgs(
            "<?php try { risky(); } catch (Exception $e) { log_it($e); } finally { cleanup(); } echo 'done';",
        );
        let top = &f.cfgs[0];
        let reach = top.reachable();
        assert!(top
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.nodes.is_empty())
            .all(|(i, _)| reach[i]));
    }

    #[test]
    fn locate_finds_tightest_node() {
        let src = "<?php $a = 1; mysql_query($a);";
        let f = cfgs(src);
        let call_span = f.find_call("mysql_query").expect("call");
        let (c, b, i) = f.locate(call_span).expect("located");
        assert_eq!(c, 0);
        let node = &f.cfgs[c].blocks[b].nodes[i];
        assert!(node.span.slice(src).contains("mysql_query"));
    }
}
