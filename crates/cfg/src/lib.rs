//! # wap-cfg — control-flow graphs and guard analysis for the wap pipeline
//!
//! The taint engine is deliberately flow-insensitive: validation guards
//! like `is_numeric`/`preg_match` never stop taint, exactly the blind spot
//! the paper's data-mining committee papers over. This crate adds real
//! control-flow facts on the side:
//!
//! * [`lower_program`] lowers each parsed PHP function body and the
//!   top-level script into a [`Cfg`] of basic blocks connected by branch,
//!   loop, and try edges ([`graph`]).
//! * [`Dominators`] computes the dominator tree of a graph with the
//!   iterative Cooper–Harvey–Kennedy algorithm ([`dominators`]).
//! * [`ReachingDefs`] runs a classic gen/kill reaching-definitions
//!   dataflow for simple variables ([`reach`]).
//! * [`GuardAnalysis`] answers "is this sink span dominated by a
//!   validation guard on the tainted variable?" for the known validators
//!   (`is_numeric`, `is_int`, `preg_match`, `in_array`, cast guards, ...)
//!   ([`guard`]).
//! * [`RuleSet`] hosts the unified rule engine ([`rules`]): builtin
//!   lints (unguarded sinks, unreachable code after exit,
//!   assignment-in-condition, tainted-sink-without-dominating-guard),
//!   weapon-declared rules, and installed pack rules all compile from
//!   one [`RuleSpec`] schema — call matchers, call-with-argument
//!   regex-lite constraints, statement patterns with metavariables —
//!   producing deterministic, sorted [`LintFinding`]s ([`lint`] holds
//!   the data model).
//!
//! Like the rest of the workspace's analysis core, this crate is
//! dependency-free apart from `wap-php` (the AST it lowers).
//!
//! ## Quick start
//!
//! ```
//! use wap_cfg::{lower_program, GuardAnalysis};
//! use wap_php::parse;
//!
//! let p = parse(
//!     "<?php
//!      $id = $_GET['id'];
//!      if (!is_numeric($id)) { exit; }
//!      mysql_query(\"SELECT * FROM t WHERE id = $id\");",
//! )?;
//! let cfgs = lower_program(&p);
//! let sink = cfgs.find_call("mysql_query").expect("sink call");
//! let guards = cfgs.dominating_guards(sink, &["id".into()]);
//! assert_eq!(guards[0].validator, "is_numeric");
//! # Ok::<(), wap_php::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod dominators;
pub mod graph;
pub mod guard;
pub mod lint;
pub mod reach;
pub mod rules;
pub mod values;

pub use dominators::Dominators;
pub use graph::{lower_program, lower_stmts, Block, BlockId, Cfg, Edge, FileCfgs, Guard, Node};
pub use guard::{GuardAnalysis, GuardFact};
pub use lint::{
    builtin_rules, normalize_rule_id, sort_findings, LintFinding, LintRule, Severity, SinkEvent,
    RULE_ASSIGN_IN_COND, RULE_TAINTED_SINK, RULE_UNGUARDED_SINK, RULE_UNREACHABLE,
    RULE_UNRESOLVED_INCLUDE,
};
pub use reach::{DefSite, ReachingDefs};
pub use rules::{
    builtin_specs, CompiledRule, FileFacts, MatchSpec, Pattern, RuleError, RuleSet, RuleSpec,
};
pub use values::{
    analyze_file_values, dynamic_include_sites, summarize_values, AbstractValue, FileValues,
    SinkContext, ValueResolution, ValueSummary,
};
