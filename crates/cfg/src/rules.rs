//! The unified rule API: every lint rule — builtin, weapon-declared, or
//! pack-distributed — is one [`RuleSpec`], compiled once into a
//! [`CompiledRule`] inside a [`RuleSet`], and executed by a single pass
//! over the lowered CFGs. There is exactly one path from declaration to
//! finding.
//!
//! The match language ([`MatchSpec`]) covers:
//!
//! * structural matchers backing the builtin lints (unreachable code,
//!   assignment-in-condition, unguarded catalog sinks, tainted sinks),
//! * call matchers (`forbid_call` / `require_guard` from weapon files),
//! * call-with-argument constraints — the call's argument text must
//!   match a [`Pattern`] (regex-lite, no external regex crate),
//! * statement patterns over printed statements, with `...` gaps and
//!   `$NAME` metavariable bindings plus per-binding `where` constraints.
//!
//! A `where` constraint is either the historical regex-lite pattern over
//! the bound text, or — when every `" and "`-separated term is a
//! recognized predicate — a semantic predicate chain evaluated against
//! per-file [`FileFacts`]: `tainted($X)` (the binding mentions a request
//! superglobal or a taint-analysis carrier), `const($X)` (the binding is
//! a literal or the value analysis proves it constant), `not const($X)`
//! / `!const($X)`, and `matches-value($X, <regex-lite>)` (some resolved
//! concrete value matches). Any unrecognized term keeps the whole
//! expression a plain regex, so existing packs compile unchanged.
//!
//! Executions are deterministic: findings come out in the canonical
//! `(file, line, span, rule, message)` order regardless of rule or
//! traversal order.

use crate::graph::{Cfg, FileCfgs};
use crate::guard::GuardAnalysis;
use crate::lint::{
    normalize_rule_id, sort_findings, var_list, LintFinding, LintRule, Severity, SinkEvent,
    RULE_ASSIGN_IN_COND, RULE_TAINTED_SINK, RULE_UNGUARDED_SINK, RULE_UNREACHABLE,
    RULE_UNRESOLVED_INCLUDE,
};
use crate::values::{AbstractValue, FileValues};
use std::collections::BTreeSet;
use wap_php::Symbol;

/// A rule declaration: the single schema every rule source (builtin
/// table, weapon `lint_rules`, installed packs) lowers into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpec {
    /// Rule id; normalized into the `WAP-` namespace at compile time.
    pub id: String,
    /// Severity name (`error`/`warning`/`note`); unknown names compile
    /// to `warning`, matching the historical weapon-rule behavior.
    pub severity: String,
    /// One-line description for report rule tables; when empty the
    /// message is used.
    pub summary: String,
    /// Message attached to findings (call rules append the call name).
    pub message: String,
    /// Pack this rule came from, for provenance in SARIF; `None` for
    /// builtin and weapon-declared rules.
    pub pack: Option<String>,
    /// What the rule matches.
    pub matcher: MatchSpec,
}

/// The match language of [`RuleSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchSpec {
    /// Statements control flow can never reach (builtin).
    Unreachable,
    /// An assignment used as a branch condition (builtin).
    AssignInCond,
    /// A call to one of the listed sink functions whose argument
    /// variables have no dominating validation guard (builtin; the
    /// sink list comes from the active catalog).
    UnguardedSink {
        /// Sink function/method names (case-insensitive).
        sinks: Vec<String>,
    },
    /// A taint-engine sink event with no dominating guard on the
    /// tainted variables (builtin; events ride in via
    /// [`RuleSet::run_tainted`]).
    TaintedSink,
    /// A dynamic include whose path no analysis resolved to a scan-set
    /// file (builtin; unresolved sites ride in via
    /// [`RuleSet::run_unresolved_includes`], computed by the pipeline
    /// from the value pass).
    UnresolvedInclude,
    /// Every call to `function` (the weapon `forbid_call` kind).
    Call {
        /// Forbidden function name (case-insensitive).
        function: String,
    },
    /// Calls to `function` whose argument variables lack a dominating
    /// guard (the weapon `require_guard` kind).
    CallGuarded {
        /// Guarded function name (case-insensitive).
        function: String,
    },
    /// Calls to `function` whose printed argument list matches a
    /// regex-lite pattern (e.g. an interpolated string reaching
    /// `$wpdb->query`).
    CallWithArg {
        /// Function or method name (case-insensitive).
        function: String,
        /// Regex-lite pattern searched in the call's argument text.
        argument: String,
    },
    /// A statement whose printed source matches a pattern. The pattern
    /// matches literally (whitespace-insensitive), `...` matches any
    /// run of text, and `$NAME` (all-caps) binds a metavariable;
    /// repeated metavariables must bind identical text and each
    /// `where` entry constrains a binding with a regex-lite pattern or
    /// a predicate chain (`tainted($X)`, `const($X)`, `!const($X)`,
    /// `matches-value($X, <re>)`, joined with `" and "`) evaluated
    /// against [`FileFacts`].
    Pattern {
        /// The statement pattern.
        pattern: String,
        /// Per-metavariable constraints (regex-lite or predicates).
        constraints: Vec<(String, String)>,
    },
}

impl MatchSpec {
    /// The matcher's kind name — manifest `kind` strings for pack
    /// matchers, descriptive names for the structural builtins. Used by
    /// `wap rules list` to show what a pack's rules match on.
    pub fn kind_name(&self) -> &'static str {
        match self {
            MatchSpec::Unreachable => "unreachable",
            MatchSpec::AssignInCond => "assign_in_cond",
            MatchSpec::UnguardedSink { .. } => "unguarded_sink",
            MatchSpec::TaintedSink => "tainted_sink",
            MatchSpec::UnresolvedInclude => "unresolved_include",
            MatchSpec::Call { .. } => "forbid_call",
            MatchSpec::CallGuarded { .. } => "require_guard",
            MatchSpec::CallWithArg { .. } => "call_with_arg",
            MatchSpec::Pattern { .. } => "pattern",
        }
    }
}

impl RuleSpec {
    /// The compatibility loader for weapon-declared rules: maps the
    /// legacy `kind` strings (`forbid_call` / `require_guard`) onto the
    /// unified schema. Unknown kinds fall back to `forbid_call`,
    /// matching the historical loader. An empty message gets the
    /// historical default naming the weapon rule.
    pub fn legacy(id: &str, kind: &str, function: &str, severity: &str, message: &str) -> RuleSpec {
        let normalized = normalize_rule_id(id);
        let message = if message.is_empty() {
            format!("call to {function} flagged by weapon rule {normalized}")
        } else {
            message.to_string()
        };
        let matcher = match kind {
            "require_guard" => MatchSpec::CallGuarded {
                function: function.to_string(),
            },
            _ => MatchSpec::Call {
                function: function.to_string(),
            },
        };
        RuleSpec {
            id: id.to_string(),
            severity: severity.to_string(),
            summary: message.clone(),
            message,
            pack: None,
            matcher,
        }
    }
}

/// The builtin lint rules as [`RuleSpec`]s — the same schema pack rules
/// use, so the builtin table is just another rule source. `sinks` is the
/// active catalog's sink-name list for the unguarded-sink rule.
pub fn builtin_specs(sinks: Vec<String>) -> Vec<RuleSpec> {
    vec![
        RuleSpec {
            id: RULE_ASSIGN_IN_COND.to_string(),
            severity: "warning".to_string(),
            summary: "assignment used as a branch condition".to_string(),
            message: "assignment used as a branch condition (did you mean '=='?)".to_string(),
            pack: None,
            matcher: MatchSpec::AssignInCond,
        },
        RuleSpec {
            id: RULE_TAINTED_SINK.to_string(),
            severity: "error".to_string(),
            summary: "tainted data reaches a sink without a dominating validation guard"
                .to_string(),
            message: String::new(),
            pack: None,
            matcher: MatchSpec::TaintedSink,
        },
        RuleSpec {
            id: RULE_UNGUARDED_SINK.to_string(),
            severity: "warning".to_string(),
            summary: "sink call not dominated by any validation guard on its arguments"
                .to_string(),
            message: String::new(),
            pack: None,
            matcher: MatchSpec::UnguardedSink { sinks },
        },
        RuleSpec {
            id: RULE_UNREACHABLE.to_string(),
            severity: "note".to_string(),
            summary: "statement is unreachable".to_string(),
            message: String::new(),
            pack: None,
            matcher: MatchSpec::Unreachable,
        },
        RuleSpec {
            id: RULE_UNRESOLVED_INCLUDE.to_string(),
            severity: "note".to_string(),
            summary: "dynamic include path could not be resolved (analysis coverage gap)"
                .to_string(),
            message: "dynamic include path could not be resolved; its target is not analyzed"
                .to_string(),
            pack: None,
            matcher: MatchSpec::UnresolvedInclude,
        },
    ]
}

/// A compile error for one rule (bad pattern, unbound metavariable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleError {
    /// Id of the offending rule (as declared, not normalized).
    pub rule: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for RuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for RuleError {}

/// One rule after compilation: normalized id, parsed severity, and a
/// matcher ready to execute.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// Normalized rule id (`WAP-...`).
    pub id: String,
    /// Parsed severity.
    pub severity: Severity,
    /// Rule-table summary.
    pub summary: String,
    /// Finding message template.
    pub message: String,
    /// Source pack, when the rule came from an installed pack.
    pub pack: Option<String>,
    matcher: CompiledMatcher,
}

#[derive(Debug, Clone)]
enum CompiledMatcher {
    Unreachable,
    AssignInCond,
    UnguardedSink { sinks: Vec<String> },
    TaintedSink,
    UnresolvedInclude,
    Call { function: String },
    CallGuarded { function: String },
    CallWithArg { function: String, argument: Pattern },
    Pattern { pattern: StmtPattern },
}

/// A compiled, immutable set of rules executed by one lint pass.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<CompiledRule>,
    needs_guards: bool,
    needs_source: bool,
}

impl RuleSet {
    /// Compiles rule specs into an executable set.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] (bad regex-lite pattern, `where`
    /// constraint naming a metavariable absent from the pattern).
    pub fn compile(specs: &[RuleSpec]) -> Result<RuleSet, RuleError> {
        let mut rules = Vec::with_capacity(specs.len());
        for spec in specs {
            let err = |message: String| RuleError {
                rule: spec.id.clone(),
                message,
            };
            let matcher = match &spec.matcher {
                MatchSpec::Unreachable => CompiledMatcher::Unreachable,
                MatchSpec::AssignInCond => CompiledMatcher::AssignInCond,
                MatchSpec::UnguardedSink { sinks } => CompiledMatcher::UnguardedSink {
                    sinks: sinks.clone(),
                },
                MatchSpec::TaintedSink => CompiledMatcher::TaintedSink,
                MatchSpec::UnresolvedInclude => CompiledMatcher::UnresolvedInclude,
                MatchSpec::Call { function } => CompiledMatcher::Call {
                    function: function.clone(),
                },
                MatchSpec::CallGuarded { function } => CompiledMatcher::CallGuarded {
                    function: function.clone(),
                },
                MatchSpec::CallWithArg { function, argument } => CompiledMatcher::CallWithArg {
                    function: function.clone(),
                    argument: Pattern::compile(argument).map_err(&err)?,
                },
                MatchSpec::Pattern {
                    pattern,
                    constraints,
                } => CompiledMatcher::Pattern {
                    pattern: StmtPattern::compile(pattern, constraints).map_err(&err)?,
                },
            };
            rules.push(CompiledRule {
                id: normalize_rule_id(&spec.id),
                severity: Severity::parse(&spec.severity).unwrap_or(Severity::Warning),
                summary: if spec.summary.is_empty() {
                    if spec.message.is_empty() {
                        spec.id.clone()
                    } else {
                        spec.message.clone()
                    }
                } else {
                    spec.summary.clone()
                },
                message: spec.message.clone(),
                pack: spec.pack.clone(),
                matcher,
            });
        }
        let needs_guards = rules.iter().any(|r| match &r.matcher {
            CompiledMatcher::UnguardedSink { sinks } => !sinks.is_empty(),
            CompiledMatcher::CallGuarded { .. } => true,
            _ => false,
        });
        let needs_source = rules.iter().any(|r| {
            matches!(
                r.matcher,
                CompiledMatcher::CallWithArg { .. } | CompiledMatcher::Pattern { .. }
            )
        });
        Ok(RuleSet {
            rules,
            needs_guards,
            needs_source,
        })
    }

    /// The builtin set alone: the four historical lints over the given
    /// catalog sink list.
    pub fn builtin(sinks: Vec<String>) -> RuleSet {
        RuleSet::compile(&builtin_specs(sinks)).expect("builtin specs compile")
    }

    /// The compiled rules, in declaration order.
    pub fn rules(&self) -> &[CompiledRule] {
        &self.rules
    }

    /// Whether any rule needs the original source text (pattern and
    /// call-with-argument matchers print statements from it).
    pub fn needs_source(&self) -> bool {
        self.needs_source
    }

    /// Whether any rule carries a predicate `where` constraint, i.e.
    /// consumes [`FileFacts`]. Callers use this to decide whether to
    /// compute facts (and to salt lint cache keys with them).
    pub fn needs_facts(&self) -> bool {
        self.rules.iter().any(|r| match &r.matcher {
            CompiledMatcher::Pattern { pattern } => pattern.has_predicates(),
            _ => false,
        })
    }

    /// Report rule-table metadata: one entry per distinct rule id, in
    /// sorted id order.
    pub fn rule_table(&self) -> Vec<LintRule> {
        let mut table: Vec<LintRule> = self
            .rules
            .iter()
            .map(|r| LintRule {
                id: r.id.clone(),
                summary: r.summary.clone(),
                severity: r.severity,
                pack: r.pack.clone(),
            })
            .collect();
        table.sort_by(|a, b| a.id.cmp(&b.id));
        table.dedup_by(|a, b| a.id == b.id);
        table
    }

    /// Runs every CFG-local rule over one file's graphs. `source` is the
    /// file's original text, required by pattern and call-with-argument
    /// rules (they never fire without it). Findings are sorted and
    /// deterministic. Predicate `where` constraints see empty facts, so
    /// `tainted`/`const` predicates only fire on what the binding text
    /// alone proves; use [`RuleSet::run_with_facts`] to supply facts.
    pub fn run(&self, file: &str, cfgs: &FileCfgs, source: Option<&str>) -> Vec<LintFinding> {
        self.run_with_facts(file, cfgs, source, &FileFacts::default())
    }

    /// [`RuleSet::run`] with per-file semantic facts backing predicate
    /// `where` constraints.
    pub fn run_with_facts(
        &self,
        file: &str,
        cfgs: &FileCfgs,
        source: Option<&str>,
        facts: &FileFacts<'_>,
    ) -> Vec<LintFinding> {
        let mut out = Vec::new();
        for cfg in &cfgs.cfgs {
            self.run_cfg(file, cfg, source, facts, &mut out);
        }
        sort_findings(&mut out);
        out
    }

    fn run_cfg(
        &self,
        file: &str,
        cfg: &Cfg,
        source: Option<&str>,
        facts: &FileFacts<'_>,
        out: &mut Vec<LintFinding>,
    ) {
        let reachable = cfg.reachable();

        for rule in &self.rules {
            match &rule.matcher {
                CompiledMatcher::Unreachable => {
                    // one finding per dead block that has statements
                    for (b, block) in cfg.blocks.iter().enumerate() {
                        if reachable[b] || block.nodes.is_empty() {
                            continue;
                        }
                        let first = &block.nodes[0];
                        out.push(LintFinding {
                            rule_id: rule.id.clone(),
                            severity: rule.severity,
                            file: file.to_string(),
                            line: first.line,
                            span: first.span,
                            message: match &cfg.name {
                                Some(n) => format!("statement in function '{n}' is unreachable"),
                                None => "statement is unreachable".to_string(),
                            },
                        });
                    }
                }
                CompiledMatcher::AssignInCond => {
                    for block in &cfg.blocks {
                        for node in &block.nodes {
                            if node.is_cond && node.assign_in_cond {
                                out.push(LintFinding {
                                    rule_id: rule.id.clone(),
                                    severity: rule.severity,
                                    file: file.to_string(),
                                    line: node.line,
                                    span: node.span,
                                    message: rule.message.clone(),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        // call + pattern rules share one guard analysis per graph and
        // skip dead blocks: dead sinks are already reported as unreachable
        let analysis = if self.needs_guards {
            Some(GuardAnalysis::new(cfg))
        } else {
            None
        };
        let call_rules = self.rules.iter().any(|r| {
            matches!(
                r.matcher,
                CompiledMatcher::UnguardedSink { .. }
                    | CompiledMatcher::Call { .. }
                    | CompiledMatcher::CallGuarded { .. }
                    | CompiledMatcher::CallWithArg { .. }
                    | CompiledMatcher::Pattern { .. }
            )
        });
        if !call_rules {
            return;
        }

        for (b, block) in cfg.blocks.iter().enumerate() {
            if !reachable[b] {
                continue;
            }
            for (i, node) in block.nodes.iter().enumerate() {
                for rule in &self.rules {
                    if let CompiledMatcher::Pattern { pattern } = &rule.matcher {
                        if node.span.len() == 0 {
                            continue; // synthesized entry nodes print nothing
                        }
                        let Some(text) = source.and_then(|s| slice_span(s, node.span)) else {
                            continue;
                        };
                        if pattern.matches(&normalize_ws(text), node.span.start(), facts) {
                            out.push(LintFinding {
                                rule_id: rule.id.clone(),
                                severity: rule.severity,
                                file: file.to_string(),
                                line: node.line,
                                span: node.span,
                                message: rule.message.clone(),
                            });
                        }
                    }
                }
                for call in &node.calls {
                    for rule in &self.rules {
                        match &rule.matcher {
                            CompiledMatcher::UnguardedSink { sinks } => {
                                let is_sink = sinks
                                    .iter()
                                    .any(|s| s.eq_ignore_ascii_case(call.name.as_str()));
                                if is_sink && !call.arg_vars.is_empty() {
                                    let analysis = analysis.as_ref().expect("guard analysis");
                                    if analysis.guards_at(b, i, &call.arg_vars).is_empty() {
                                        out.push(LintFinding {
                                            rule_id: rule.id.clone(),
                                            severity: rule.severity,
                                            file: file.to_string(),
                                            line: call.line,
                                            span: call.span,
                                            message: format!(
                                                "call to sink '{}' is not dominated by a validation guard on {}",
                                                call.name,
                                                var_list(&call.arg_vars)
                                            ),
                                        });
                                    }
                                }
                            }
                            CompiledMatcher::Call { function }
                                if function.eq_ignore_ascii_case(call.name.as_str()) =>
                            {
                                out.push(LintFinding {
                                    rule_id: rule.id.clone(),
                                    severity: rule.severity,
                                    file: file.to_string(),
                                    line: call.line,
                                    span: call.span,
                                    message: format!(
                                        "{} (call to '{}')",
                                        rule.message, call.name
                                    ),
                                });
                            }
                            CompiledMatcher::CallGuarded { function }
                                if function.eq_ignore_ascii_case(call.name.as_str())
                                    && !call.arg_vars.is_empty() =>
                            {
                                let analysis = analysis.as_ref().expect("guard analysis");
                                if analysis.guards_at(b, i, &call.arg_vars).is_empty() {
                                    out.push(LintFinding {
                                        rule_id: rule.id.clone(),
                                        severity: rule.severity,
                                        file: file.to_string(),
                                        line: call.line,
                                        span: call.span,
                                        message: format!(
                                            "{} (unguarded call to '{}')",
                                            rule.message, call.name
                                        ),
                                    });
                                }
                            }
                            CompiledMatcher::CallWithArg { function, argument }
                                if function.eq_ignore_ascii_case(call.name.as_str()) =>
                            {
                                let Some(text) = source.and_then(|s| slice_span(s, call.span))
                                else {
                                    continue;
                                };
                                if argument.search(&normalize_ws(call_args_text(text))) {
                                    out.push(LintFinding {
                                        rule_id: rule.id.clone(),
                                        severity: rule.severity,
                                        file: file.to_string(),
                                        line: call.line,
                                        span: call.span,
                                        message: format!(
                                            "{} (call to '{}')",
                                            rule.message, call.name
                                        ),
                                    });
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    /// Runs the tainted-sink rule: each taint-engine sink event is
    /// checked for a dominating guard on its tainted variables; guarded
    /// events are suppressed. A no-op when the set declares no
    /// [`MatchSpec::TaintedSink`] rule. Findings are sorted.
    pub fn run_tainted(
        &self,
        file: &str,
        cfgs: &FileCfgs,
        sinks: &[SinkEvent],
    ) -> Vec<LintFinding> {
        let mut out: Vec<LintFinding> = Vec::new();
        for rule in &self.rules {
            if !matches!(rule.matcher, CompiledMatcher::TaintedSink) {
                continue;
            }
            for s in sinks {
                let guards = cfgs.dominating_guards(s.span, &s.vars);
                if !guards.is_empty() {
                    continue; // validated: the committee's false-positive case
                }
                out.push(LintFinding {
                    rule_id: rule.id.clone(),
                    severity: rule.severity,
                    file: file.to_string(),
                    line: s.line,
                    span: s.span,
                    message: format!(
                        "tainted data reaches {} sink without a dominating guard on {}",
                        s.class,
                        var_list(&s.vars)
                    ),
                });
            }
        }
        sort_findings(&mut out);
        out
    }

    /// Runs the unresolved-include rule over the given unresolved
    /// dynamic-include sites (`(span, 1-based line)` pairs, computed by
    /// the pipeline as the dynamic include sites the value analysis
    /// could not resolve). A no-op when the set declares no
    /// [`MatchSpec::UnresolvedInclude`] rule. Findings are sorted.
    pub fn run_unresolved_includes(
        &self,
        file: &str,
        sites: &[(wap_php::Span, u32)],
    ) -> Vec<LintFinding> {
        let mut out: Vec<LintFinding> = Vec::new();
        for rule in &self.rules {
            if !matches!(rule.matcher, CompiledMatcher::UnresolvedInclude) {
                continue;
            }
            for &(span, line) in sites {
                out.push(LintFinding {
                    rule_id: rule.id.clone(),
                    severity: rule.severity,
                    file: file.to_string(),
                    line,
                    span,
                    message: rule.message.clone(),
                });
            }
        }
        sort_findings(&mut out);
        out
    }
}

/// Slices a span out of the source, tolerating out-of-range or
/// non-boundary spans (returns `None` instead of panicking).
fn slice_span(source: &str, span: wap_php::Span) -> Option<&str> {
    source.get(span.start() as usize..span.end() as usize)
}

/// Collapses whitespace runs to single spaces and trims, so patterns are
/// whitespace-insensitive.
fn normalize_ws(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = false;
    for c in text.trim().chars() {
        if c.is_whitespace() {
            in_ws = true;
            continue;
        }
        if in_ws && !out.is_empty() {
            out.push(' ');
        }
        in_ws = false;
        out.push(c);
    }
    out
}

/// The argument-list text of a printed call: everything between the
/// outermost parentheses, or the whole text when there are none.
fn call_args_text(text: &str) -> &str {
    match (text.find('('), text.rfind(')')) {
        (Some(open), Some(close)) if close > open => &text[open + 1..close],
        _ => text,
    }
}

// ---------------------------------------------------------------------------
// regex-lite: the pattern engine behind `where` constraints and
// call-with-argument rules. Supported syntax: literals, `\`-escapes
// (including \d \w \s and their negations), `.`, `[...]`/`[^...]` classes
// with ranges, postfix `*` `+` `?`, `(...)` groups, `|` alternation, and
// `^`/`$` anchors. Backtracking over a parsed AST — no external crate.
// ---------------------------------------------------------------------------

/// A compiled regex-lite pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    ast: Alt,
    anchored_start: bool,
}

#[derive(Debug, Clone)]
struct Alt(Vec<Seq>);

#[derive(Debug, Clone)]
struct Seq(Vec<Rep>);

#[derive(Debug, Clone)]
struct Rep {
    atom: Atom,
    min: u32,
    max: Option<u32>,
}

#[derive(Debug, Clone)]
enum Atom {
    Char(char),
    Any,
    Class { negated: bool, items: Vec<ClassItem> },
    Group(Alt),
    Start,
    End,
}

#[derive(Debug, Clone)]
enum ClassItem {
    Single(char),
    Range(char, char),
}

impl Pattern {
    /// Compiles a regex-lite pattern.
    ///
    /// # Errors
    ///
    /// Returns a message for unbalanced groups/classes, dangling
    /// repetition operators, and trailing escapes.
    pub fn compile(pattern: &str) -> Result<Pattern, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let ast = parse_alt(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("unexpected ')' at offset {pos}"));
        }
        let anchored_start = matches!(
            ast.0.first().and_then(|s| s.0.first()),
            Some(Rep {
                atom: Atom::Start,
                ..
            })
        ) && ast.0.len() == 1;
        Ok(Pattern {
            ast,
            anchored_start,
        })
    }

    /// Whether the pattern matches anywhere in `text` (substring search
    /// unless `^`-anchored).
    pub fn search(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let starts = if self.anchored_start {
            0..1
        } else {
            0..chars.len() + 1
        };
        for start in starts {
            if match_alt(&self.ast, &chars, start, &mut |_| true) {
                return true;
            }
        }
        false
    }
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Result<Alt, String> {
    let mut branches = vec![parse_seq(chars, pos)?];
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        branches.push(parse_seq(chars, pos)?);
    }
    Ok(Alt(branches))
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Result<Seq, String> {
    let mut reps = Vec::new();
    while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
        let atom = parse_atom(chars, pos)?;
        let (min, max) = if *pos < chars.len() {
            match chars[*pos] {
                '*' => {
                    *pos += 1;
                    (0, None)
                }
                '+' => {
                    *pos += 1;
                    (1, None)
                }
                '?' => {
                    *pos += 1;
                    (0, Some(1))
                }
                _ => (1, Some(1)),
            }
        } else {
            (1, Some(1))
        };
        if min != 1 || max != Some(1) {
            if matches!(atom, Atom::Start | Atom::End) {
                return Err("repetition applied to an anchor".to_string());
            }
        }
        reps.push(Rep { atom, min, max });
    }
    Ok(Seq(reps))
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
    let c = chars[*pos];
    *pos += 1;
    match c {
        '.' => Ok(Atom::Any),
        '^' => Ok(Atom::Start),
        '$' => Ok(Atom::End),
        '(' => {
            let inner = parse_alt(chars, pos)?;
            if *pos >= chars.len() || chars[*pos] != ')' {
                return Err("unclosed group".to_string());
            }
            *pos += 1;
            Ok(Atom::Group(inner))
        }
        '[' => parse_class(chars, pos),
        '\\' => {
            if *pos >= chars.len() {
                return Err("trailing escape".to_string());
            }
            let e = chars[*pos];
            *pos += 1;
            Ok(escape_atom(e))
        }
        '*' | '+' | '?' => Err(format!("dangling repetition operator '{c}'")),
        other => Ok(Atom::Char(other)),
    }
}

fn escape_atom(e: char) -> Atom {
    let class = |items: Vec<ClassItem>, negated: bool| Atom::Class { negated, items };
    match e {
        'd' => class(vec![ClassItem::Range('0', '9')], false),
        'D' => class(vec![ClassItem::Range('0', '9')], true),
        'w' => class(word_items(), false),
        'W' => class(word_items(), true),
        's' => class(space_items(), false),
        'S' => class(space_items(), true),
        'n' => Atom::Char('\n'),
        't' => Atom::Char('\t'),
        'r' => Atom::Char('\r'),
        other => Atom::Char(other),
    }
}

fn word_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Range('a', 'z'),
        ClassItem::Range('A', 'Z'),
        ClassItem::Range('0', '9'),
        ClassItem::Single('_'),
    ]
}

fn space_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Single(' '),
        ClassItem::Single('\t'),
        ClassItem::Single('\n'),
        ClassItem::Single('\r'),
    ]
}

fn parse_class(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
    let negated = *pos < chars.len() && chars[*pos] == '^';
    if negated {
        *pos += 1;
    }
    let mut items = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let mut c = chars[*pos];
        *pos += 1;
        if c == '\\' {
            if *pos >= chars.len() {
                return Err("trailing escape in class".to_string());
            }
            c = match chars[*pos] {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            };
            *pos += 1;
        }
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            let mut hi = chars[*pos + 1];
            *pos += 2;
            if hi == '\\' {
                if *pos >= chars.len() {
                    return Err("trailing escape in class".to_string());
                }
                hi = chars[*pos];
                *pos += 1;
            }
            items.push(ClassItem::Range(c, hi));
        } else {
            items.push(ClassItem::Single(c));
        }
    }
    if *pos >= chars.len() {
        return Err("unclosed character class".to_string());
    }
    *pos += 1; // consume ']'
    Ok(Atom::Class { negated, items })
}

fn class_matches(negated: bool, items: &[ClassItem], c: char) -> bool {
    let hit = items.iter().any(|item| match item {
        ClassItem::Single(x) => *x == c,
        ClassItem::Range(lo, hi) => (*lo..=*hi).contains(&c),
    });
    hit != negated
}

/// Matches `alt` at `pos`; on success calls `k` with the end position.
fn match_alt(alt: &Alt, text: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    for branch in &alt.0 {
        if match_seq(&branch.0, text, pos, k) {
            return true;
        }
    }
    false
}

fn match_seq(seq: &[Rep], text: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    let Some((first, rest)) = seq.split_first() else {
        return k(pos);
    };
    match_rep(first, text, pos, 0, &mut |end| match_seq(rest, text, end, k))
}

fn match_rep(
    rep: &Rep,
    text: &[char],
    pos: usize,
    count: u32,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    // greedy: try one more repetition first, then settle
    if rep.max.map_or(true, |m| count < m) {
        let advanced = match_atom(&rep.atom, text, pos, &mut |end| {
            // zero-width atoms must not loop forever
            if end == pos && count >= rep.min {
                return false;
            }
            match_rep(rep, text, end, count + 1, k)
        });
        if advanced {
            return true;
        }
    }
    if count >= rep.min {
        return k(pos);
    }
    false
}

fn match_atom(atom: &Atom, text: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match atom {
        Atom::Char(c) => pos < text.len() && text[pos] == *c && k(pos + 1),
        Atom::Any => pos < text.len() && k(pos + 1),
        Atom::Class { negated, items } => {
            pos < text.len() && class_matches(*negated, items, text[pos]) && k(pos + 1)
        }
        Atom::Group(inner) => match_alt(inner, text, pos, k),
        Atom::Start => pos == 0 && k(pos),
        Atom::End => pos == text.len() && k(pos),
    }
}

// ---------------------------------------------------------------------------
// Predicate `where` constraints: semantic facts + the predicate grammar.
// ---------------------------------------------------------------------------

/// Per-file semantic facts backing predicate `where` constraints. The
/// pipeline computes them from the taint report and the value analysis;
/// the empty default means any predicate needing a missing fact
/// conservatively fails (except literal bindings, which prove
/// const-ness on their own).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileFacts<'a> {
    /// Bare variable names (no `$`) the taint analysis marked as
    /// tainted carriers in this file.
    pub tainted_vars: Option<&'a BTreeSet<String>>,
    /// The file's value-analysis result, when the value pass ran.
    pub values: Option<&'a FileValues>,
}

/// One compiled `where` constraint: the historical regex-lite form, or
/// a conjunction of semantic predicates.
#[derive(Debug, Clone)]
enum Constraint {
    Regex(Pattern),
    Predicates(Vec<Predicate>),
}

#[derive(Debug, Clone)]
enum Predicate {
    Tainted,
    Const,
    NotConst,
    MatchesValue(Pattern),
}

/// Request superglobals: bindings mentioning these are tainted without
/// any taint-analysis fact (they *are* the paper's entry points).
const SOURCE_SUPERGLOBALS: [&str; 6] =
    ["_GET", "_POST", "_REQUEST", "_COOKIE", "_FILES", "_SERVER"];

/// Parses one constraint expression. Every `" and "`-separated term
/// must be a recognized predicate for the predicate reading to win;
/// otherwise the whole expression compiles as a regex-lite pattern
/// (the historical behavior, so existing packs are unaffected).
fn parse_constraint(name: &str, expr: &str) -> Result<Constraint, String> {
    let mut preds = Vec::new();
    for term in expr.split(" and ") {
        match parse_predicate(name, term.trim())? {
            Some(p) => preds.push(p),
            None => return Ok(Constraint::Regex(Pattern::compile(expr)?)),
        }
    }
    if preds.is_empty() {
        return Err("empty where-constraint".to_string());
    }
    Ok(Constraint::Predicates(preds))
}

/// One predicate term: `Ok(None)` means "not predicate syntax, fall
/// back to regex"; `Err` means predicate syntax naming the wrong
/// metavariable (certainly a typo, so it does not silently regex-match).
fn parse_predicate(name: &str, term: &str) -> Result<Option<Predicate>, String> {
    let (head, arg) = match term.find('(') {
        Some(i) if term.ends_with(')') => {
            (term[..i].trim_end(), Some(term[i + 1..term.len() - 1].trim()))
        }
        _ => (term, None),
    };
    let head: String = head.split_whitespace().collect::<Vec<_>>().join(" ");
    let check_name = |arg: Option<&str>| -> Result<(), String> {
        match arg {
            None | Some("") => Ok(()),
            Some(a) if a == format!("${name}") => Ok(()),
            Some(a) => Err(format!(
                "predicate argument '{a}' does not name the constrained metavariable ${name}"
            )),
        }
    };
    match head.as_str() {
        "tainted" => {
            check_name(arg)?;
            Ok(Some(Predicate::Tainted))
        }
        "const" => {
            check_name(arg)?;
            Ok(Some(Predicate::Const))
        }
        "not const" | "!const" => {
            check_name(arg)?;
            Ok(Some(Predicate::NotConst))
        }
        "matches-value" => {
            let Some(arg) = arg else {
                return Err("matches-value needs a (pattern) argument".to_string());
            };
            // optional leading `$NAME,` names the metavariable
            let re = match arg.strip_prefix(&format!("${name},")) {
                Some(rest) => rest.trim_start(),
                None if arg.starts_with('$') => {
                    let named = arg.split(',').next().unwrap_or(arg).trim();
                    return Err(format!(
                        "predicate argument '{named}' does not name the constrained metavariable ${name}"
                    ));
                }
                None => arg,
            };
            Ok(Some(Predicate::MatchesValue(Pattern::compile(re)?)))
        }
        _ => Ok(None),
    }
}

impl Predicate {
    fn eval(&self, bound: &str, offset: u32, facts: &FileFacts<'_>) -> bool {
        match self {
            Predicate::Tainted => binding_is_tainted(bound, facts),
            Predicate::Const => binding_is_const(bound, offset, facts),
            Predicate::NotConst => !binding_is_const(bound, offset, facts),
            Predicate::MatchesValue(p) => binding_values(bound, offset, facts)
                .is_some_and(|vals| vals.iter().any(|v| p.search(v))),
        }
    }
}

/// Bare variable names (`$x` → `x`) mentioned anywhere in bound text.
fn binding_var_names(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '$' {
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            if j > i + 1 {
                out.push(chars[i + 1..j].iter().collect());
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

fn binding_is_tainted(bound: &str, facts: &FileFacts<'_>) -> bool {
    binding_var_names(bound).iter().any(|v| {
        SOURCE_SUPERGLOBALS.contains(&v.as_str())
            || facts.tainted_vars.is_some_and(|t| t.contains(v))
    })
}

/// The concrete value of a literal binding (`"x"`, `'x'`, `42`), when
/// the bound text alone proves one.
fn literal_const(bound: &str) -> Option<String> {
    let t = bound.trim();
    let b = t.as_bytes();
    if t.len() >= 2 && (b[0] == b'"' || b[0] == b'\'') && b[t.len() - 1] == b[0] {
        let inner = &t[1..t.len() - 1];
        if !inner.contains(b[0] as char) && !inner.contains('$') {
            return Some(inner.to_string());
        }
        return None;
    }
    let digits = t.strip_prefix('-').unwrap_or(t);
    if !digits.is_empty() && digits.bytes().all(|c| c.is_ascii_digit()) {
        return Some(t.to_string());
    }
    None
}

/// The bare name when the whole binding is one simple variable.
fn single_var(bound: &str) -> Option<&str> {
    let rest = bound.trim().strip_prefix('$')?;
    let simple = !rest.is_empty()
        && !rest.starts_with(|c: char| c.is_ascii_digit())
        && rest.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    simple.then_some(rest)
}

fn binding_is_const(bound: &str, offset: u32, facts: &FileFacts<'_>) -> bool {
    if literal_const(bound).is_some() {
        return true;
    }
    let Some(var) = single_var(bound) else {
        return false;
    };
    facts.values.is_some_and(|fv| {
        fv.value_at(Symbol::intern(var), offset)
            .is_some_and(AbstractValue::is_const)
    })
}

/// Every concrete value the binding may hold, when fully known: the
/// literal itself, or the value analysis' exact string set / constant.
fn binding_values(bound: &str, offset: u32, facts: &FileFacts<'_>) -> Option<Vec<String>> {
    if let Some(lit) = literal_const(bound) {
        return Some(vec![lit]);
    }
    let var = single_var(bound)?;
    match facts.values?.value_at(Symbol::intern(var), offset)? {
        AbstractValue::Num(n) => Some(vec![n.to_string()]),
        AbstractValue::Strs { items, exact: true } => Some(items.iter().cloned().collect()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Statement patterns: literal text (whitespace-insensitive) + `...` gaps
// + `$NAME` metavariables with `where` regex-lite constraints.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct StmtPattern {
    elems: Vec<Elem>,
    /// Constraint per metavariable index (parallel to `names`).
    constraints: Vec<Option<Constraint>>,
    names: Vec<String>,
}

#[derive(Debug, Clone)]
enum Elem {
    /// Literal text (no spaces).
    Lit(Vec<char>),
    /// A space in the pattern: matches an optional space in the subject,
    /// so `md5( ... )` still matches `md5($x)`.
    OptSpace,
    /// `...`: any (possibly empty) run.
    Gap,
    /// `$NAME`: binds a non-empty run; index into `names`.
    Meta(usize),
}

impl StmtPattern {
    fn compile(pattern: &str, constraints: &[(String, String)]) -> Result<StmtPattern, String> {
        let normalized = normalize_ws(pattern);
        let chars: Vec<char> = normalized.chars().collect();
        let mut elems = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut lit = Vec::new();
        let mut i = 0usize;
        while i < chars.len() {
            if chars[i] == '.' && chars.get(i + 1) == Some(&'.') && chars.get(i + 2) == Some(&'.')
            {
                if !lit.is_empty() {
                    elems.push(Elem::Lit(std::mem::take(&mut lit)));
                }
                elems.push(Elem::Gap);
                i += 3;
                continue;
            }
            if chars[i] == '$'
                && chars
                    .get(i + 1)
                    .is_some_and(|c| c.is_ascii_uppercase())
            {
                let mut j = i + 1;
                while j < chars.len()
                    && (chars[j].is_ascii_uppercase() || chars[j].is_ascii_digit() || chars[j] == '_')
                {
                    j += 1;
                }
                let name: String = chars[i + 1..j].iter().collect();
                if !lit.is_empty() {
                    elems.push(Elem::Lit(std::mem::take(&mut lit)));
                }
                let idx = names.iter().position(|n| n == &name).unwrap_or_else(|| {
                    names.push(name);
                    names.len() - 1
                });
                elems.push(Elem::Meta(idx));
                i = j;
                continue;
            }
            if chars[i] == ' ' {
                if !lit.is_empty() {
                    elems.push(Elem::Lit(std::mem::take(&mut lit)));
                }
                elems.push(Elem::OptSpace);
                i += 1;
                continue;
            }
            lit.push(chars[i]);
            i += 1;
        }
        if !lit.is_empty() {
            elems.push(Elem::Lit(lit));
        }
        if elems.is_empty() {
            return Err("empty pattern".to_string());
        }
        let mut compiled: Vec<Option<Constraint>> = vec![None; names.len()];
        for (name, expr) in constraints {
            let Some(idx) = names.iter().position(|n| n == name) else {
                return Err(format!("where-constraint on ${name} not bound in the pattern"));
            };
            compiled[idx] = Some(parse_constraint(name, expr).map_err(|e| {
                format!("where-constraint on ${name}: {e}")
            })?);
        }
        Ok(StmtPattern {
            elems,
            constraints: compiled,
            names,
        })
    }

    /// Whether any `where` constraint is a semantic predicate chain.
    fn has_predicates(&self) -> bool {
        self.constraints
            .iter()
            .flatten()
            .any(|c| matches!(c, Constraint::Predicates(_)))
    }

    /// Whether the pattern matches anywhere in the (whitespace-normalized)
    /// statement text. `offset` is the statement's source offset and
    /// `facts` the file's semantic facts, consumed by predicate
    /// constraints.
    fn matches(&self, text: &str, offset: u32, facts: &FileFacts<'_>) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let mut bindings: Vec<Option<(usize, usize)>> = vec![None; self.names.len()];
        for start in 0..chars.len() + 1 {
            if self.match_elems(&self.elems, &chars, start, &mut bindings, offset, facts) {
                return true;
            }
        }
        false
    }

    fn match_elems(
        &self,
        elems: &[Elem],
        text: &[char],
        pos: usize,
        bindings: &mut Vec<Option<(usize, usize)>>,
        offset: u32,
        facts: &FileFacts<'_>,
    ) -> bool {
        let Some((first, rest)) = elems.split_first() else {
            // substring semantics: trailing text is fine
            return self.bindings_ok(text, bindings, offset, facts);
        };
        match first {
            Elem::Lit(lit) => {
                if pos + lit.len() <= text.len() && text[pos..pos + lit.len()] == lit[..] {
                    self.match_elems(rest, text, pos + lit.len(), bindings, offset, facts)
                } else {
                    false
                }
            }
            Elem::OptSpace => {
                if pos < text.len()
                    && text[pos] == ' '
                    && self.match_elems(rest, text, pos + 1, bindings, offset, facts)
                {
                    return true;
                }
                self.match_elems(rest, text, pos, bindings, offset, facts)
            }
            Elem::Gap => {
                for end in pos..text.len() + 1 {
                    if self.match_elems(rest, text, end, bindings, offset, facts) {
                        return true;
                    }
                }
                false
            }
            Elem::Meta(idx) => {
                if let Some((s, e)) = bindings[*idx] {
                    // repeated metavariable: must match its first binding
                    let len = e - s;
                    if pos + len <= text.len() && text[pos..pos + len] == text[s..e] {
                        return self.match_elems(rest, text, pos + len, bindings, offset, facts);
                    }
                    return false;
                }
                for end in (pos + 1..text.len() + 1).rev() {
                    bindings[*idx] = Some((pos, end));
                    if self.match_elems(rest, text, end, bindings, offset, facts) {
                        return true;
                    }
                }
                bindings[*idx] = None;
                false
            }
        }
    }

    fn bindings_ok(
        &self,
        text: &[char],
        bindings: &[Option<(usize, usize)>],
        offset: u32,
        facts: &FileFacts<'_>,
    ) -> bool {
        for (idx, constraint) in self.constraints.iter().enumerate() {
            let Some(constraint) = constraint else {
                continue;
            };
            let Some((s, e)) = bindings[idx] else {
                return false;
            };
            let bound: String = text[s..e].iter().collect();
            let ok = match constraint {
                Constraint::Regex(p) => p.search(&bound),
                Constraint::Predicates(ps) => {
                    ps.iter().all(|p| p.eval(&bound, offset, facts))
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::lower_program;
    use wap_php::parse;

    fn run_set(src: &str, set: &RuleSet) -> Vec<LintFinding> {
        let cfgs = lower_program(&parse(src).expect("parse"));
        set.run("test.php", &cfgs, Some(src))
    }

    fn sink_set() -> RuleSet {
        RuleSet::builtin(vec!["mysql_query".to_string()])
    }

    #[test]
    fn unguarded_sink_is_flagged() {
        let f = run_set("<?php $id = $_GET['id']; mysql_query($id);", &sink_set());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, RULE_UNGUARDED_SINK);
        assert_eq!(f[0].severity, Severity::Warning);
        assert!(f[0].message.contains("$id"));
    }

    #[test]
    fn guarded_sink_is_suppressed() {
        let f = run_set(
            "<?php $id = $_GET['id']; if (!is_numeric($id)) { exit; } mysql_query($id);",
            &sink_set(),
        );
        assert!(
            f.iter().all(|x| x.rule_id != RULE_UNGUARDED_SINK),
            "dominating guard must suppress the finding: {f:?}"
        );
    }

    #[test]
    fn literal_only_sink_calls_are_ignored() {
        let f = run_set("<?php mysql_query('SELECT 1');", &sink_set());
        assert!(f.is_empty());
    }

    #[test]
    fn unreachable_code_is_noted_once_per_region() {
        let f = run_set("<?php exit; echo 'a'; echo 'b';", &RuleSet::builtin(Vec::new()));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, RULE_UNREACHABLE);
        assert_eq!(f[0].severity, Severity::Note);
    }

    #[test]
    fn unreachable_in_function_names_the_function() {
        let f = run_set(
            "<?php function g() { return 1; echo 'dead'; }",
            &RuleSet::builtin(Vec::new()),
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("'g'"));
    }

    #[test]
    fn assignment_in_condition_fires() {
        let f = run_set(
            "<?php if ($x = rand()) { echo $x; }",
            &RuleSet::builtin(Vec::new()),
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, RULE_ASSIGN_IN_COND);
    }

    #[test]
    fn dead_sink_reports_unreachable_not_unguarded() {
        let f = run_set("<?php exit; mysql_query($id);", &sink_set());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, RULE_UNREACHABLE);
    }

    #[test]
    fn legacy_forbid_call_rule_fires_everywhere() {
        let set = RuleSet::compile(&[RuleSpec::legacy(
            "no eval",
            "forbid_call",
            "eval",
            "error",
            "eval is forbidden by policy",
        )])
        .unwrap();
        let f = run_set("<?php eval($code);", &set);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, "WAP-NO-EVAL");
        assert_eq!(f[0].severity, Severity::Error);
        assert_eq!(f[0].message, "eval is forbidden by policy (call to 'eval')");
    }

    #[test]
    fn legacy_require_guard_rule_respects_dominating_guard() {
        let set = RuleSet::compile(&[RuleSpec::legacy(
            "guard-exec",
            "require_guard",
            "exec",
            "warning",
            "exec arguments must be validated",
        )])
        .unwrap();
        let unguarded = run_set("<?php exec($cmd);", &set);
        assert_eq!(unguarded.len(), 1);
        assert_eq!(unguarded[0].rule_id, "WAP-GUARD-EXEC");

        let guarded = run_set(
            "<?php if (!preg_match('/^[a-z]+$/', $cmd)) { exit; } exec($cmd);",
            &set,
        );
        assert!(guarded.is_empty());
    }

    #[test]
    fn legacy_empty_message_gets_the_historical_default() {
        let spec = RuleSpec::legacy("wp-x", "forbid_call", "frob", "warning", "");
        assert_eq!(spec.message, "call to frob flagged by weapon rule WAP-WP-X");
    }

    #[test]
    fn tainted_sink_rule_flags_and_suppresses() {
        let set = RuleSet::builtin(Vec::new());
        let src = "<?php $id = $_GET['id']; mysql_query($id);";
        let cfgs = lower_program(&parse(src).expect("parse"));
        let span = cfgs.find_call("mysql_query").unwrap();
        let events = vec![SinkEvent {
            span,
            line: span.line(),
            class: "sqli".to_string(),
            vars: vec!["id".into()],
        }];
        let f = set.run_tainted("t.php", &cfgs, &events);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, RULE_TAINTED_SINK);
        assert_eq!(f[0].severity, Severity::Error);

        let src2 = "<?php $id = $_GET['id']; if (!is_numeric($id)) { exit; } mysql_query($id);";
        let cfgs2 = lower_program(&parse(src2).expect("parse"));
        let span2 = cfgs2.find_call("mysql_query").unwrap();
        let events2 = vec![SinkEvent {
            span: span2,
            line: span2.line(),
            class: "sqli".to_string(),
            vars: vec!["id".into()],
        }];
        assert!(set.run_tainted("t.php", &cfgs2, &events2).is_empty());
    }

    #[test]
    fn findings_are_sorted() {
        let f = run_set(
            "<?php if ($x = rand()) { mysql_query($x); } mysql_query($y);",
            &sink_set(),
        );
        let sorted = {
            let mut s = f.clone();
            sort_findings(&mut s);
            s
        };
        assert_eq!(f, sorted);
    }

    #[test]
    fn call_with_arg_matches_interpolated_query() {
        let set = RuleSet::compile(&[RuleSpec {
            id: "wp-interp".to_string(),
            severity: "warning".to_string(),
            summary: String::new(),
            message: "query built from an interpolated string".to_string(),
            pack: Some("wordpress".to_string()),
            matcher: MatchSpec::CallWithArg {
                function: "query".to_string(),
                argument: "\"[^\"]*\\$".to_string(),
            },
        }])
        .unwrap();
        let hit = run_set(
            "<?php $wpdb->query(\"SELECT * FROM t WHERE id = $id\");",
            &set,
        );
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule_id, "WAP-WP-INTERP");
        assert!(hit[0].message.contains("(call to 'query')"));

        let miss = run_set("<?php $wpdb->query('SELECT 1');", &set);
        assert!(miss.is_empty(), "{miss:?}");
    }

    #[test]
    fn call_with_arg_needs_source_text() {
        let set = RuleSet::compile(&[RuleSpec {
            id: "x".to_string(),
            severity: "warning".to_string(),
            summary: String::new(),
            message: "m".to_string(),
            pack: None,
            matcher: MatchSpec::CallWithArg {
                function: "query".to_string(),
                argument: ".".to_string(),
            },
        }])
        .unwrap();
        assert!(set.needs_source());
        let src = "<?php $wpdb->query(\"x $id\");";
        let cfgs = lower_program(&parse(src).expect("parse"));
        assert!(set.run("t.php", &cfgs, None).is_empty());
    }

    #[test]
    fn statement_pattern_with_metavariable_and_where() {
        let set = RuleSet::compile(&[RuleSpec {
            id: "echo-get".to_string(),
            severity: "error".to_string(),
            summary: String::new(),
            message: "raw superglobal echoed".to_string(),
            pack: None,
            matcher: MatchSpec::Pattern {
                pattern: "echo $X".to_string(),
                constraints: vec![("X".to_string(), "^\\$_(GET|POST)\\[".to_string())],
            },
        }])
        .unwrap();
        let hit = run_set("<?php echo $_GET['q'];", &set);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule_id, "WAP-ECHO-GET");
        assert_eq!(hit[0].message, "raw superglobal echoed");

        let miss = run_set("<?php echo $safe;", &set);
        assert!(miss.is_empty(), "{miss:?}");
    }

    #[test]
    fn repeated_metavariables_must_bind_equal_text() {
        let set = RuleSet::compile(&[RuleSpec {
            id: "self-concat".to_string(),
            severity: "note".to_string(),
            summary: String::new(),
            message: "x = x . ...".to_string(),
            pack: None,
            matcher: MatchSpec::Pattern {
                pattern: "$X = $X .".to_string(),
                constraints: Vec::new(),
            },
        }])
        .unwrap();
        assert_eq!(run_set("<?php $a = $a . $b;", &set).len(), 1);
        assert!(run_set("<?php $a = $c . $b;", &set).is_empty());
    }

    #[test]
    fn pattern_gap_spans_arbitrary_text() {
        let set = RuleSet::compile(&[RuleSpec {
            id: "md5-pw".to_string(),
            severity: "warning".to_string(),
            summary: String::new(),
            message: "weak hash over a password".to_string(),
            pack: None,
            matcher: MatchSpec::Pattern {
                pattern: "md5( ... password ... )".to_string(),
                constraints: Vec::new(),
            },
        }])
        .unwrap();
        assert_eq!(
            run_set("<?php $h = md5($salt . $password);", &set).len(),
            1
        );
        assert!(run_set("<?php $h = md5($salt);", &set).is_empty());
    }

    fn pattern_rule(pattern: &str, constraint: &str) -> RuleSet {
        RuleSet::compile(&[RuleSpec {
            id: "pred".to_string(),
            severity: "warning".to_string(),
            summary: String::new(),
            message: "predicate rule matched".to_string(),
            pack: None,
            matcher: MatchSpec::Pattern {
                pattern: pattern.to_string(),
                constraints: vec![("X".to_string(), constraint.to_string())],
            },
        }])
        .unwrap()
    }

    fn run_with(src: &str, set: &RuleSet, facts: &FileFacts<'_>) -> Vec<LintFinding> {
        let cfgs = lower_program(&parse(src).expect("parse"));
        set.run_with_facts("test.php", &cfgs, Some(src), facts)
    }

    #[test]
    fn tainted_predicate_fires_on_superglobals_without_facts() {
        let set = pattern_rule("query_db( $X )", "tainted($X)");
        assert!(set.needs_facts());
        assert_eq!(run_set("<?php query_db($_GET['id']);", &set).len(), 1);
        assert!(run_set("<?php query_db('SELECT 1');", &set).is_empty());
        assert!(run_set("<?php query_db($id);", &set).is_empty());
    }

    #[test]
    fn tainted_predicate_consumes_taint_carrier_facts() {
        let set = pattern_rule("query_db( $X )", "tainted");
        let mut tainted = BTreeSet::new();
        tainted.insert("id".to_string());
        let facts = FileFacts {
            tainted_vars: Some(&tainted),
            values: None,
        };
        assert_eq!(run_with("<?php query_db($id);", &set, &facts).len(), 1);
        assert!(run_with("<?php query_db($other);", &set, &facts).is_empty());
    }

    #[test]
    fn const_predicate_accepts_literals_and_proven_values() {
        let set = pattern_rule("query_db( $X )", "const($X)");
        // literals prove const-ness with no facts at all
        assert_eq!(run_set("<?php query_db('SELECT 1');", &set).len(), 1);
        assert_eq!(run_set("<?php query_db(42);", &set).len(), 1);
        // a bare variable needs the value analysis to prove it
        let src = "<?php $q = 'SELECT 1'; query_db($q);";
        assert!(run_set(src, &set).is_empty());
        let program = parse(src).unwrap();
        let fv = crate::values::analyze_file_values(
            "test.php",
            &program,
            &std::collections::HashMap::new(),
            &BTreeSet::new(),
        );
        let facts = FileFacts {
            tainted_vars: None,
            values: Some(&fv),
        };
        assert_eq!(run_with(src, &set, &facts).len(), 1);
        // and stays silent when the value is unknown
        assert!(run_with("<?php $q = f(); query_db($q);", &set, &facts).is_empty());
    }

    #[test]
    fn not_const_predicate_negates() {
        let set = pattern_rule("query_db( $X )", "!const($X)");
        assert!(run_set("<?php query_db('SELECT 1');", &set).is_empty());
        assert_eq!(run_set("<?php query_db($q);", &set).len(), 1);
    }

    #[test]
    fn matches_value_predicate_resolves_through_values() {
        let set = pattern_rule("query_db( $X )", "matches-value($X, ^SELECT )");
        assert_eq!(run_set("<?php query_db('SELECT 1');", &set).len(), 1);
        assert!(run_set("<?php query_db('DELETE 1');", &set).is_empty());
        let src = "<?php $q = 'SELECT ' . $cols; query_db($q);";
        let program = parse(src).unwrap();
        let fv = crate::values::analyze_file_values(
            "test.php",
            &program,
            &std::collections::HashMap::new(),
            &BTreeSet::new(),
        );
        let facts = FileFacts {
            tainted_vars: None,
            values: Some(&fv),
        };
        // prefix-only value: not exactly known, so no match
        assert!(run_with(src, &set, &facts).is_empty());
        let src = "<?php $q = 'SELECT 1'; query_db($q);";
        let program = parse(src).unwrap();
        let fv = crate::values::analyze_file_values(
            "test.php",
            &program,
            &std::collections::HashMap::new(),
            &BTreeSet::new(),
        );
        let facts = FileFacts {
            tainted_vars: None,
            values: Some(&fv),
        };
        assert_eq!(run_with(src, &set, &facts).len(), 1);
    }

    #[test]
    fn predicate_chain_requires_every_term() {
        let set = pattern_rule("echo $X", "tainted($X) and !const($X)");
        assert!(set.needs_facts());
        assert_eq!(run_set("<?php echo $_GET['q'];", &set).len(), 1);
        assert!(run_set("<?php echo $x;", &set).is_empty());
    }

    #[test]
    fn unrecognized_terms_stay_regex_constraints() {
        // looks nothing like a predicate: plain regex, historical path
        let set = pattern_rule("echo $X", "^\\$_(GET|POST)\\[");
        assert!(!set.needs_facts());
        assert_eq!(run_set("<?php echo $_GET['q'];", &set).len(), 1);
        // one unrecognized term keeps the WHOLE expression a regex
        let set = pattern_rule("echo $X", "GET and POST");
        assert!(!set.needs_facts());
        assert!(run_set("<?php echo $_GET['q'];", &set).is_empty());
    }

    #[test]
    fn predicate_naming_wrong_metavariable_is_rejected() {
        let err = RuleSet::compile(&[RuleSpec {
            id: "typo".to_string(),
            severity: "warning".to_string(),
            summary: String::new(),
            message: String::new(),
            pack: None,
            matcher: MatchSpec::Pattern {
                pattern: "echo $X".to_string(),
                constraints: vec![("X".to_string(), "tainted($Y)".to_string())],
            },
        }])
        .unwrap_err();
        assert!(err.message.contains("$X"), "{err}");
    }

    #[test]
    fn compile_rejects_bad_patterns() {
        let bad = RuleSpec {
            id: "bad".to_string(),
            severity: "warning".to_string(),
            summary: String::new(),
            message: String::new(),
            pack: None,
            matcher: MatchSpec::CallWithArg {
                function: "f".to_string(),
                argument: "[unclosed".to_string(),
            },
        };
        let err = RuleSet::compile(&[bad]).unwrap_err();
        assert_eq!(err.rule, "bad");
        assert!(err.message.contains("unclosed"));

        let unbound = RuleSpec {
            id: "unbound".to_string(),
            severity: "warning".to_string(),
            summary: String::new(),
            message: String::new(),
            pack: None,
            matcher: MatchSpec::Pattern {
                pattern: "echo $X".to_string(),
                constraints: vec![("Y".to_string(), ".".to_string())],
            },
        };
        assert!(RuleSet::compile(&[unbound]).is_err());
    }

    #[test]
    fn rule_table_is_sorted_and_deduped() {
        let mut specs = builtin_specs(Vec::new());
        specs.push(RuleSpec::legacy("zzz", "forbid_call", "f", "warning", "m"));
        specs.push(RuleSpec::legacy("zzz", "forbid_call", "f", "warning", "m"));
        let table = RuleSet::compile(&specs).unwrap().rule_table();
        assert_eq!(table.len(), 6);
        let ids: Vec<&str> = table.iter().map(|r| r.id.as_str()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(table.last().unwrap().id, "WAP-ZZZ");
    }

    #[test]
    fn builtin_table_matches_the_historical_rules() {
        let table = RuleSet::builtin(Vec::new()).rule_table();
        assert_eq!(table, crate::lint::builtin_rules());
    }

    #[test]
    fn regex_lite_semantics() {
        let m = |p: &str, t: &str| Pattern::compile(p).unwrap().search(t);
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
        assert!(m("^ab", "abc"));
        assert!(!m("^bc", "abc"));
        assert!(m("bc$", "abc"));
        assert!(!m("ab$", "abc"));
        assert!(m("a.c", "abc"));
        assert!(m("a[bx]c", "abc"));
        assert!(!m("a[^bx]c", "abc"));
        assert!(m("a[0-9]+c", "a123c"));
        assert!(!m("a[0-9]+c", "ac"));
        assert!(m("a[0-9]*c", "ac"));
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
        assert!(m("cat|dog", "hotdog"));
        assert!(m("(ab)+c", "ababc"));
        assert!(m("\\$\\w+", "echo $id"));
        assert!(m("\\d\\d", "a42b"));
        assert!(!m("\\s", "abc"));
        assert!(Pattern::compile("a(b").is_err());
        assert!(Pattern::compile("*a").is_err());
        assert!(Pattern::compile("a\\").is_err());
    }

    #[test]
    fn unknown_severity_defaults_to_warning() {
        let set = RuleSet::compile(&[RuleSpec::legacy("x", "forbid_call", "f", "bogus", "m")])
            .unwrap();
        assert_eq!(set.rules()[0].severity, Severity::Warning);
    }
}
