//! Extensible lint rule engine over lowered control-flow graphs.
//!
//! Built-in rules:
//!
//! * [`RULE_UNGUARDED_SINK`] — a call to a catalog sink whose argument
//!   variables have no dominating validation guard.
//! * [`RULE_UNREACHABLE`] — statements control flow can never reach
//!   (typically code after `exit`/`return`/`throw`).
//! * [`RULE_ASSIGN_IN_COND`] — an assignment used as a branch condition,
//!   the classic `if ($x = f())` typo.
//! * [`RULE_TAINTED_SINK`] — a taint-confirmed sink (from the engine's
//!   candidate list) with no dominating guard on the tainted variables.
//!
//! Custom rules ride in the same weapons configuration files the paper
//! uses to extend detection "without programming": a weapon may forbid a
//! function outright or require every call to it to be guard-dominated
//! ([`CustomRuleKind`]).
//!
//! All entry points return findings sorted by `(file, line, span, rule,
//! message)` so output is bit-identical regardless of traversal or
//! scheduling order.

use crate::graph::{Cfg, FileCfgs};
use crate::guard::GuardAnalysis;
use wap_php::Span;
use wap_php::Symbol;

/// Rule id: call to a known sink without any dominating guard.
pub const RULE_UNGUARDED_SINK: &str = "WAP-LINT-UNGUARDED-SINK";
/// Rule id: statement unreachable from function entry.
pub const RULE_UNREACHABLE: &str = "WAP-LINT-UNREACHABLE";
/// Rule id: assignment used as a branch condition.
pub const RULE_ASSIGN_IN_COND: &str = "WAP-LINT-ASSIGN-IN-COND";
/// Rule id: tainted data reaches a sink with no dominating guard.
pub const RULE_TAINTED_SINK: &str = "WAP-LINT-TAINTED-SINK";

/// Finding severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Must fix: almost certainly a vulnerability or logic error.
    Error,
    /// Should fix: a risky pattern.
    Warning,
    /// Informational.
    Note,
}

impl Severity {
    /// Lowercase name, also the SARIF `level` value.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }

    /// Parses a severity name (case-insensitive); `None` when unknown.
    pub fn parse(s: &str) -> Option<Severity> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Severity::Error),
            "warning" | "warn" => Some(Severity::Warning),
            "note" | "info" => Some(Severity::Note),
            _ => None,
        }
    }
}

/// Metadata describing one lint rule, rendered into report rule tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintRule {
    /// Stable rule id (`WAP-LINT-...`).
    pub id: String,
    /// One-line description of what the rule reports.
    pub summary: String,
    /// Severity of the rule's findings.
    pub severity: Severity,
}

/// One lint finding, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Id of the rule that fired.
    pub rule_id: String,
    /// Finding severity (copied from the rule).
    pub severity: Severity,
    /// File the finding is in.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Source span of the offending code.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

/// A weapon-declared custom lint rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomRule {
    /// Rule id (normalized to the `WAP-` prefix).
    pub id: String,
    /// Finding severity.
    pub severity: Severity,
    /// Message template; the offending call name is appended.
    pub message: String,
    /// What the rule checks.
    pub kind: CustomRuleKind,
}

impl CustomRule {
    /// This rule's metadata entry for report rule tables.
    pub fn as_rule(&self) -> LintRule {
        LintRule {
            id: self.id.clone(),
            summary: self.message.clone(),
            severity: self.severity,
        }
    }
}

/// The checks a custom rule can declare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CustomRuleKind {
    /// Flag every call to `function`.
    ForbidCall {
        /// Forbidden function name (case-insensitive).
        function: String,
    },
    /// Flag calls to `function` whose argument variables lack a
    /// dominating guard.
    RequireGuard {
        /// Guarded function name (case-insensitive).
        function: String,
    },
}

/// Configuration for one [`lint_file`] run.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Sink function/method names from the catalog, checked by the
    /// unguarded-sink rule.
    pub sink_functions: Vec<String>,
    /// Weapon-declared custom rules.
    pub custom: Vec<CustomRule>,
}

/// A taint-confirmed sink occurrence, as reported by the taint engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkEvent {
    /// Span of the sink call/construct.
    pub span: Span,
    /// 1-based line of the sink.
    pub line: u32,
    /// Vulnerability class name (e.g. `sqli`).
    pub class: String,
    /// Tainted variables flowing into the sink (without `$`).
    pub vars: Vec<Symbol>,
}

/// Metadata for the four built-in rules, in stable id order.
pub fn builtin_rules() -> Vec<LintRule> {
    vec![
        LintRule {
            id: RULE_ASSIGN_IN_COND.to_string(),
            summary: "assignment used as a branch condition".to_string(),
            severity: Severity::Warning,
        },
        LintRule {
            id: RULE_TAINTED_SINK.to_string(),
            summary: "tainted data reaches a sink without a dominating validation guard"
                .to_string(),
            severity: Severity::Error,
        },
        LintRule {
            id: RULE_UNGUARDED_SINK.to_string(),
            summary: "sink call not dominated by any validation guard on its arguments"
                .to_string(),
            severity: Severity::Warning,
        },
        LintRule {
            id: RULE_UNREACHABLE.to_string(),
            summary: "statement is unreachable".to_string(),
            severity: Severity::Note,
        },
    ]
}

/// Normalizes a weapon-declared rule id to the `WAP-` namespace.
pub fn normalize_rule_id(id: &str) -> String {
    let upper = id.trim().to_ascii_uppercase().replace([' ', '_'], "-");
    if upper.starts_with("WAP-") {
        upper
    } else {
        format!("WAP-{upper}")
    }
}

/// Runs the CFG-local rules (everything except the taint rule) over one
/// file's graphs. Findings are sorted and deterministic.
pub fn lint_file(file: &str, cfgs: &FileCfgs, config: &LintConfig) -> Vec<LintFinding> {
    let mut out: Vec<LintFinding> = Vec::new();
    for cfg in &cfgs.cfgs {
        lint_cfg(file, cfg, config, &mut out);
    }
    sort_findings(&mut out);
    out
}

fn lint_cfg(file: &str, cfg: &Cfg, config: &LintConfig, out: &mut Vec<LintFinding>) {
    let reachable = cfg.reachable();

    // unreachable code: one finding per dead block that has statements
    for (b, block) in cfg.blocks.iter().enumerate() {
        if reachable[b] || block.nodes.is_empty() {
            continue;
        }
        let first = &block.nodes[0];
        out.push(LintFinding {
            rule_id: RULE_UNREACHABLE.to_string(),
            severity: Severity::Note,
            file: file.to_string(),
            line: first.line,
            span: first.span,
            message: match &cfg.name {
                Some(n) => format!("statement in function '{n}' is unreachable"),
                None => "statement is unreachable".to_string(),
            },
        });
    }

    // assignment-in-condition
    for block in &cfg.blocks {
        for node in &block.nodes {
            if node.is_cond && node.assign_in_cond {
                out.push(LintFinding {
                    rule_id: RULE_ASSIGN_IN_COND.to_string(),
                    severity: Severity::Warning,
                    file: file.to_string(),
                    line: node.line,
                    span: node.span,
                    message: "assignment used as a branch condition (did you mean '=='?)"
                        .to_string(),
                });
            }
        }
    }

    // guard-dependent rules share one analysis per graph
    let needs_guards = !config.sink_functions.is_empty()
        || config
            .custom
            .iter()
            .any(|r| matches!(r.kind, CustomRuleKind::RequireGuard { .. }));
    let analysis = if needs_guards || !config.custom.is_empty() {
        Some(GuardAnalysis::new(cfg))
    } else {
        None
    };
    let Some(analysis) = analysis else {
        return;
    };

    for (b, block) in cfg.blocks.iter().enumerate() {
        if !reachable[b] {
            continue; // dead sinks are already reported as unreachable
        }
        for (i, node) in block.nodes.iter().enumerate() {
            for call in &node.calls {
                let is_sink = config
                    .sink_functions
                    .iter()
                    .any(|s| s.eq_ignore_ascii_case(call.name.as_str()));
                if is_sink && !call.arg_vars.is_empty() {
                    let guards = analysis.guards_at(b, i, &call.arg_vars);
                    if guards.is_empty() {
                        out.push(LintFinding {
                            rule_id: RULE_UNGUARDED_SINK.to_string(),
                            severity: Severity::Warning,
                            file: file.to_string(),
                            line: call.line,
                            span: call.span,
                            message: format!(
                                "call to sink '{}' is not dominated by a validation guard on {}",
                                call.name,
                                var_list(&call.arg_vars)
                            ),
                        });
                    }
                }
                for rule in &config.custom {
                    match &rule.kind {
                        CustomRuleKind::ForbidCall { function }
                            if function.eq_ignore_ascii_case(call.name.as_str()) =>
                        {
                            out.push(LintFinding {
                                rule_id: rule.id.clone(),
                                severity: rule.severity,
                                file: file.to_string(),
                                line: call.line,
                                span: call.span,
                                message: format!("{} (call to '{}')", rule.message, call.name),
                            });
                        }
                        CustomRuleKind::RequireGuard { function }
                            if function.eq_ignore_ascii_case(call.name.as_str())
                                && !call.arg_vars.is_empty() =>
                        {
                            let guards = analysis.guards_at(b, i, &call.arg_vars);
                            if guards.is_empty() {
                                out.push(LintFinding {
                                    rule_id: rule.id.clone(),
                                    severity: rule.severity,
                                    file: file.to_string(),
                                    line: call.line,
                                    span: call.span,
                                    message: format!(
                                        "{} (unguarded call to '{}')",
                                        rule.message, call.name
                                    ),
                                });
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Runs the tainted-sink rule: each taint-engine sink event is checked
/// for a dominating guard on its tainted variables; guarded events are
/// suppressed. Findings are sorted and deterministic.
pub fn lint_tainted_sinks(file: &str, cfgs: &FileCfgs, sinks: &[SinkEvent]) -> Vec<LintFinding> {
    let mut out: Vec<LintFinding> = Vec::new();
    for s in sinks {
        let guards = cfgs.dominating_guards(s.span, &s.vars);
        if !guards.is_empty() {
            continue; // validated: the committee's false-positive case
        }
        out.push(LintFinding {
            rule_id: RULE_TAINTED_SINK.to_string(),
            severity: Severity::Error,
            file: file.to_string(),
            line: s.line,
            span: s.span,
            message: format!(
                "tainted data reaches {} sink without a dominating guard on {}",
                s.class,
                var_list(&s.vars)
            ),
        });
    }
    sort_findings(&mut out);
    out
}

/// Sorts findings into the stable output order shared by all renderers.
/// Sorts findings into the canonical `(file, line, span, rule, message)`
/// order every lint entry point guarantees. Public so pipelines merging
/// findings from several passes can restore the invariant.
pub fn sort_findings(findings: &mut [LintFinding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.span, &a.rule_id, &a.message).cmp(&(
            &b.file,
            b.line,
            b.span,
            &b.rule_id,
            &b.message,
        ))
    });
}

fn var_list(vars: &[Symbol]) -> String {
    if vars.is_empty() {
        return "its arguments".to_string();
    }
    vars.iter()
        .map(|v| format!("${v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::lower_program;
    use wap_php::parse;

    fn lint(src: &str, config: &LintConfig) -> Vec<LintFinding> {
        let cfgs = lower_program(&parse(src).expect("parse"));
        lint_file("test.php", &cfgs, config)
    }

    fn sink_config() -> LintConfig {
        LintConfig {
            sink_functions: vec!["mysql_query".to_string()],
            custom: Vec::new(),
        }
    }

    #[test]
    fn unguarded_sink_is_flagged() {
        let f = lint("<?php $id = $_GET['id']; mysql_query($id);", &sink_config());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, RULE_UNGUARDED_SINK);
        assert_eq!(f[0].severity, Severity::Warning);
        assert!(f[0].message.contains("$id"));
    }

    #[test]
    fn guarded_sink_is_suppressed() {
        let f = lint(
            "<?php $id = $_GET['id']; if (!is_numeric($id)) { exit; } mysql_query($id);",
            &sink_config(),
        );
        assert!(
            f.iter().all(|x| x.rule_id != RULE_UNGUARDED_SINK),
            "dominating guard must suppress the finding: {f:?}"
        );
    }

    #[test]
    fn literal_only_sink_calls_are_ignored() {
        let f = lint("<?php mysql_query('SELECT 1');", &sink_config());
        assert!(f.is_empty());
    }

    #[test]
    fn unreachable_code_is_noted_once_per_region() {
        let f = lint("<?php exit; echo 'a'; echo 'b';", &LintConfig::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, RULE_UNREACHABLE);
        assert_eq!(f[0].severity, Severity::Note);
    }

    #[test]
    fn unreachable_in_function_names_the_function() {
        let f = lint(
            "<?php function g() { return 1; echo 'dead'; }",
            &LintConfig::default(),
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("'g'"));
    }

    #[test]
    fn assignment_in_condition_fires() {
        let f = lint("<?php if ($x = rand()) { echo $x; }", &LintConfig::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, RULE_ASSIGN_IN_COND);
    }

    #[test]
    fn dead_sink_reports_unreachable_not_unguarded() {
        let f = lint("<?php exit; mysql_query($id);", &sink_config());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, RULE_UNREACHABLE);
    }

    #[test]
    fn forbid_call_rule_fires_everywhere() {
        let config = LintConfig {
            sink_functions: Vec::new(),
            custom: vec![CustomRule {
                id: normalize_rule_id("no eval"),
                severity: Severity::Error,
                message: "eval is forbidden by policy".to_string(),
                kind: CustomRuleKind::ForbidCall {
                    function: "eval".to_string(),
                },
            }],
        };
        let f = lint("<?php eval($code);", &config);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, "WAP-NO-EVAL");
        assert_eq!(f[0].severity, Severity::Error);
    }

    #[test]
    fn require_guard_rule_respects_dominating_guard() {
        let config = LintConfig {
            sink_functions: Vec::new(),
            custom: vec![CustomRule {
                id: normalize_rule_id("guard-exec"),
                severity: Severity::Warning,
                message: "exec arguments must be validated".to_string(),
                kind: CustomRuleKind::RequireGuard {
                    function: "exec".to_string(),
                },
            }],
        };
        let unguarded = lint("<?php exec($cmd);", &config);
        assert_eq!(unguarded.len(), 1);
        assert_eq!(unguarded[0].rule_id, "WAP-GUARD-EXEC");

        let guarded = lint(
            "<?php if (!preg_match('/^[a-z]+$/', $cmd)) { exit; } exec($cmd);",
            &config,
        );
        assert!(guarded.is_empty());
    }

    #[test]
    fn tainted_sink_rule_flags_and_suppresses() {
        let src = "<?php $id = $_GET['id']; mysql_query($id);";
        let cfgs = lower_program(&parse(src).expect("parse"));
        let span = cfgs.find_call("mysql_query").unwrap();
        let events = vec![SinkEvent {
            span,
            line: span.line(),
            class: "sqli".to_string(),
            vars: vec!["id".into()],
        }];
        let f = lint_tainted_sinks("t.php", &cfgs, &events);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule_id, RULE_TAINTED_SINK);
        assert_eq!(f[0].severity, Severity::Error);

        let src2 = "<?php $id = $_GET['id']; if (!is_numeric($id)) { exit; } mysql_query($id);";
        let cfgs2 = lower_program(&parse(src2).expect("parse"));
        let span2 = cfgs2.find_call("mysql_query").unwrap();
        let events2 = vec![SinkEvent {
            span: span2,
            line: span2.line(),
            class: "sqli".to_string(),
            vars: vec!["id".into()],
        }];
        assert!(lint_tainted_sinks("t.php", &cfgs2, &events2).is_empty());
    }

    #[test]
    fn findings_are_sorted_and_rule_ids_normalized() {
        let f = lint(
            "<?php if ($x = rand()) { mysql_query($x); } mysql_query($y);",
            &sink_config(),
        );
        let sorted = {
            let mut s = f.clone();
            sort_findings(&mut s);
            s
        };
        assert_eq!(f, sorted);
        assert_eq!(normalize_rule_id("wap-x"), "WAP-X");
        assert_eq!(normalize_rule_id("my rule"), "WAP-MY-RULE");
    }

    #[test]
    fn builtin_rules_are_stable_and_prefixed() {
        let rules = builtin_rules();
        assert_eq!(rules.len(), 4);
        assert!(rules.iter().all(|r| r.id.starts_with("WAP-LINT-")));
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id.as_str()).collect();
        let sorted = {
            let mut s = ids.clone();
            s.sort();
            s
        };
        assert_eq!(ids, sorted, "rule table is in stable id order");
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn severity_parse_round_trips() {
        for s in [Severity::Error, Severity::Warning, Severity::Note] {
            assert_eq!(Severity::parse(s.as_str()), Some(s));
        }
        assert_eq!(Severity::parse("INFO"), Some(Severity::Note));
        assert_eq!(Severity::parse("bogus"), None);
    }
}
