//! Lint data model: severities, rule metadata, findings, sink events.
//!
//! The execution engine lives in [`crate::rules`]: every rule — the four
//! builtins below, weapon-declared rules, and installed pack rules — is
//! declared as a [`crate::rules::RuleSpec`] and compiled into a
//! [`crate::rules::RuleSet`], which is the single path from declaration
//! to finding.
//!
//! Built-in rules:
//!
//! * [`RULE_UNGUARDED_SINK`] — a call to a catalog sink whose argument
//!   variables have no dominating validation guard.
//! * [`RULE_UNREACHABLE`] — statements control flow can never reach
//!   (typically code after `exit`/`return`/`throw`).
//! * [`RULE_ASSIGN_IN_COND`] — an assignment used as a branch condition,
//!   the classic `if ($x = f())` typo.
//! * [`RULE_TAINTED_SINK`] — a taint-confirmed sink (from the engine's
//!   candidate list) with no dominating guard on the tainted variables.
//! * [`RULE_UNRESOLVED_INCLUDE`] — a dynamic include whose path no
//!   analysis resolved, so its target is a coverage gap (synthesized by
//!   the pipeline's lint pass, not by the rule engine; suppressed when
//!   the `--values` value analysis resolves the path).
//!
//! All rule-set entry points return findings sorted by `(file, line,
//! span, rule, message)` so output is bit-identical regardless of
//! traversal or scheduling order.

use wap_php::Span;
use wap_php::Symbol;

/// Rule id: call to a known sink without any dominating guard.
pub const RULE_UNGUARDED_SINK: &str = "WAP-LINT-UNGUARDED-SINK";
/// Rule id: statement unreachable from function entry.
pub const RULE_UNREACHABLE: &str = "WAP-LINT-UNREACHABLE";
/// Rule id: assignment used as a branch condition.
pub const RULE_ASSIGN_IN_COND: &str = "WAP-LINT-ASSIGN-IN-COND";
/// Rule id: tainted data reaches a sink with no dominating guard.
pub const RULE_TAINTED_SINK: &str = "WAP-LINT-TAINTED-SINK";
/// Rule id: dynamic include whose path the analysis could not resolve —
/// a visible coverage gap (suppressed when the value analysis resolves
/// the path to scan-set files).
pub const RULE_UNRESOLVED_INCLUDE: &str = "WAP-LINT-UNRESOLVED-INCLUDE";

/// Finding severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Must fix: almost certainly a vulnerability or logic error.
    Error,
    /// Should fix: a risky pattern.
    Warning,
    /// Informational.
    Note,
}

impl Severity {
    /// Lowercase name, also the SARIF `level` value.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }

    /// Parses a severity name (case-insensitive); `None` when unknown.
    pub fn parse(s: &str) -> Option<Severity> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Severity::Error),
            "warning" | "warn" => Some(Severity::Warning),
            "note" | "info" => Some(Severity::Note),
            _ => None,
        }
    }
}

/// Metadata describing one lint rule, rendered into report rule tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintRule {
    /// Stable rule id (`WAP-LINT-...`).
    pub id: String,
    /// One-line description of what the rule reports.
    pub summary: String,
    /// Severity of the rule's findings.
    pub severity: Severity,
    /// Rule pack the rule came from; `None` for builtin and
    /// weapon-declared rules.
    pub pack: Option<String>,
}

/// One lint finding, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Id of the rule that fired.
    pub rule_id: String,
    /// Finding severity (copied from the rule).
    pub severity: Severity,
    /// File the finding is in.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Source span of the offending code.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

/// A taint-confirmed sink occurrence, as reported by the taint engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkEvent {
    /// Span of the sink call/construct.
    pub span: Span,
    /// 1-based line of the sink.
    pub line: u32,
    /// Vulnerability class name (e.g. `sqli`).
    pub class: String,
    /// Tainted variables flowing into the sink (without `$`).
    pub vars: Vec<Symbol>,
}

/// Metadata for the four built-in rules, in stable id order.
pub fn builtin_rules() -> Vec<LintRule> {
    vec![
        LintRule {
            id: RULE_ASSIGN_IN_COND.to_string(),
            summary: "assignment used as a branch condition".to_string(),
            severity: Severity::Warning,
            pack: None,
        },
        LintRule {
            id: RULE_TAINTED_SINK.to_string(),
            summary: "tainted data reaches a sink without a dominating validation guard"
                .to_string(),
            severity: Severity::Error,
            pack: None,
        },
        LintRule {
            id: RULE_UNGUARDED_SINK.to_string(),
            summary: "sink call not dominated by any validation guard on its arguments"
                .to_string(),
            severity: Severity::Warning,
            pack: None,
        },
        LintRule {
            id: RULE_UNREACHABLE.to_string(),
            summary: "statement is unreachable".to_string(),
            severity: Severity::Note,
            pack: None,
        },
        LintRule {
            id: RULE_UNRESOLVED_INCLUDE.to_string(),
            summary: "dynamic include path could not be resolved (analysis coverage gap)"
                .to_string(),
            severity: Severity::Note,
            pack: None,
        },
    ]
}

/// Normalizes a declared rule id to the `WAP-` namespace.
pub fn normalize_rule_id(id: &str) -> String {
    let upper = id.trim().to_ascii_uppercase().replace([' ', '_'], "-");
    if upper.starts_with("WAP-") {
        upper
    } else {
        format!("WAP-{upper}")
    }
}

/// Sorts findings into the canonical `(file, line, span, rule, message)`
/// order every lint entry point guarantees. Public so pipelines merging
/// findings from several passes can restore the invariant.
pub fn sort_findings(findings: &mut [LintFinding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.span, &a.rule_id, &a.message).cmp(&(
            &b.file,
            b.line,
            b.span,
            &b.rule_id,
            &b.message,
        ))
    });
}

pub(crate) fn var_list(vars: &[Symbol]) -> String {
    if vars.is_empty() {
        return "its arguments".to_string();
    }
    vars.iter()
        .map(|v| format!("${v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_normalized() {
        assert_eq!(normalize_rule_id("wap-x"), "WAP-X");
        assert_eq!(normalize_rule_id("my rule"), "WAP-MY-RULE");
        assert_eq!(normalize_rule_id("  wp_unprepared_query "), "WAP-WP-UNPREPARED-QUERY");
    }

    #[test]
    fn builtin_rules_are_stable_and_prefixed() {
        let rules = builtin_rules();
        assert_eq!(rules.len(), 5);
        assert!(rules.iter().all(|r| r.id.starts_with("WAP-LINT-")));
        assert!(rules.iter().all(|r| r.pack.is_none()));
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id.as_str()).collect();
        let sorted = {
            let mut s = ids.clone();
            s.sort();
            s
        };
        assert_eq!(ids, sorted, "rule table is in stable id order");
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn severity_parse_round_trips() {
        for s in [Severity::Error, Severity::Warning, Severity::Note] {
            assert_eq!(Severity::parse(s.as_str()), Some(s));
        }
        assert_eq!(Severity::parse("INFO"), Some(Severity::Note));
        assert_eq!(Severity::parse("bogus"), None);
    }
}
