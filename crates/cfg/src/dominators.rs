//! Dominator trees via the iterative Cooper–Harvey–Kennedy algorithm.
//!
//! A block `A` dominates `B` when every path from the entry to `B` passes
//! through `A`. The guard analysis uses this to prove that a validation
//! branch was *necessarily* taken before a sink executes.
//!
//! The algorithm ("A Simple, Fast Dominance Algorithm", Cooper, Harvey &
//! Kennedy, 2001) iterates `idom[b] = intersect(processed preds of b)`
//! over a reverse-postorder walk until fixpoint. On the small per-function
//! graphs this crate produces it converges in one or two passes and beats
//! the asymptotically better Lengauer–Tarjan in both code size and
//! constant factors.

use crate::graph::{BlockId, Cfg};

/// The dominator tree of one [`Cfg`].
///
/// Unreachable blocks have no immediate dominator and are reported as
/// dominated by nothing (and dominating nothing but themselves).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator of `b`; `idom[entry] == entry`;
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Position of each block in the reverse postorder, used by the
    /// intersection walk. `usize::MAX` for unreachable blocks.
    rpo_pos: Vec<usize>,
}

impl Dominators {
    /// Computes the dominator tree of `cfg`.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.blocks.len();
        let rpo = reverse_postorder(cfg);
        let mut rpo_pos = vec![usize::MAX; n];
        for (pos, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = pos;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = cfg.entry();
        idom[entry] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // pick the first predecessor that already has an idom
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.blocks[b].preds {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        Dominators { idom, rpo_pos }
    }

    /// Immediate dominator of `b` (`b` itself for the entry, `None` for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexively: every block dominates
    /// itself). Unreachable blocks are dominated only by themselves.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        let mut cur = b;
        loop {
            match self.idom(cur) {
                Some(d) if d == cur => return false, // reached the entry
                Some(d) if d == a => return true,
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

/// Reverse postorder over reachable blocks, entry first.
fn reverse_postorder(cfg: &Cfg) -> Vec<BlockId> {
    let n = cfg.blocks.len();
    let mut visited = vec![false; n];
    let mut post: Vec<BlockId> = Vec::with_capacity(n);
    // iterative DFS with an explicit edge cursor to get a true postorder
    let mut stack: Vec<(BlockId, usize)> = vec![(cfg.entry(), 0)];
    visited[cfg.entry()] = true;
    while let Some((b, i)) = stack.pop() {
        if let Some(e) = cfg.blocks[b].succs.get(i) {
            stack.push((b, i + 1));
            if !visited[e.to] {
                visited[e.to] = true;
                stack.push((e.to, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// The CHK two-finger intersection: walks both blocks up the (partial)
/// dominator tree until they meet.
fn intersect(
    idom: &[Option<BlockId>],
    rpo_pos: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_pos[a] > rpo_pos[b] {
            a = idom[a].expect("intersect walks processed blocks only");
        }
        while rpo_pos[b] > rpo_pos[a] {
            b = idom[b].expect("intersect walks processed blocks only");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::lower_program;
    use wap_php::parse;

    fn doms(src: &str) -> (crate::graph::FileCfgs, Dominators) {
        let f = lower_program(&parse(src).expect("parse"));
        let d = Dominators::compute(&f.cfgs[0]);
        (f, d)
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let (f, d) = doms("<?php if ($x) { echo 1; } else { echo 2; } echo 3;");
        let top = &f.cfgs[0];
        for (b, _) in top.blocks.iter().enumerate() {
            if top.reachable()[b] {
                assert!(d.dominates(top.entry(), b), "entry must dominate {b}");
            }
        }
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let (f, d) = doms("<?php if ($x) { echo 1; } else { echo 2; } echo 3;");
        let top = &f.cfgs[0];
        // find the join block: holds the `echo 3` node and has 2+ preds
        let join = top
            .blocks
            .iter()
            .enumerate()
            .find(|(_, b)| b.preds.len() >= 2 && !b.nodes.is_empty())
            .map(|(i, _)| i)
            .expect("join block");
        for (arm, block) in top.blocks.iter().enumerate() {
            if arm != join && arm != top.entry() && !block.nodes.is_empty() {
                assert!(!d.dominates(arm, join), "arm {arm} must not dominate join");
            }
        }
        assert!(d.dominates(top.entry(), join));
    }

    #[test]
    fn guard_continuation_is_dominated_by_guard_target() {
        // `if (!g) exit;` — the continuation is dominated by the false-edge
        // target (which *is* the continuation), the crux of guard queries
        let (f, d) = doms("<?php if (!is_numeric($id)) { exit; } mysql_query($id);");
        let top = &f.cfgs[0];
        let (sink_block, _) = top
            .locate(f.find_call("mysql_query").expect("call"))
            .expect("sink");
        // the guard edge target must dominate the sink block
        let mut guarded_target = None;
        for b in &top.blocks {
            for e in &b.succs {
                if !e.guards.is_empty() {
                    guarded_target = Some(e.to);
                }
            }
        }
        let t = guarded_target.expect("guard edge");
        assert!(d.dominates(t, sink_block));
    }

    #[test]
    fn loop_head_dominates_body() {
        let (f, d) = doms("<?php while ($x) { echo $x; } echo 'after';");
        let top = &f.cfgs[0];
        // the block with a back edge into it is the head
        let head = top
            .blocks
            .iter()
            .enumerate()
            .find(|(i, b)| b.preds.iter().any(|&p| p > *i))
            .map(|(i, _)| i)
            .expect("loop head");
        for (b, block) in top.blocks.iter().enumerate() {
            if block.preds.contains(&head) {
                assert!(d.dominates(head, b));
            }
        }
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let (f, d) = doms("<?php exit; echo 'dead';");
        let top = &f.cfgs[0];
        let reach = top.reachable();
        for (b, _) in top.blocks.iter().enumerate() {
            if !reach[b] {
                assert_eq!(d.idom(b), None);
                assert!(!d.dominates(top.entry(), b));
                assert!(d.dominates(b, b), "reflexive even when unreachable");
            }
        }
    }
}
