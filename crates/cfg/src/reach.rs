//! Reaching definitions for simple variables.
//!
//! A classic forward gen/kill bitset dataflow: every assignment, `++`,
//! `foreach` binding, catch binding, or parameter is a [`DefSite`]; a def
//! of `$x` kills every other def of `$x`. The fixpoint gives, per block,
//! the set of defs that may reach its entry; [`ReachingDefs::defs_reaching`]
//! then replays the block's own nodes to answer position-precise queries
//! ("which defs of `$id` reach this sink call?").
//!
//! The guard analysis uses two facts from here: whether a variable is
//! redefined between a guard edge and a sink, and whether *every* def
//! reaching a sink is itself sanitizing (an `(int)` cast or `intval`).

use crate::graph::{BlockId, Cfg};
use wap_php::Symbol;

/// One definition site of a simple variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefSite {
    /// Block containing the definition.
    pub block: BlockId,
    /// Node index within the block.
    pub node: usize,
    /// Defined variable (without `$`).
    pub var: Symbol,
    /// The validator name when the def is itself sanitizing
    /// (`cast_int`, `intval`, ...); `None` for ordinary assignments.
    pub validator: Option<Symbol>,
}

impl DefSite {
    /// Whether this definition sanitizes the variable by construction.
    pub fn is_guard(&self) -> bool {
        self.validator.is_some()
    }
}

/// The reaching-definitions solution for one [`Cfg`].
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    defs: Vec<DefSite>,
    /// Bitset over `defs` per block: defs that may reach the block entry.
    in_sets: Vec<BitSet>,
}

impl ReachingDefs {
    /// Runs the dataflow to fixpoint over `cfg`.
    pub fn compute(cfg: &Cfg) -> ReachingDefs {
        // enumerate def sites in (block, node, decl-order) order so ids
        // are deterministic
        let mut defs: Vec<DefSite> = Vec::new();
        for (b, block) in cfg.blocks.iter().enumerate() {
            for (i, node) in block.nodes.iter().enumerate() {
                for var in &node.defs {
                    let validator = node
                        .guard_defs
                        .iter()
                        .find(|(v, _)| v == var)
                        .map(|&(_, g)| g);
                    defs.push(DefSite {
                        block: b,
                        node: i,
                        var: *var,
                        validator,
                    });
                }
            }
        }
        let nd = defs.len();
        let nb = cfg.blocks.len();

        // per-block gen/kill: replay nodes in order so later defs of the
        // same variable shadow earlier ones within the block
        let mut gen_sets = vec![BitSet::new(nd); nb];
        let mut kill_sets = vec![BitSet::new(nd); nb];
        for b in 0..nb {
            for (d, def) in defs.iter().enumerate() {
                if def.block != b {
                    continue;
                }
                // kill every other def of the same variable
                for (other, odef) in defs.iter().enumerate() {
                    if other != d && odef.var == def.var {
                        kill_sets[b].insert(other);
                        gen_sets[b].remove(other);
                    }
                }
                gen_sets[b].insert(d);
            }
        }

        let mut in_sets = vec![BitSet::new(nd); nb];
        let mut out_sets: Vec<BitSet> = (0..nb)
            .map(|b| {
                let mut o = in_sets[b].clone();
                o.subtract(&kill_sets[b]);
                o.union(&gen_sets[b]);
                o
            })
            .collect();

        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                let mut inb = BitSet::new(nd);
                for &p in &cfg.blocks[b].preds {
                    inb.union(&out_sets[p]);
                }
                if inb != in_sets[b] {
                    in_sets[b] = inb.clone();
                    let mut o = inb;
                    o.subtract(&kill_sets[b]);
                    o.union(&gen_sets[b]);
                    if o != out_sets[b] {
                        out_sets[b] = o;
                    }
                    changed = true;
                }
            }
        }

        ReachingDefs { defs, in_sets }
    }

    /// All definition sites, in deterministic (block, node) order.
    pub fn defs(&self) -> &[DefSite] {
        &self.defs
    }

    /// Definitions of `var` that may reach the *start* of node
    /// `(block, node)` — block-entry facts replayed through the block's
    /// earlier nodes.
    pub fn defs_reaching(&self, cfg: &Cfg, block: BlockId, node: usize, var: Symbol) -> Vec<&DefSite> {
        let mut live: Vec<usize> = self
            .in_sets
            .get(block)
            .map(|s| {
                (0..self.defs.len())
                    .filter(|&d| s.contains(d) && self.defs[d].var == var)
                    .collect()
            })
            .unwrap_or_default();
        // replay nodes before `node` in this block
        for (i, n) in cfg.blocks[block].nodes.iter().enumerate() {
            if i >= node {
                break;
            }
            if n.defs.contains(&var) {
                live.clear();
                // the last def of `var` in this node wins
                if let Some(d) = self
                    .defs
                    .iter()
                    .rposition(|def| def.block == block && def.node == i && def.var == var)
                {
                    live.push(d);
                }
            }
        }
        live.into_iter().map(|d| &self.defs[d]).collect()
    }
}

/// A small growable bitset over `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> BitSet {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn union(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    fn subtract(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::lower_program;
    use wap_php::parse;

    fn solved(src: &str) -> (crate::graph::FileCfgs, ReachingDefs) {
        let f = lower_program(&parse(src).expect("parse"));
        let rd = ReachingDefs::compute(&f.cfgs[0]);
        (f, rd)
    }

    #[test]
    fn later_def_shadows_earlier_in_same_block() {
        let (f, rd) = solved("<?php $x = 1; $x = 2; mysql_query($x);");
        let top = &f.cfgs[0];
        let (b, i) = top.locate(f.find_call("mysql_query").unwrap()).unwrap();
        let defs = rd.defs_reaching(top, b, i, "x".into());
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].node, 1, "only the second assignment reaches");
    }

    #[test]
    fn both_branch_defs_reach_the_join() {
        let (f, rd) = solved("<?php if ($c) { $x = 1; } else { $x = 2; } mysql_query($x);");
        let top = &f.cfgs[0];
        let (b, i) = top.locate(f.find_call("mysql_query").unwrap()).unwrap();
        let defs = rd.defs_reaching(top, b, i, "x".into());
        assert_eq!(defs.len(), 2, "defs from both arms reach the join");
    }

    #[test]
    fn loop_carried_def_reaches_head() {
        let (f, rd) = solved("<?php $i = 0; while ($i) { $i = $i - 1; } mysql_query($i);");
        let top = &f.cfgs[0];
        let (b, i) = top.locate(f.find_call("mysql_query").unwrap()).unwrap();
        let defs = rd.defs_reaching(top, b, i, "i".into());
        assert_eq!(defs.len(), 2, "initial and loop-carried defs both reach");
    }

    #[test]
    fn sanitizing_defs_are_marked() {
        let (f, rd) = solved("<?php $id = (int)$_GET['id']; mysql_query($id);");
        let top = &f.cfgs[0];
        let (b, i) = top.locate(f.find_call("mysql_query").unwrap()).unwrap();
        let defs = rd.defs_reaching(top, b, i, "id".into());
        assert_eq!(defs.len(), 1);
        assert!(defs[0].is_guard());
        assert_eq!(defs[0].validator.map(Symbol::as_str), Some("cast_int"));
    }

    #[test]
    fn mixed_defs_are_not_all_guarding() {
        let (f, rd) =
            solved("<?php if ($c) { $id = intval($_GET['id']); } else { $id = $_GET['id']; } mysql_query($id);");
        let top = &f.cfgs[0];
        let (b, i) = top.locate(f.find_call("mysql_query").unwrap()).unwrap();
        let defs = rd.defs_reaching(top, b, i, "id".into());
        assert_eq!(defs.len(), 2);
        assert!(!defs.iter().all(|d| d.is_guard()));
    }

    #[test]
    fn params_are_entry_defs() {
        let src = "<?php function g($a) { mysql_query($a); }";
        let f = lower_program(&parse(src).expect("parse"));
        let fun = &f.cfgs[1];
        let rd = ReachingDefs::compute(fun);
        let (b, i) = fun.locate(f.find_call("mysql_query").unwrap()).unwrap();
        let defs = rd.defs_reaching(fun, b, i, "a".into());
        assert_eq!(defs.len(), 1);
        assert!(!defs[0].is_guard());
    }
}
