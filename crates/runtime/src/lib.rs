//! # wap-runtime — the shared analysis runtime
//!
//! Every parallel phase of the pipeline (parsing, per-file taint, symptom
//! collection, predictor voting, corpus sweeps) fans out through one
//! [`Runtime`]: a fixed crew of scoped worker threads pulling tasks from a
//! shared injector queue. Tasks are indexed, results are joined **in task
//! order**, and the `jobs = 1` configuration runs the exact same task
//! decomposition inline — so output is bit-identical for any job count by
//! construction.
//!
//! The implementation is dependency-free: `std::thread::scope` lets workers
//! borrow the caller's data, the injector is an atomic cursor (for indexed
//! fan-out) or a mutexed deque (for owned work items), and a panicking task
//! propagates on join like any scoped thread.
//!
//! ```
//! use wap_runtime::Runtime;
//!
//! let rt = Runtime::new(Some(4));
//! let squares = rt.run(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]

pub mod queue;

pub use queue::{JobQueue, JobStatus, SubmitError, Task};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Name of the environment variable overriding the worker count.
pub const JOBS_ENV: &str = "WAP_JOBS";

/// A reusable pool configuration for deterministic parallel fan-out.
///
/// `Runtime` is cheap to construct (it holds only the worker count); threads
/// are scoped to each [`run`](Runtime::run)/[`map`](Runtime::map) call so
/// borrowed data flows into tasks without `'static` bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    jobs: usize,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new(None)
    }
}

impl Runtime {
    /// Creates a runtime with `jobs` workers, defaulting to
    /// [`std::thread::available_parallelism`] when `None` (and to 1 if even
    /// that is unavailable).
    pub fn new(jobs: Option<usize>) -> Self {
        let jobs = jobs.filter(|&j| j > 0).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Runtime { jobs }
    }

    /// A single-worker runtime: tasks run inline, in index order.
    pub fn serial() -> Self {
        Runtime { jobs: 1 }
    }

    /// Creates a runtime honoring the `WAP_JOBS` environment variable when
    /// `jobs` is `None`.
    pub fn from_config(jobs: Option<usize>) -> Self {
        Runtime::new(jobs.or_else(jobs_from_env))
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Splits this runtime's worker budget across `ways` concurrent
    /// job-level consumers, returning the per-consumer runtime.
    ///
    /// A resident service running several scans at once hands each scan a
    /// partitioned runtime so the file-level fan-out of all scans together
    /// never oversubscribes the configured worker count. The result always
    /// keeps at least one worker, and output is bit-identical regardless
    /// of partitioning (the per-task decomposition does not change).
    #[must_use]
    pub fn partition(&self, ways: usize) -> Runtime {
        let ways = ways.max(1);
        Runtime {
            jobs: self.jobs.div_ceil(ways).max(1),
        }
    }

    /// Runs `n` indexed tasks and returns their results in index order.
    ///
    /// Workers claim indices from a shared cursor, so a long task on one
    /// worker never blocks the rest of the queue. With one worker (or one
    /// task) everything runs inline on the caller's thread.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let done = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    done.lock().expect("runtime results lock").extend(local);
                });
            }
        });
        join_in_order(done.into_inner().expect("runtime results lock"), n)
    }

    /// Consumes `items`, runs `f(index, item)` for each, and returns the
    /// results in the items' original order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, it)| f(i, it))
                .collect();
        }
        let injector: Mutex<VecDeque<(usize, I)>> =
            Mutex::new(items.into_iter().enumerate().collect());
        let done = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let task = injector.lock().expect("runtime injector lock").pop_front();
                        let Some((i, item)) = task else { break };
                        local.push((i, f(i, item)));
                    }
                    done.lock().expect("runtime results lock").extend(local);
                });
            }
        });
        join_in_order(done.into_inner().expect("runtime results lock"), n)
    }
}

/// Sorts `(index, value)` pairs back into task order and unwraps them.
fn join_in_order<T>(mut pairs: Vec<(usize, T)>, n: usize) -> Vec<T> {
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Reads the `WAP_JOBS` environment variable; `None` when unset, empty, or
/// not a positive integer.
pub fn jobs_from_env() -> Option<usize> {
    std::env::var(JOBS_ENV)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&j| j > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_index_order() {
        let rt = Runtime::new(Some(4));
        let out = rt.run(100, |i| {
            // stagger completion so out-of-order finishes are likely
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * 3
        });
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_preserves_item_order() {
        let rt = Runtime::new(Some(8));
        let items: Vec<String> = (0..50).map(|i| format!("f{i}.php")).collect();
        let out = rt.map(items.clone(), |i, item| format!("{i}:{item}"));
        let want: Vec<String> = items
            .iter()
            .enumerate()
            .map(|(i, it)| format!("{i}:{it}"))
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn serial_matches_parallel() {
        let f = |i: usize| (i * 17) % 13;
        let serial = Runtime::serial().run(200, f);
        for jobs in [2, 3, 8] {
            assert_eq!(Runtime::new(Some(jobs)).run(200, f), serial);
        }
    }

    #[test]
    fn borrows_caller_data() {
        let data: Vec<usize> = (0..64).collect();
        let rt = Runtime::new(Some(4));
        let out = rt.run(data.len(), |i| data[i] + 1);
        assert_eq!(out.iter().sum::<usize>(), data.iter().sum::<usize>() + 64);
    }

    #[test]
    fn empty_and_single_task() {
        let rt = Runtime::new(Some(4));
        assert!(rt.run(0, |i| i).is_empty());
        assert_eq!(rt.run(1, |i| i + 41), vec![41]);
        assert!(rt.map(Vec::<u8>::new(), |_, b| b).is_empty());
    }

    #[test]
    fn default_jobs_positive() {
        assert!(Runtime::default().jobs() >= 1);
        assert_eq!(Runtime::new(Some(0)).jobs(), Runtime::default().jobs());
        assert_eq!(Runtime::serial().jobs(), 1);
    }

    #[test]
    fn from_config_explicit_wins() {
        assert_eq!(Runtime::from_config(Some(3)).jobs(), 3);
    }

    #[test]
    fn partition_divides_and_never_starves() {
        let rt = Runtime::new(Some(8));
        assert_eq!(rt.partition(2).jobs(), 4);
        assert_eq!(rt.partition(3).jobs(), 3); // ceil(8/3)
        assert_eq!(rt.partition(16).jobs(), 1);
        assert_eq!(rt.partition(0).jobs(), 8); // degenerate ways clamp to 1
        assert_eq!(Runtime::serial().partition(4).jobs(), 1);
    }
}
