//! A bounded, generic job queue shared by every resident front-end.
//!
//! Extracted from `wap-serve` so the HTTP service, `wap watch`, and
//! `wap lsp` run one admission-control implementation instead of three
//! copies. The queue is parameterized over the task payload `T` and the
//! completion value `R`; front-ends define their own payload types
//! (`wap-serve` keeps its render format and fail policy there,
//! `wap-live` its revision numbers).
//!
//! Admission control happens at [`JobQueue::submit`]: when the queue is
//! at capacity the caller gets [`SubmitError::Full`] (wap-serve turns it
//! into `429` + `Retry-After`), and once draining has begun every submit
//! is refused with [`SubmitError::Draining`] (`503`). Executor threads
//! block in [`JobQueue::next_task`]; synchronous consumers block in
//! [`JobQueue::wait`]. Everything is a `Mutex` + two `Condvar`s — no
//! async runtime, matching the house style of this crate.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Finished jobs retained for polling before the oldest are evicted.
const DONE_RETAIN: usize = 256;

/// One job waiting for (or owned by) an executor.
#[derive(Debug)]
pub struct Task<T> {
    /// Job id, unique for the queue's lifetime.
    pub id: u64,
    /// The front-end's task payload.
    pub payload: T,
    /// When the job was admitted — executors subtract this to report
    /// queue-wait latency.
    pub submitted: Instant,
}

/// A job's externally visible state.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus<R> {
    /// Admitted, not yet picked up by an executor.
    Queued,
    /// An executor owns the job.
    Running,
    /// Finished with the front-end's completion value.
    Done(R),
    /// The job could not be completed.
    Failed {
        /// Human-readable reason.
        message: String,
    },
}

impl<R> JobStatus<R> {
    /// Whether this state is terminal.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done(_) | JobStatus::Failed { .. })
    }

    /// The status name used in job-polling responses.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed { .. } => "failed",
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry shortly.
    Full,
    /// The queue is draining for shutdown; no new work is admitted.
    Draining,
}

struct Inner<T, R> {
    pending: VecDeque<Task<T>>,
    jobs: HashMap<u64, JobStatus<R>>,
    done_order: VecDeque<u64>,
    next_id: u64,
    running: usize,
    draining: bool,
}

impl<T, R> Default for Inner<T, R> {
    fn default() -> Self {
        Inner {
            pending: VecDeque::new(),
            jobs: HashMap::new(),
            done_order: VecDeque::new(),
            next_id: 0,
            running: 0,
            draining: false,
        }
    }
}

/// The bounded job queue shared by submitters and executors.
pub struct JobQueue<T, R> {
    capacity: usize,
    inner: Mutex<Inner<T, R>>,
    /// Signals executors that work arrived or draining began.
    work_ready: Condvar,
    /// Signals pollers that some job reached a terminal state.
    job_changed: Condvar,
}

impl<T, R: Clone> JobQueue<T, R> {
    /// A queue admitting at most `capacity` pending jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            work_ready: Condvar::new(),
            job_changed: Condvar::new(),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a job, returning its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Draining`] after
    /// [`JobQueue::drain`].
    pub fn submit(&self, payload: T) -> Result<u64, SubmitError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.draining {
            return Err(SubmitError::Draining);
        }
        if inner.pending.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(id, JobStatus::Queued);
        inner.pending.push_back(Task {
            id,
            payload,
            submitted: Instant::now(),
        });
        self.work_ready.notify_one();
        Ok(id)
    }

    /// Blocks until a task is available and claims it, or returns `None`
    /// once the queue is draining and empty (executor shutdown signal).
    pub fn next_task(&self) -> Option<Task<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(task) = inner.pending.pop_front() {
                inner.running += 1;
                inner.jobs.insert(task.id, JobStatus::Running);
                return Some(task);
            }
            if inner.draining {
                return None;
            }
            inner = self.work_ready.wait(inner).expect("queue lock");
        }
    }

    /// Records a finished job.
    pub fn complete(&self, id: u64, result: R) {
        self.finish(id, JobStatus::Done(result));
    }

    /// Records a failed job.
    pub fn fail(&self, id: u64, message: String) {
        self.finish(id, JobStatus::Failed { message });
    }

    fn finish(&self, id: u64, status: JobStatus<R>) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.running = inner.running.saturating_sub(1);
        inner.jobs.insert(id, status);
        inner.done_order.push_back(id);
        while inner.done_order.len() > DONE_RETAIN {
            if let Some(old) = inner.done_order.pop_front() {
                inner.jobs.remove(&old);
            }
        }
        self.job_changed.notify_all();
    }

    /// A snapshot of one job's state; `None` for unknown (or evicted) ids.
    pub fn status(&self, id: u64) -> Option<JobStatus<R>> {
        self.inner
            .lock()
            .expect("queue lock")
            .jobs
            .get(&id)
            .cloned()
    }

    /// Blocks until job `id` reaches a terminal state and returns it;
    /// `None` for unknown ids.
    pub fn wait(&self, id: u64) -> Option<JobStatus<R>> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            match inner.jobs.get(&id) {
                None => return None,
                Some(s) if s.is_terminal() => return Some(s.clone()),
                Some(_) => inner = self.job_changed.wait(inner).expect("queue lock"),
            }
        }
    }

    /// Pending (admitted, not yet running) jobs.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").pending.len()
    }

    /// Jobs currently owned by executors.
    pub fn in_flight(&self) -> usize {
        self.inner.lock().expect("queue lock").running
    }

    /// Stops admission and wakes every executor so that, once the pending
    /// queue empties, [`JobQueue::next_task`] returns `None`.
    pub fn drain(&self) {
        self.inner.lock().expect("queue lock").draining = true;
        self.work_ready.notify_all();
    }

    /// Whether draining has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().expect("queue lock").draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Queue = JobQueue<usize, String>;

    #[test]
    fn admission_control_fills_and_refuses() {
        let q = Queue::new(2);
        assert!(q.submit(0).is_ok());
        assert!(q.submit(1).is_ok());
        assert_eq!(q.submit(2), Err(SubmitError::Full));
        assert_eq!(q.depth(), 2);
        // claiming one frees a slot
        let t = q.next_task().unwrap();
        assert_eq!(t.payload, 0);
        assert_eq!(q.status(t.id), Some(JobStatus::Running));
        assert!(q.submit(3).is_ok());
    }

    #[test]
    fn draining_refuses_new_but_finishes_queued() {
        let q = Queue::new(4);
        let id = q.submit(0).unwrap();
        q.drain();
        assert!(q.is_draining());
        assert_eq!(q.submit(1), Err(SubmitError::Draining));
        // queued work is still handed out...
        let t = q.next_task().unwrap();
        assert_eq!(t.id, id);
        q.complete(t.id, "ok".into());
        // ...and only then do executors see the shutdown signal
        assert!(q.next_task().is_none());
    }

    #[test]
    fn wait_blocks_until_terminal() {
        let q = std::sync::Arc::new(Queue::new(4));
        let id = q.submit(0).unwrap();
        let q2 = q.clone();
        let waiter = std::thread::spawn(move || q2.wait(id));
        let t = q.next_task().unwrap();
        q.complete(t.id, "{}".into());
        match waiter.join().unwrap() {
            Some(JobStatus::Done(body)) => assert_eq!(body, "{}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(q.wait(999_999), None, "unknown ids do not block");
    }

    #[test]
    fn failed_jobs_are_reported() {
        let q = Queue::new(1);
        let id = q.submit(0).unwrap();
        let t = q.next_task().unwrap();
        q.fail(t.id, "boom".into());
        assert_eq!(
            q.status(id),
            Some(JobStatus::Failed {
                message: "boom".into()
            })
        );
        assert_eq!(q.in_flight(), 0);
        assert_eq!(q.status(id).unwrap().name(), "failed");
    }

    #[test]
    fn done_jobs_are_evicted_oldest_first() {
        let q = Queue::new(1);
        let mut first = None;
        for i in 0..(DONE_RETAIN + 10) {
            let id = q.submit(i).unwrap();
            first.get_or_insert(id);
            let t = q.next_task().unwrap();
            q.complete(t.id, String::new());
        }
        assert_eq!(q.status(first.unwrap()), None, "oldest evicted");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = Queue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.submit(0).is_ok());
        assert_eq!(q.submit(1), Err(SubmitError::Full));
    }
}
