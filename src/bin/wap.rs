//! The `wap` command-line tool: analyze PHP applications for 15 classes of
//! input-validation vulnerabilities, predict false positives, optionally
//! correct the source — or host the whole pipeline as a resident HTTP
//! service (`wap serve`), stream findings deltas as sources change
//! (`wap watch`), or serve editor diagnostics over stdio (`wap lsp`).
//! `wap lint` runs the CFG-based lint pass (shorthand for `wap --lint`);
//! `wap rules` manages installed rule packs for `--lint --rules`.

// Count allocations so scan summaries can report them alongside peak
// RSS; the counter is a relaxed atomic increment over the system
// allocator, far below measurement noise.
#[global_allocator]
static ALLOC: wap_core::CountingAlloc = wap_core::CountingAlloc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        args.remove(0);
        std::process::exit(wap_serve::cli_main(args));
    }
    if args.first().map(String::as_str) == Some("watch") {
        args.remove(0);
        std::process::exit(wap_live::cli::watch_main(args));
    }
    if args.first().map(String::as_str) == Some("lsp") {
        args.remove(0);
        std::process::exit(wap_live::cli::lsp_main(args));
    }
    if args.first().map(String::as_str) == Some("rules") {
        args.remove(0);
        std::process::exit(wap_rules::cli_main(args));
    }
    // `wap lint <PATH>...` is shorthand for `wap --lint <PATH>...`
    let lint_subcommand = args.first().map(String::as_str) == Some("lint");
    if lint_subcommand {
        args.remove(0);
    }
    let opts = match wap_core::cli::parse_args(args) {
        Ok(mut o) => {
            o.lint |= lint_subcommand;
            o
        }
        Err(err) => {
            eprintln!("error: {err}\n\n{}", wap_core::cli::USAGE);
            std::process::exit(err.exit_code());
        }
    };
    match wap_core::cli::run(&opts) {
        Ok((code, output)) => {
            print!("{output}");
            std::process::exit(code);
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(err.exit_code());
        }
    }
}
