//! # wap — modular, extensible PHP vulnerability detection and correction
//!
//! A from-scratch Rust reproduction of *"Equipping WAP with WEAPONS to
//! Detect Vulnerabilities"* (Medeiros, Neves, Correia — DSN 2016): a
//! static analysis tool for PHP web applications that
//!
//! 1. **detects** candidate input-validation vulnerabilities of 15 classes
//!    with taint analysis over a hand-written PHP front end,
//! 2. **predicts false positives** with a committee of machine-learning
//!    classifiers over the 61-attribute symptom scheme of the paper's
//!    Table I,
//! 3. **corrects** real vulnerabilities by inserting fixes into the
//!    source, and
//! 4. is extensible **without programming** through *weapons*: JSON
//!    configurations from which new detectors, fixes, and symptoms are
//!    generated at runtime.
//!
//! This facade re-exports every sub-crate. See the individual crates for
//! deep documentation:
//!
//! * [`php`] — lexer, parser, AST, visitors, printer
//! * [`taint`] — the taint analysis engine
//! * [`catalog`] — vulnerability classes, sinks/sanitizers, weapon format
//! * [`mining`] — symptom extraction, classifiers, metrics, the predictor
//! * [`fixer`] — fix templates and source correction
//! * [`interp`] — mini PHP interpreter for dynamic exploit confirmation
//! * [`corpus`] — the deterministic synthetic evaluation corpus
//! * [`cache`] — the persistent incremental analysis cache
//! * [`core`] — the assembled pipeline and weapon generator
//! * [`report`] — the report model and its renderers (text/JSON/NDJSON/SARIF)
//! * [`rules`] — versioned rule packs and the `wap rules` store
//! * [`serve`] — the resident HTTP analysis service
//! * [`live`] — the live front-ends (`wap watch` deltas, `wap lsp` diagnostics)
//!
//! ## Quick start
//!
//! ```
//! use wap::{WapTool, ToolConfig};
//!
//! let tool = WapTool::new(ToolConfig::wape_full());
//! let report = tool.analyze_sources(&[(
//!     "index.php".to_string(),
//!     r#"<?php
//!         $id = $_GET['id'];
//!         mysql_query("SELECT * FROM users WHERE id = $id");
//!     "#.to_string(),
//! )]);
//! assert_eq!(report.findings.len(), 1);
//! assert!(report.findings[0].is_real());
//! ```

pub use wap_cache as cache;
pub use wap_catalog as catalog;
pub use wap_cfg as cfg;
pub use wap_core as core;
pub use wap_corpus as corpus;
pub use wap_fixer as fixer;
pub use wap_interp as interp;
pub use wap_live as live;
pub use wap_mining as mining;
pub use wap_php as php;
pub use wap_report as report;
pub use wap_rules as rules;
pub use wap_serve as serve;
pub use wap_taint as taint;

pub use wap_catalog::{Catalog, EntryPoint, SubModule, VulnClass, WeaponConfig};
pub use wap_core::{AppReport, Finding, ToolConfig, WapTool, Weapon};
pub use wap_fixer::{Corrector, FixResult};
pub use wap_interp::{confirm, Confirmation, Request};
pub use wap_mining::{FalsePositivePredictor, PredictorGeneration};
pub use wap_php::{parse, print_program};
pub use wap_taint::{analyze, analyze_program, AnalysisOptions, Candidate, SourceFile};
