//! Detect → correct → re-analyze: show that inserted fixes remove the
//! findings for every vulnerability class the tool handles.
//!
//! ```sh
//! cargo run --example fix_and_verify
//! ```

use wap::{ToolConfig, WapTool};

const CASES: &[(&str, &str)] = &[
    (
        "sqli.php",
        "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
    ),
    ("xss.php", "<?php\necho 'Hello ' . $_GET['name'];\n"),
    ("osci.php", "<?php\nsystem('ping ' . $_POST['host']);\n"),
    (
        "lfi.php",
        "<?php\ninclude 'pages/' . $_GET['page'] . '.php';\n",
    ),
    (
        "ldapi.php",
        "<?php\nldap_search($c, $dn, '(uid=' . $_GET['u'] . ')');\n",
    ),
    ("hi.php", "<?php\nheader('Location: ' . $_GET['to']);\n"),
];

fn main() {
    let tool = WapTool::new(ToolConfig::wape_full());
    for (name, src) in CASES {
        let files = vec![(name.to_string(), src.to_string())];
        let before = tool.analyze_sources(&files);
        let fixed = tool.fix_file(name, src, &before);

        // re-analysis with the fix functions registered as sanitizers
        let mut verifier = WapTool::new(ToolConfig::wape_full());
        for (fix_name, classes) in &fixed.sanitizers {
            verifier.catalog_mut().add_user_sanitizer(fix_name, classes);
        }
        let after = verifier.analyze_sources(&[(name.to_string(), fixed.fixed_source.clone())]);

        println!(
            "{name:<12} findings: {} -> {} after fix  ({})",
            before.findings.len(),
            after.findings.len(),
            fixed
                .applied
                .iter()
                .map(|a| a.fix_name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert!(after.findings.is_empty(), "fix failed for {name}");
    }
    println!("\nall fixes verified by re-analysis");
}
