//! Create a brand-new weapon from JSON — no programming (§III-D).
//!
//! The weapon below teaches the tool a new vulnerability class (XML
//! external entity injection) purely from configuration: sinks,
//! sanitizers, a fix template, and a dynamic symptom.
//!
//! ```sh
//! cargo run --example custom_weapon
//! ```

use wap::{ToolConfig, WapTool, Weapon};

const WEAPON_JSON: &str = r#"{
    "name": "xxe",
    "class_name": "XXE",
    "sinks": [
        {"name": "simplexml_load_string"},
        {"name": "xml_parse"},
        {"name": "loadXML", "method": true}
    ],
    "sanitizers": ["xml_escape"],
    "fix": {"template": "user_validation", "malicious": ["<!ENTITY", "SYSTEM", "<!DOCTYPE"]},
    "dynamic_symptoms": [
        {"function": "validate_xml_input", "equivalent": "preg_match", "category": "validation"}
    ]
}"#;

const APP: &str = r#"<?php
// vulnerable: attacker-controlled XML reaches the parser
$doc = simplexml_load_string($_POST['payload']);

// guarded: the user's validator runs first (a dynamic symptom)
$xml = $_POST['report'];
if (!validate_xml_input($xml)) { exit('rejected'); }
$dom->loadXML($xml);
"#;

fn main() {
    let weapon = Weapon::generate(serde_json_parse()).expect("weapon config is valid");
    println!("generated weapon, activation flag: {}", weapon.flag());

    let mut tool = WapTool::new(ToolConfig::wape());
    let files = vec![("import.php".to_string(), APP.to_string())];
    println!(
        "before linking: {} findings",
        tool.analyze_sources(&files).findings.len()
    );

    tool.add_weapon(weapon);
    let report = tool.analyze_sources(&files);
    println!("after linking:  {} findings", report.findings.len());
    for f in &report.findings {
        println!(
            "  line {:>2}  {:<4} {:<24} {}",
            f.candidate.line,
            f.candidate.class.to_string(),
            f.candidate.sink,
            if f.is_real() { "REAL" } else { "predicted FP" }
        );
    }

    // the weapon also generated a fix (san_xxe) for the corrector
    let fixed = tool.fix_file("import.php", APP, &tool.analyze_sources(&files));
    println!(
        "\nfixes applied: {:?}",
        fixed
            .applied
            .iter()
            .map(|a| &a.fix_name)
            .collect::<Vec<_>>()
    );
}

fn serde_json_parse() -> wap::WeaponConfig {
    serde_json::from_str(WEAPON_JSON).expect("JSON weapon parses")
}
