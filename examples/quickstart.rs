//! Quickstart: detect, explain, and correct a SQL injection.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wap::{ToolConfig, WapTool};

fn main() {
    let source = r#"<?php
// a typical vulnerable login handler
$user = $_POST['user'];
$q = "SELECT * FROM users WHERE login = '" . $user . "'";
$res = mysql_query($q);
if (!$res) {
    exit('query failed');
}
echo "Welcome back, " . $_POST['user'];
"#;

    // WAPe with the paper's three weapons linked (-nosqli, -hei, -wpsqli)
    let tool = WapTool::new(ToolConfig::wape_full());
    let files = vec![("login.php".to_string(), source.to_string())];
    let report = tool.analyze_sources(&files);

    println!("== findings ==");
    for f in &report.findings {
        println!(
            "  {:<40} {}",
            f.candidate.headline(),
            if f.is_real() {
                "REAL VULNERABILITY"
            } else {
                "predicted false positive"
            }
        );
        for step in &f.candidate.path {
            println!("      {} (line {})", step.what, step.line);
        }
        if !f.prediction.justification.is_empty() {
            println!(
                "      justified by symptoms: {:?}",
                f.prediction.justification
            );
        }
    }

    println!("\n== corrected source ==");
    let fixed = tool.fix_file("login.php", source, &report);
    for a in &fixed.applied {
        println!(
            "  applied {} for {} at line {}",
            a.fix_name, a.class, a.line
        );
    }
    println!("\n{}", fixed.fixed_source);
}
