//! Audit a WordPress plugin with the `-wpsqli` weapon (§IV-C.3).
//!
//! Without the weapon, WAP knows nothing about `$wpdb`; with it, the
//! same tool finds the injections and understands the WordPress
//! validation helpers (`absint`, `sanitize_text_field`) as dynamic
//! symptoms.
//!
//! ```sh
//! cargo run --example wordpress_audit
//! ```

use wap::{ToolConfig, WapTool};

const PLUGIN: &str = r#"<?php
/*
 * Plugin Name: Demo Tickets
 */
global $wpdb;

// vulnerable: raw POST data into $wpdb->query
$title = $_POST['ticket_title'];
$wpdb->query("INSERT INTO {$wpdb->prefix}tickets (title) VALUES ('$title')");

// guarded with absint: flagged by taint analysis, but the predictor
// recognizes the dynamic symptom and calls it a false positive
$page = $_GET['page_num'];
if (absint($page) == 0) { exit; }
if (isset($_GET['page_num'])) {
    $wpdb->get_results("SELECT * FROM {$wpdb->prefix}tickets LIMIT $page");
}

// safe: prepared statement
$sql = $wpdb->prepare("SELECT * FROM {$wpdb->prefix}tickets WHERE id = %d", $_GET['id']);
$wpdb->query($sql);
"#;

fn main() {
    let files = vec![("demo-tickets.php".to_string(), PLUGIN.to_string())];

    // plain WAPe: $wpdb is just an unknown object
    let plain = WapTool::new(ToolConfig::wape());
    println!(
        "without -wpsqli: {} findings (the tool cannot see $wpdb sinks)",
        plain.analyze_sources(&files).findings.len()
    );

    // armed with the WordPress weapon
    let armed = WapTool::new(ToolConfig::wape_full());
    let report = armed.analyze_sources(&files);
    println!("with -wpsqli:    {} findings", report.findings.len());
    for f in &report.findings {
        println!(
            "  line {:>3}  {:<12} sink {:<22} -> {}",
            f.candidate.line,
            f.candidate.class.to_string(),
            f.candidate.sink,
            if f.is_real() {
                "REAL VULNERABILITY".to_string()
            } else {
                format!("false positive ({:?})", f.prediction.justification)
            }
        );
    }
}
