//! Second-order (stored XSS) analysis — an extension beyond the paper's
//! headline tables: tainted data INSERTed into the database comes back
//! through `mysql_fetch_*` and reaches an echo.
//!
//! ```sh
//! cargo run --example stored_xss
//! ```

use wap::{AnalysisOptions, ToolConfig, WapTool};

const GUESTBOOK: &str = r#"<?php
// write path: unsanitized comment stored in the database
$comment = $_POST['comment'];
mysql_query("INSERT INTO comments (body) VALUES ('$comment')");

// read path: everything in the table is echoed back to every visitor
$res = mysql_query("SELECT body FROM comments ORDER BY id DESC LIMIT 20");
while ($row = mysql_fetch_assoc($res)) {
    echo "<p class='comment'>" . $row['body'] . "</p>";
}
"#;

fn main() {
    let files = vec![("guestbook.php".to_string(), GUESTBOOK.to_string())];

    let first_order = WapTool::new(ToolConfig::wape_full());
    let r1 = first_order.analyze_sources(&files);
    println!("first-order analysis: {} finding(s)", r1.findings.len());
    for f in &r1.findings {
        println!("  line {:>2}  {}", f.candidate.line, f.candidate.headline());
    }

    let mut cfg = ToolConfig::wape_full();
    cfg.analysis = AnalysisOptions {
        second_order: true,
        ..AnalysisOptions::default()
    };
    let second_order = WapTool::new(cfg);
    let r2 = second_order.analyze_sources(&files);
    println!("\nsecond-order analysis: {} finding(s)", r2.findings.len());
    for f in &r2.findings {
        println!("  line {:>2}  {}", f.candidate.line, f.candidate.headline());
        for step in &f.candidate.path {
            println!("      {}", step.what);
        }
    }
}
