//! End-to-end: boot `wap-serve` on an ephemeral port and drive it over
//! real TCP. The contract under test is the tentpole guarantee: a scan
//! served over HTTP is **byte-identical** to the same scan run through the
//! CLI front end — cold cache, warm cache, any worker count — and the
//! service stays correct under concurrent clients.
//!
//! Every assertion here compares the server against the CLI (or the server
//! against itself), so the tests are independent of the random stream the
//! corpus and committee were built from — they run in the offline harness
//! with shimmed dependencies as well as on a networked machine.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use wap::core::cli::{self, CliOptions};
use wap::corpus::generate_webapp;
use wap::corpus::specs::vulnerable_webapps;
use wap::report::Format;
use wap::serve::{ServeConfig, Server, ServerHandle};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wap-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_corpus_app(name: &str, seed: u64, dir: &PathBuf) {
    let spec = vulnerable_webapps()
        .into_iter()
        .find(|a| a.name == name)
        .unwrap();
    let app = generate_webapp(&spec, 0.5, seed);
    app.write_to(dir).unwrap();
}

fn boot(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&config).expect("bind ephemeral port");
    let handle = server.handle().expect("handle");
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

/// Sends one request and returns `(status, headers, body)`. The body is
/// split off at the first blank line and compared as raw bytes.
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("send");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("recv");
    let split = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body delimiter");
    let head = String::from_utf8_lossy(&buf[..split]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, head, buf[split + 4..].to_vec())
}

fn scan_request(dir: &PathBuf, format: &str) -> Vec<u8> {
    format!(
        "POST /v1/scan?path={}&format={format} HTTP/1.1\r\nHost: e2e\r\nContent-Length: 0\r\n\r\n",
        url_escape(&dir.display().to_string())
    )
    .into_bytes()
}

fn url_escape(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'/' | b'.' | b'-' | b'_' => out.push(b as char),
            b if b.is_ascii_alphanumeric() => out.push(b as char),
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn cli_output(dir: &PathBuf, format: Format) -> String {
    let opts = CliOptions {
        paths: vec![dir.clone()],
        format: Some(format),
        ..Default::default()
    };
    let (_, output) = cli::run(&opts).unwrap();
    output
}

#[test]
fn server_scan_is_byte_identical_to_cli() {
    let dir = temp_dir("identical");
    write_corpus_app("RCR AEsir", 77, &dir);
    let cache_dir = temp_dir("identical-cache");

    let (handle, join) = boot(ServeConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(2),
        cache_dir: Some(cache_dir.clone()),
        workers: 2,
        ..ServeConfig::default()
    });

    for (format_name, format) in [
        ("json", Format::Json),
        ("sarif", Format::Sarif),
        ("ndjson", Format::Ndjson),
    ] {
        let want = cli_output(&dir, format).into_bytes();
        // cold cache
        let (status, head, cold) = exchange(handle.addr(), &scan_request(&dir, format_name));
        assert_eq!(status, 200, "{head}");
        assert!(
            head.contains(&format!("Content-Type: {}", format.content_type())),
            "{head}"
        );
        assert_eq!(
            cold, want,
            "cold {format_name} scan differs from CLI output"
        );
        // warm cache: same bytes again
        let (status, _, warm) = exchange(handle.addr(), &scan_request(&dir, format_name));
        assert_eq!(status, 200);
        assert_eq!(
            warm, want,
            "warm {format_name} scan differs from CLI output"
        );
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn eight_concurrent_clients_scan_correctly() {
    let dir_a = temp_dir("conc-a");
    let dir_b = temp_dir("conc-b");
    write_corpus_app("RCR AEsir", 81, &dir_a);
    write_corpus_app("divine", 82, &dir_b);

    let (handle, join) = boot(ServeConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(2),
        workers: 2,
        ..ServeConfig::default()
    });

    // pre-warm app A so concurrent clients mix warm (A) and cold (B) scans
    let (status, _, warm_a) = exchange(handle.addr(), &scan_request(&dir_a, "json"));
    assert_eq!(status, 200);

    let addr = handle.addr();
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let dir = if i % 2 == 0 {
                dir_a.clone()
            } else {
                dir_b.clone()
            };
            std::thread::spawn(move || exchange(addr, &scan_request(&dir, "json")))
        })
        .collect();
    let mut body_a = Vec::new();
    let mut body_b = Vec::new();
    for (i, c) in clients.into_iter().enumerate() {
        let (status, head, body) = c.join().expect("client thread");
        assert_eq!(status, 200, "client {i}: {head}");
        let bucket = if i % 2 == 0 { &mut body_a } else { &mut body_b };
        if bucket.is_empty() {
            *bucket = body;
        } else {
            assert_eq!(*bucket, body, "client {i} saw a different report");
        }
    }
    assert_eq!(body_a, warm_a, "concurrent scans must match the warm scan");
    assert_eq!(
        body_b,
        cli_output(&dir_b, Format::Json).into_bytes(),
        "concurrent cold scans must match the CLI"
    );

    // while serving concurrent scans the service stayed observable
    let (status, _, metrics) = exchange(addr, b"GET /metrics HTTP/1.1\r\nHost: e2e\r\n\r\n");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).unwrap();
    let metric_value = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
    };
    assert_eq!(metric_value("wap_serve_jobs_accepted_total"), 9);
    assert_eq!(metric_value("wap_serve_jobs_completed_total"), 9);
    assert!(
        metric_value("wap_serve_cache_hits_total") > 0,
        "warm scans must hit the shared cache:\n{metrics}"
    );
    assert_eq!(metric_value("wap_serve_queue_depth"), 0);
    assert_eq!(metric_value("wap_serve_jobs_in_flight"), 0);

    // latency histograms: every completed scan contributes exactly one
    // observation to the scan histogram, the queue-wait histogram, and
    // each per-phase histogram
    assert_eq!(metric_value("wap_serve_scan_duration_seconds_count"), 9);
    assert_eq!(metric_value("wap_serve_queue_wait_seconds_count"), 9);
    for phase in ["parse", "taint", "predict", "cache"] {
        assert_eq!(
            metric_value(&format!(
                "wap_serve_phase_duration_seconds_count{{phase=\"{phase}\"}}"
            )),
            9,
            "phase {phase} histogram out of step with jobs_completed"
        );
    }
    // buckets are cumulative: the +Inf bucket carries the full count
    assert_eq!(
        metric_value("wap_serve_scan_duration_seconds_bucket{le=\"+Inf\"}"),
        9
    );
    assert!(
        metrics.contains("wap_serve_scan_duration_seconds_sum "),
        "scan histogram missing _sum:\n{metrics}"
    );
    assert!(
        metrics.contains("# TYPE wap_serve_queue_wait_seconds histogram"),
        "queue-wait family untyped:\n{metrics}"
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn tar_upload_matches_path_scan_of_same_tree() {
    let dir = temp_dir("tar-vs-path");
    write_corpus_app("divine", 83, &dir);

    // build a tar of the same tree with the names the path scan will use,
    // so the two scans must render byte-identical reports
    let files = cli::collect_php_files(&[dir.clone()]).unwrap();
    let members: Vec<(String, String)> = files
        .iter()
        .map(|f| {
            (
                f.display().to_string().trim_start_matches('/').to_string(),
                std::fs::read_to_string(f).unwrap(),
            )
        })
        .collect();
    let archive = wap::serve::tar::build(&members);

    let (handle, join) = boot(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..ServeConfig::default()
    });

    let (status, _, by_path) = exchange(handle.addr(), &scan_request(&dir, "ndjson"));
    assert_eq!(status, 200);
    let mut raw = format!(
        "POST /v1/scan?format=ndjson HTTP/1.1\r\nHost: e2e\r\nContent-Type: application/x-tar\r\nContent-Length: {}\r\n\r\n",
        archive.len()
    )
    .into_bytes();
    raw.extend_from_slice(&archive);
    let (status, _, by_tar) = exchange(handle.addr(), &raw);
    assert_eq!(status, 200);

    // names differ only by the stripped leading '/' — normalize and compare
    let by_path = String::from_utf8(by_path).unwrap().replace(
        &dir.display().to_string(),
        dir.display().to_string().trim_start_matches('/'),
    );
    assert_eq!(by_path, String::from_utf8(by_tar).unwrap());

    handle.shutdown();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// `?values=1` must reproduce the CLI's `--values` bytes exactly, and a
/// plain scan against the same server must keep the default bytes — the
/// second resident tool may not leak into the first.
#[test]
fn values_scan_matches_cli_and_leaves_default_bytes_alone() {
    let dir = temp_dir("values");
    std::fs::create_dir_all(dir.join("lib")).unwrap();
    std::fs::write(
        dir.join("index.php"),
        "<?php\n$base = \"lib\";\n$id = $_GET['id'];\ninclude $base . \"/db.php\";\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("lib/db.php"),
        "<?php\nmysql_query(\"SELECT * FROM users WHERE id = \" . $id);\n",
    )
    .unwrap();

    let (handle, join) = boot(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..ServeConfig::default()
    });

    let values_cli = {
        let opts = CliOptions {
            paths: vec![dir.clone()],
            format: Some(Format::Json),
            values: true,
            ..Default::default()
        };
        let (_, output) = cli::run(&opts).unwrap();
        output.into_bytes()
    };
    let plain_cli = cli_output(&dir, Format::Json).into_bytes();
    // the air-gapped harness shims serde_json into an empty renderer;
    // the server-vs-CLI byte identities below still hold there
    if !plain_cli.is_empty() {
        assert_ne!(
            values_cli, plain_cli,
            "the resolved dynamic include must change the findings"
        );
    }

    let values_request = format!(
        "POST /v1/scan?path={}&format=json&values=1 HTTP/1.1\r\nHost: e2e\r\nContent-Length: 0\r\n\r\n",
        url_escape(&dir.display().to_string())
    );
    // interleave values and plain scans: each must keep its own bytes
    for _ in 0..2 {
        let (status, head, body) = exchange(handle.addr(), values_request.as_bytes());
        assert_eq!(status, 200, "{head}");
        assert_eq!(body, values_cli, "?values=1 scan differs from --values CLI");
        let (status, _, body) = exchange(handle.addr(), &scan_request(&dir, "json"));
        assert_eq!(status, 200);
        assert_eq!(body, plain_cli, "plain scan next to ?values=1 drifted");
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
