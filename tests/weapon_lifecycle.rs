//! Weapon lifecycle integration tests: JSON configuration → generated
//! weapon → linked detector/fix/symptoms → detection → correction.

use wap::{ToolConfig, VulnClass, WapTool, Weapon, WeaponConfig};

#[test]
fn builtin_weapons_from_json_files() {
    // every built-in weapon survives a disk-format round trip and links
    for cfg in [
        WeaponConfig::nosqli(),
        WeaponConfig::hei(),
        WeaponConfig::wpsqli(),
    ] {
        let w = Weapon::generate(cfg).expect("valid");
        let json = w.to_json();
        let reloaded = Weapon::from_json(&json).expect("round trip");
        assert_eq!(w, reloaded);
    }
}

#[test]
fn nosqli_weapon_full_cycle() {
    let src = r#"<?php
$m = new MongoClient();
$users = $m->selectCollection('app', 'users');
$name = $_GET['name'];
$users->find(array('name' => $name));
"#;
    let files = vec![("nosql.php".to_string(), src.to_string())];

    // undetectable before the weapon
    let plain = WapTool::new(ToolConfig::wape());
    assert_eq!(plain.analyze_sources(&files).findings.len(), 0);

    // detected + fixed after
    let mut armed = WapTool::new(ToolConfig::wape());
    armed.add_weapon(Weapon::generate(WeaponConfig::nosqli()).unwrap());
    let report = armed.analyze_sources(&files);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].candidate.class, VulnClass::NoSqlI);
    assert!(report.findings[0].is_real());

    let fixed = armed.fix_file("nosql.php", src, &report);
    assert_eq!(fixed.applied[0].fix_name, "san_nosqli");
    // the NoSQLI weapon's fix template is mysql_real_escape_string (§IV-C.1)
    assert!(fixed.fixed_source.contains("mysql_real_escape_string("));
    // fixed code is silent (the sanitizer is native to the weapon)
    let after = armed.analyze_sources(&[("nosql.php".to_string(), fixed.fixed_source)]);
    assert!(after.findings.is_empty());
}

#[test]
fn hei_weapon_distinguishes_hi_and_ei() {
    let src = r#"<?php
header("X-Custom: " . $_GET['h']);
mail($_POST['rcpt'], 'Welcome', 'body');
"#;
    let tool = WapTool::new(ToolConfig::wape_full());
    let report = tool.analyze_sources(&[("hei.php".to_string(), src.to_string())]);
    let classes: Vec<&str> = report
        .findings
        .iter()
        .map(|f| f.candidate.class.acronym())
        .collect();
    assert!(classes.contains(&"HI"));
    assert!(classes.contains(&"EI"));
    // one weapon, one fix for both classes
    let fixed = tool.fix_file("hei.php", src, &report);
    assert_eq!(fixed.applied.len(), 2);
    assert!(fixed.applied.iter().all(|a| a.fix_name == "san_hei"));
    assert_eq!(fixed.fixed_source.matches("function san_hei").count(), 1);
}

#[test]
fn user_defined_weapon_via_json() {
    let json = r#"{
        "name": "regexi",
        "class_name": "REGEXI",
        "sinks": [{"name": "preg_grep"}],
        "sanitizers": ["preg_quote"],
        "fix": {"template": "php_sanitization", "sanitizer": "preg_quote"},
        "dynamic_symptoms": []
    }"#;
    let weapon = Weapon::from_json(json).expect("valid weapon");
    assert_eq!(weapon.flag(), "-regexi");

    let mut tool = WapTool::new(ToolConfig::wape());
    tool.add_weapon(weapon);
    let vulnerable = "<?php\npreg_grep('/' . $_GET['pat'] . '/', $rows);\n";
    let report = tool.analyze_sources(&[("re.php".to_string(), vulnerable.to_string())]);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(
        report.findings[0].candidate.class,
        VulnClass::Custom("REGEXI".into())
    );

    // the registered sanitizer silences the safe variant
    let safe = "<?php\npreg_grep('/' . preg_quote($_GET['pat']) . '/', $rows);\n";
    let report = tool.analyze_sources(&[("re.php".to_string(), safe.to_string())]);
    assert_eq!(report.findings.len(), 0);
}

#[test]
fn weapon_entry_points_taint_function_returns() {
    let json = r#"{
        "name": "cli",
        "class_name": "OSCI",
        "entry_points": [{"FunctionReturn": "read_request_header"}],
        "sinks": [{"name": "proc_open"}],
        "fix": {"template": "php_sanitization", "sanitizer": "escapeshellcmd"}
    }"#;
    let weapon = Weapon::from_json(json).expect("valid");
    let mut tool = WapTool::new(ToolConfig::wape());
    tool.add_weapon(weapon);
    let src = "<?php\n$h = read_request_header('X-Cmd');\nproc_open($h, $spec, $pipes);\n";
    let report = tool.analyze_sources(&[("c.php".to_string(), src.to_string())]);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(
        report.findings[0].candidate.sources,
        vec!["read_request_header()".to_string()]
    );
}

#[test]
fn invalid_weapons_are_rejected_with_reasons() {
    for (json, needle) in [
        (
            r#"{"name":"","class_name":"X","sinks":[{"name":"f"}],"fix":{"template":"user_validation","malicious":["'"]}}"#,
            "name",
        ),
        (
            r#"{"name":"x","class_name":"X","sinks":[],"fix":{"template":"user_validation","malicious":["'"]}}"#,
            "sink",
        ),
        (
            r#"{"name":"x","class_name":"X","sinks":[{"name":"f"}],"fix":{"template":"user_validation","malicious":[]}}"#,
            "malicious",
        ),
    ] {
        let err = Weapon::from_json(json).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "expected error about `{needle}`, got: {err}"
        );
    }
}

#[test]
fn dynamic_symptoms_influence_prediction() {
    // identical code; the only difference is whether the weapon maps
    // `absint` onto a static symptom
    let plugin = r#"<?php
global $wpdb;
$n = $_GET['n'];
if (absint($n) == 0) { exit; }
if (isset($_GET['n'])) {
    $wpdb->query("SELECT * FROM {$wpdb->prefix}t WHERE c = $n");
}
"#;
    let files = vec![("p.php".to_string(), plugin.to_string())];

    let with = WapTool::new(ToolConfig::wape_full());
    let r_with = with.analyze_sources(&files);
    assert_eq!(r_with.findings.len(), 1);
    assert!(
        !r_with.findings[0].is_real(),
        "absint guard should be recognized via dynamic symptoms"
    );

    let mut stripped_cfg = ToolConfig::wape();
    let mut wpsqli = WeaponConfig::wpsqli();
    wpsqli.dynamic_symptoms.clear();
    stripped_cfg.weapons = vec![wpsqli];
    let without = WapTool::new(stripped_cfg);
    let r_without = without.analyze_sources(&files);
    assert_eq!(r_without.findings.len(), 1);
    // without the mapping the candidate carries fewer symptoms
    assert!(
        r_with.findings[0].symptoms.present.len() > r_without.findings[0].symptoms.present.len()
    );
}
