//! Golden SARIF snapshot for the lint pass.
//!
//! `tests/fixtures/lint_app/` is a tiny PHP app with CFG-level defects
//! (assignment-in-condition, unreachable code, an unguarded sink) but no
//! taint candidates, so its SARIF rendering is independent of the trained
//! false-positive committee. The rendering with `--lint` must match the
//! committed `tests/golden/lint_app.sarif` byte for byte — rule metadata,
//! severity levels, and byte-precise region spans included. Regenerate
//! with `WAP_BLESS=1 cargo test --test golden_sarif` after an intentional
//! format change; `scripts/sarif_assert.jq` validates the golden's shape
//! in CI.

use std::path::Path;
use wap::core::cli::render_sarif;
use wap::core::{ToolConfig, WapTool};

const FIXTURES: [&str; 2] = [
    "tests/fixtures/lint_app/index.php",
    "tests/fixtures/lint_app/util.php",
];

fn fixture_sources() -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    FIXTURES
        .iter()
        .map(|name| {
            let src = std::fs::read_to_string(root.join(name)).expect("fixture readable");
            (name.to_string(), src)
        })
        .collect()
}

fn render(jobs: usize, cache_dir: Option<&Path>) -> String {
    let sources = fixture_sources();
    let mut builder = ToolConfig::builder().jobs(jobs);
    if let Some(dir) = cache_dir {
        builder = builder.cache_dir(dir);
    }
    let tool = WapTool::new(builder.build());
    let mut report = tool.analyze_sources(&sources);
    tool.apply_lint(&mut report, &sources);
    let classes: Vec<_> = tool.catalog().classes().cloned().collect();
    render_sarif(&report, &classes)
}

#[test]
fn lint_sarif_matches_the_committed_golden_byte_for_byte() {
    let rendered = render(1, None);

    // identical at every job count and with a cold, then warm, cache
    let cache = std::env::temp_dir().join(format!(
        "wap-golden-sarif-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&cache);
    for jobs in [2usize, 8] {
        assert_eq!(rendered, render(jobs, None), "jobs={jobs} SARIF diverged");
    }
    for label in ["cold", "warm"] {
        assert_eq!(
            rendered,
            render(4, Some(&cache)),
            "{label} cached SARIF diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&cache);

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/lint_app.sarif");
    let expected = format!("{rendered}\n");
    if std::env::var_os("WAP_BLESS").is_some() {
        std::fs::write(&golden_path, &expected).expect("bless golden");
        return;
    }
    if rendered.is_empty() {
        // the air-gapped harness shims serde_json into an empty renderer;
        // the cross-configuration byte-identity above still holds there
        return;
    }
    // spot-check the load-bearing content before the full byte comparison,
    // for a readable failure when something structural regresses
    for needle in [
        "\"WAP-LINT-UNGUARDED-SINK\"",
        "\"WAP-LINT-ASSIGN-IN-COND\"",
        "\"WAP-LINT-UNREACHABLE\"",
        "\"WAP-WP-UNPREPARED-QUERY\"",
        "\"level\": \"warning\"",
        "\"level\": \"note\"",
        "\"charOffset\"",
        "\"charLength\"",
    ] {
        assert!(rendered.contains(needle), "SARIF missing {needle}:\n{rendered}");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("tests/golden/lint_app.sarif missing — regenerate with WAP_BLESS=1");
    assert_eq!(
        golden, expected,
        "SARIF drifted from the golden; regenerate with \
         WAP_BLESS=1 cargo test --test golden_sarif if intentional"
    );
}

/// Renders `tests/fixtures/wp_app/` with the starter `wordpress` rule
/// pack joined into the lint pass.
fn render_with_wordpress(jobs: usize, cache_dir: Option<&Path>) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let name = "tests/fixtures/wp_app/plugin.php";
    let sources = vec![(
        name.to_string(),
        std::fs::read_to_string(root.join(name)).expect("fixture readable"),
    )];
    let mut builder = ToolConfig::builder().jobs(jobs);
    if let Some(dir) = cache_dir {
        builder = builder.cache_dir(dir);
    }
    let tool = WapTool::new(
        builder
            .rule_packs(vec![wap::rules::RulePack::wordpress()])
            .build(),
    );
    let mut report = tool.analyze_sources(&sources);
    tool.apply_lint(&mut report, &sources);
    let classes: Vec<_> = tool.catalog().classes().cloned().collect();
    render_sarif(&report, &classes)
}

#[test]
fn wordpress_pack_sarif_matches_the_committed_golden_byte_for_byte() {
    let rendered = render_with_wordpress(1, None);

    let cache = std::env::temp_dir().join(format!(
        "wap-golden-wp-sarif-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&cache);
    for jobs in [2usize, 8] {
        assert_eq!(
            rendered,
            render_with_wordpress(jobs, None),
            "jobs={jobs} SARIF diverged"
        );
    }
    for label in ["cold", "warm"] {
        assert_eq!(
            rendered,
            render_with_wordpress(4, Some(&cache)),
            "{label} cached SARIF diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&cache);

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/lint_app_wordpress.sarif");
    let expected = format!("{rendered}\n");
    if std::env::var_os("WAP_BLESS").is_some() {
        std::fs::write(&golden_path, &expected).expect("bless golden");
        return;
    }
    if rendered.is_empty() {
        // the air-gapped harness shims serde_json into an empty renderer;
        // the cross-configuration byte-identity above still holds there
        return;
    }
    for needle in [
        "\"WAP-WP-WPDB-INTERPOLATED-QUERY\"",
        "\"WAP-WP-WPDB-INTERPOLATED-GET-RESULTS\"",
        "\"WAP-WP-UNVALIDATED-EXTRACT\"",
        "\"pack\": \"wordpress\"",
        "\"level\": \"error\"",
    ] {
        assert!(rendered.contains(needle), "SARIF missing {needle}:\n{rendered}");
    }
    // the golden is blessed on the first serializer-enabled run (the
    // offline harness cannot render it); afterwards it is compared byte
    // for byte like the lint_app golden
    let Ok(golden) = std::fs::read_to_string(&golden_path) else {
        std::fs::write(&golden_path, &expected).expect("write initial golden");
        return;
    };
    assert_eq!(
        golden, expected,
        "SARIF drifted from the golden; regenerate with \
         WAP_BLESS=1 cargo test --test golden_sarif if intentional"
    );
}

/// Renders `tests/fixtures/generic_app/` with the `generic-php` starter
/// pack and the interprocedural value analysis on, so the pack's
/// `tainted($X)` / `const($X)` predicate constraints have taint facts
/// and proven values to consume.
fn render_with_generic_php(jobs: usize, cache_dir: Option<&Path>) -> (String, wap::core::AppReport) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let name = "tests/fixtures/generic_app/app.php";
    let sources = vec![(
        name.to_string(),
        std::fs::read_to_string(root.join(name)).expect("fixture readable"),
    )];
    let mut builder = ToolConfig::builder().jobs(jobs).values(true);
    if let Some(dir) = cache_dir {
        builder = builder.cache_dir(dir);
    }
    let tool = WapTool::new(
        builder
            .rule_packs(vec![wap::rules::RulePack::generic_php()])
            .build(),
    );
    let mut report = tool.analyze_sources(&sources);
    tool.apply_lint(&mut report, &sources);
    let classes: Vec<_> = tool.catalog().classes().cloned().collect();
    let rendered = render_sarif(&report, &classes);
    (rendered, report)
}

#[test]
fn generic_php_pack_predicates_fire_on_taint_and_consts_only() {
    // Serializer-independent: the lint findings themselves prove the
    // predicate semantics, with or without the offline serde shim.
    let (_, report) = render_with_generic_php(1, None);
    let by_rule = |id: &str| -> Vec<u32> {
        report
            .lint
            .iter()
            .filter(|l| l.rule_id == id)
            .map(|l| l.line)
            .collect()
    };
    // tainted($X): the carrier-tainted `$q` (line 5) and the literal
    // superglobal argument (line 6) fire; the constant query on line 7
    // stays silent.
    assert_eq!(by_rule("WAP-GP-TAINTED-QUERY"), vec![5, 6]);
    // const($X): eval of a value proven constant by the value analysis.
    assert_eq!(by_rule("WAP-GP-CONSTANT-EVAL"), vec![9]);
}

#[test]
fn generic_php_pack_sarif_matches_the_committed_golden_byte_for_byte() {
    let (rendered, _) = render_with_generic_php(1, None);

    let cache = std::env::temp_dir().join(format!(
        "wap-golden-gp-sarif-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&cache);
    for jobs in [2usize, 8] {
        assert_eq!(
            rendered,
            render_with_generic_php(jobs, None).0,
            "jobs={jobs} SARIF diverged"
        );
    }
    for label in ["cold", "warm"] {
        assert_eq!(
            rendered,
            render_with_generic_php(4, Some(&cache)).0,
            "{label} cached SARIF diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&cache);

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/generic_app.sarif");
    let expected = format!("{rendered}\n");
    if std::env::var_os("WAP_BLESS").is_some() {
        std::fs::write(&golden_path, &expected).expect("bless golden");
        return;
    }
    if rendered.is_empty() {
        // the air-gapped harness shims serde_json into an empty renderer;
        // the cross-configuration byte-identity above still holds there
        return;
    }
    for needle in [
        "\"WAP-GP-TAINTED-QUERY\"",
        "\"WAP-GP-CONSTANT-EVAL\"",
        "\"pack\": \"generic-php\"",
        "\"dynamicEdgesResolved\"",
    ] {
        assert!(rendered.contains(needle), "SARIF missing {needle}:\n{rendered}");
    }
    // blessed on the first serializer-enabled run (the offline harness
    // cannot render it); afterwards compared byte for byte
    let Ok(golden) = std::fs::read_to_string(&golden_path) else {
        std::fs::write(&golden_path, &expected).expect("write initial golden");
        return;
    };
    assert_eq!(
        golden, expected,
        "SARIF drifted from the golden; regenerate with \
         WAP_BLESS=1 cargo test --test golden_sarif if intentional"
    );
}
