//! The observability layer's central contract: tracing is
//! observation-only. Findings and every machine-format rendering must be
//! bit-identical with the collector on or off, at every job count — a
//! `--trace` run is the same analysis, merely watched.

use wap::catalog::VulnClass;
use wap::core::{AppReport, ToolConfig, WapTool};
use wap::corpus::generate_webapp;
use wap::corpus::specs::vulnerable_webapps;
use wap::report::{render_json, render_ndjson, render_sarif};

fn corpus_sources() -> Vec<(String, String)> {
    let mut sources = Vec::new();
    for (i, spec) in vulnerable_webapps().into_iter().take(4).enumerate() {
        let app = generate_webapp(&spec, 0.1, 5150u64.wrapping_add(i as u64));
        for f in &app.files {
            sources.push((format!("app{i}/{}", f.name), f.source.clone()));
        }
    }
    sources
}

/// Everything the analysis decided, as comparable plain text (not a
/// serializer's output, so the check does not depend on one).
fn fingerprint(report: &AppReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}:{}:[{}]:real={}:[{}]\n",
            f.candidate.file.as_deref().unwrap_or("<input>"),
            f.candidate.line,
            f.candidate.class,
            f.candidate.sink,
            f.candidate.sources.join(","),
            f.is_real(),
            f.prediction.justification.join(","),
        ));
    }
    out.push_str(&format!(
        "files={} loc={} parse_errors={}\n",
        report.files_analyzed,
        report.loc,
        report.parse_errors.len()
    ));
    out
}

#[test]
fn tracing_never_changes_findings_or_machine_bytes() {
    let sources = corpus_sources();
    let base_tool = WapTool::new(ToolConfig::builder().jobs(1).build());
    let classes: Vec<VulnClass> = base_tool.catalog().classes().cloned().collect();
    let base = base_tool.analyze_sources(&sources);
    assert!(!base.findings.is_empty(), "corpus must produce findings");
    let base_fp = fingerprint(&base);
    let base_json = render_json(&base);
    let base_ndjson = render_ndjson(&base);
    let base_sarif = render_sarif(&base, &classes);

    for jobs in [1usize, 2, 8] {
        for trace in [false, true] {
            let tool = WapTool::new(ToolConfig::builder().jobs(jobs).trace(trace).build());
            let report = tool.analyze_sources(&sources);
            let label = format!("jobs={jobs} trace={trace}");
            assert_eq!(base_fp, fingerprint(&report), "{label}: findings diverged");
            assert_eq!(base_json, render_json(&report), "{label}: JSON diverged");
            assert_eq!(
                base_ndjson,
                render_ndjson(&report),
                "{label}: NDJSON diverged"
            );
            assert_eq!(
                base_sarif,
                render_sarif(&report, &classes),
                "{label}: SARIF diverged"
            );
            assert_eq!(tool.obs().enabled(), trace, "{label}: collector state");
            if trace {
                assert!(
                    !tool.obs().is_empty(),
                    "{label}: traced run recorded nothing"
                );
            } else {
                assert!(
                    tool.obs().is_empty(),
                    "{label}: untraced run recorded spans"
                );
            }
        }
    }
}

#[test]
fn trace_ndjson_is_schema_versioned_and_well_formed() {
    let tool = WapTool::new(ToolConfig::builder().jobs(2).trace(true).build());
    let _ = tool.analyze_sources(&corpus_sources());
    let trace = tool.obs().render_ndjson();
    let mut lines = trace.lines();
    let meta = lines.next().expect("meta line");
    assert!(
        meta.starts_with(&format!("{{\"schema\":\"{}\"", wap_obs::TRACE_SCHEMA)),
        "first line must carry the schema: {meta}"
    );
    let mut spans = 0usize;
    for line in lines {
        assert!(
            line.starts_with("{\"kind\":\"span\"") || line.starts_with("{\"kind\":\"event\""),
            "unexpected record: {line}"
        );
        assert!(line.ends_with('}'), "truncated record: {line}");
        if line.starts_with("{\"kind\":\"span\"") {
            spans += 1;
        }
    }
    assert!(spans > 0, "trace has no spans");
    // the pipeline's per-file phases must show up
    assert!(trace.contains("\"phase\":\"parse\""), "no parse spans");
    assert!(trace.contains("\"phase\":\"taint\""), "no taint spans");
    assert!(
        trace.contains("\"phase\":\"summary_merge\""),
        "no merge span"
    );
}

/// Traced runs carry a per-file breakdown in `ScanStats`; untraced runs
/// keep it empty, and the phase totals are populated either way.
#[test]
fn scan_stats_per_file_breakdown_follows_the_trace_flag() {
    let sources = corpus_sources();
    let untraced = WapTool::new(ToolConfig::builder().jobs(2).build()).analyze_sources(&sources);
    assert!(untraced.stats.files.is_empty(), "untraced run has file stats");
    assert!(untraced.stats.total_ns() > 0, "phase totals always measured");

    let traced =
        WapTool::new(ToolConfig::builder().jobs(2).trace(true).build()).analyze_sources(&sources);
    assert!(!traced.stats.files.is_empty(), "traced run lost file stats");
    // sorted by descending cost, and every name is a corpus file
    let files = &traced.stats.files;
    for pair in files.windows(2) {
        assert!(pair[0].ns >= pair[1].ns, "breakdown not sorted");
    }
    assert!(files.iter().all(|f| f.file.contains('/')));
}
