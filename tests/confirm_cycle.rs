//! The full loop the paper performed manually: detect → **confirm the
//! exploit dynamically** → fix → re-confirm neutralized — for every
//! vulnerability class.

use wap::{parse, ToolConfig, WapTool};
use wap_interp::confirm;

/// (class label, vulnerable source) — one per confirmable class.
const CASES: &[(&str, &str)] = &[
    (
        "SQLI",
        "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM users WHERE id = '$id'\");\n",
    ),
    ("XSS", "<?php\necho 'Hello ' . $_GET['name'];\n"),
    ("OSCI", "<?php\nsystem('ping ' . $_GET['host']);\n"),
    ("LFI", "<?php\ninclude 'pages/' . $_GET['page'] . '.php';\n"),
    (
        "LDAPI",
        "<?php\n$u = $_POST['u'];\nldap_search($conn, $dn, \"(uid=$u)\");\n",
    ),
    ("HI", "<?php\nheader('Location: ' . $_GET['to']);\n"),
    ("SF", "<?php\nsession_id($_GET['sid']);\n"),
    (
        "CS",
        "<?php\nfile_put_contents('c.html', $_POST['body']);\n",
    ),
    (
        "NOSQLI",
        "<?php\n$col->find(array('name' => $_GET['name']));\n",
    ),
];

#[test]
fn detect_confirm_fix_reconfirm_for_every_class() {
    let tool = WapTool::new(ToolConfig::wape_full());
    for (label, src) in CASES {
        // 1. detect
        let files = vec![("t.php".to_string(), src.to_string())];
        let report = tool.analyze_sources(&files);
        assert!(!report.findings.is_empty(), "{label}: nothing detected");
        let candidate = &report.findings[0].candidate;

        // 2. confirm the exploit dynamically
        let program = parse(src).unwrap();
        let before = confirm(tool.catalog(), &[&program], candidate);
        assert!(
            before.exploitable,
            "{label}: payload should reach the sink: {before:?}"
        );

        // 3. fix
        let fixed = tool.fix_file("t.php", src, &report);
        assert!(!fixed.applied.is_empty(), "{label}: no fix applied");
        let fixed_program = parse(&fixed.fixed_source)
            .unwrap_or_else(|e| panic!("{label}: fixed source invalid: {e}"));

        // 4. re-confirm: the very same attack is now neutralized
        let after = confirm(tool.catalog(), &[&fixed_program], candidate);
        assert!(
            !after.exploitable,
            "{label}: fix did not neutralize the payload:\n{}\n{after:?}",
            fixed.fixed_source
        );
    }
}

#[test]
fn predicted_false_positives_are_dynamically_unexploitable() {
    // the predictor's FP verdicts agree with dynamic confirmation
    let tool = WapTool::new(ToolConfig::wape_full());
    let guarded = r#"<?php
$id = $_GET['id'];
if (!preg_match('/^[0-9]+$/', $id)) { exit('bad'); }
if (isset($_GET['id'])) {
    mysql_query("SELECT name FROM users WHERE id = '$id'");
}
"#;
    let files = vec![("g.php".to_string(), guarded.to_string())];
    let report = tool.analyze_sources(&files);
    assert_eq!(report.findings.len(), 1);
    let finding = &report.findings[0];
    assert!(!finding.is_real(), "predictor calls it FP");
    let program = parse(guarded).unwrap();
    let conf = confirm(tool.catalog(), &[&program], &finding.candidate);
    assert!(!conf.exploitable, "dynamic confirmation agrees: {conf:?}");
}

#[test]
fn unpredicted_fp_is_also_unexploitable_but_reported() {
    // the 18 residual FPs of §V-A: reported as real, dynamically safe
    let tool = WapTool::new(ToolConfig::wape_full());
    let src = r#"<?php
function escape($v) { return str_replace(array("'", '"'), array("''", ''), $v); }
$n = escape($_POST['n']);
mysql_query("SELECT * FROM t WHERE n = '$n'");
"#;
    let files = vec![("vfront.php".to_string(), src.to_string())];
    let report = tool.analyze_sources(&files);
    assert_eq!(report.findings.len(), 1);
    assert!(
        report.findings[0].is_real(),
        "escape() is unknown: reported real"
    );
    let program = parse(src).unwrap();
    let conf = confirm(tool.catalog(), &[&program], &report.findings[0].candidate);
    assert!(
        !conf.exploitable,
        "the user sanitizer actually works — this is the FP the predictor missed: {conf:?}"
    );
}

#[test]
fn wordpress_weapon_findings_confirm() {
    let tool = WapTool::new(ToolConfig::wape_full());
    let src = r#"<?php
global $wpdb;
$title = $_POST['title'];
$wpdb->query("SELECT * FROM wp_posts WHERE post_title = '$title'");
"#;
    let files = vec![("plugin.php".to_string(), src.to_string())];
    let report = tool.analyze_sources(&files);
    assert_eq!(report.findings.len(), 1);
    let program = parse(src).unwrap();
    let conf = confirm(tool.catalog(), &[&program], &report.findings[0].candidate);
    assert!(conf.exploitable, "{conf:?}");
    // prepared statement defeats it
    let safe = parse(
        r#"<?php
$sql = $wpdb->prepare("SELECT * FROM wp_posts WHERE post_title = %s", $_POST['title']);
$wpdb->query($sql);
"#,
    )
    .unwrap();
    let conf = confirm(tool.catalog(), &[&safe], &report.findings[0].candidate);
    assert!(!conf.exploitable, "{conf:?}");
}
