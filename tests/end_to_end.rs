//! End-to-end integration tests: detect → predict → fix for every
//! vulnerability class, across crate boundaries.

use wap::{ToolConfig, VulnClass, WapTool};

/// One vulnerable snippet per class (with the weapons loaded).
fn cases() -> Vec<(VulnClass, &'static str)> {
    vec![
        (
            VulnClass::Sqli,
            "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
        ),
        (
            VulnClass::XssReflected,
            "<?php\necho 'Hi ' . $_GET['name'];\n",
        ),
        (
            VulnClass::XssStored,
            "<?php\n$fh = fopen('c.txt', 'a');\nfwrite($fh, $_POST['c']);\n",
        ),
        (VulnClass::Rfi, "<?php\ninclude $_GET['module'];\n"),
        (
            VulnClass::Lfi,
            "<?php\ninclude 'mod/' . $_GET['m'] . '.php';\n",
        ),
        (
            VulnClass::DirTraversal,
            "<?php\nunlink('up/' . $_POST['f']);\n",
        ),
        (VulnClass::Scd, "<?php\nreadfile($_GET['doc']);\n"),
        (VulnClass::Osci, "<?php\nsystem('ls ' . $_GET['d']);\n"),
        (
            VulnClass::Phpci,
            "<?php\neval('$v = ' . $_POST['expr'] . ';');\n",
        ),
        (
            VulnClass::LdapI,
            "<?php\nldap_search($c, $b, '(uid=' . $_GET['u'] . ')');\n",
        ),
        (
            VulnClass::XpathI,
            "<?php\nxpath_eval($x, \"//u[n='\" . $_POST['n'] . \"']\");\n",
        ),
        (
            VulnClass::NoSqlI,
            "<?php\n$col->find(array('k' => $_GET['k']));\n",
        ),
        (
            VulnClass::CommentSpam,
            "<?php\nfile_put_contents('c.html', $_POST['body']);\n",
        ),
        (
            VulnClass::HeaderI,
            "<?php\nheader('Location: ' . $_GET['to']);\n",
        ),
        (
            VulnClass::EmailI,
            "<?php\nmail($_POST['to'], 'subj', 'msg');\n",
        ),
        (
            VulnClass::SessionFixation,
            "<?php\nsession_id($_GET['sid']);\n",
        ),
    ]
}

#[test]
fn wape_detects_all_fifteen_classes() {
    let tool = WapTool::new(ToolConfig::wape_full());
    for (class, src) in cases() {
        let files = vec![("t.php".to_string(), src.to_string())];
        let report = tool.analyze_sources(&files);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.candidate.class.acronym() == class.acronym()),
            "{class} not detected in:\n{src}\nfound: {:?}",
            report
                .findings
                .iter()
                .map(|f| f.candidate.headline())
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_class_fix_removes_the_finding() {
    let tool = WapTool::new(ToolConfig::wape_full());
    for (class, src) in cases() {
        let files = vec![("t.php".to_string(), src.to_string())];
        let report = tool.analyze_sources(&files);
        let fixed = tool.fix_file("t.php", src, &report);
        assert!(!fixed.applied.is_empty(), "{class}: no fix applied");
        // re-parse sanity
        wap::parse(&fixed.fixed_source).unwrap_or_else(|e| {
            panic!("{class}: fixed source invalid: {e}\n{}", fixed.fixed_source)
        });
        // re-analyze with the fix sanitizers registered
        let mut verifier = WapTool::new(ToolConfig::wape_full());
        for (name, classes) in &fixed.sanitizers {
            verifier.catalog_mut().add_user_sanitizer(name, classes);
        }
        let after = verifier.analyze_sources(&[("t.php".to_string(), fixed.fixed_source.clone())]);
        assert!(
            after.findings.is_empty(),
            "{class}: fix did not silence the finding:\n{}",
            fixed.fixed_source
        );
    }
}

#[test]
fn wap_v21_parity_on_original_classes() {
    // question 2 of §V: the new version still detects what v2.1 detected
    let v21 = WapTool::new(ToolConfig::wap_v21());
    let wape = WapTool::new(ToolConfig::wape_full());
    for (class, src) in cases() {
        if !class.in_original_wap() {
            continue;
        }
        let files = vec![("t.php".to_string(), src.to_string())];
        let old = v21.analyze_sources(&files).findings.len();
        let new = wape.analyze_sources(&files).findings.len();
        assert!(old >= 1, "{class}: v2.1 should detect its own classes");
        assert!(new >= old, "{class}: WAPe regressed vs v2.1");
    }
}

#[test]
fn wap_v21_blind_to_new_classes() {
    let v21 = WapTool::new(ToolConfig::wap_v21());
    for (class, src) in cases() {
        if class.in_original_wap() {
            continue;
        }
        let files = vec![("t.php".to_string(), src.to_string())];
        let report = v21.analyze_sources(&files);
        assert!(
            report
                .findings
                .iter()
                .all(|f| f.candidate.class.acronym() != class.acronym()),
            "{class} should be invisible to WAP v2.1"
        );
    }
}

#[test]
fn predictor_separates_guarded_from_raw() {
    let tool = WapTool::new(ToolConfig::wape_full());
    let guarded = r#"<?php
$id = $_GET['id'];
if (!is_numeric($id) || !isset($_GET['id'])) { exit('bad'); }
mysql_query("SELECT name FROM users WHERE id = $id");
"#;
    let raw = r#"<?php
$id = $_GET['id'];
mysql_query("SELECT name FROM users WHERE id = $id");
"#;
    let g = tool.analyze_sources(&[("g.php".into(), guarded.into())]);
    let r = tool.analyze_sources(&[("r.php".into(), raw.into())]);
    assert_eq!(g.findings.len(), 1);
    assert_eq!(r.findings.len(), 1);
    assert!(
        !g.findings[0].is_real(),
        "guarded flow should be predicted FP"
    );
    assert!(r.findings[0].is_real(), "raw flow should be reported real");
}

#[test]
fn multi_file_application_analysis() {
    let tool = WapTool::new(ToolConfig::wape_full());
    let files = vec![
        (
            "lib/db.php".to_string(),
            "<?php\nfunction run_query($db, $sql) { return mysql_query($sql, $db); }\n".to_string(),
        ),
        (
            "index.php".to_string(),
            "<?php\ninclude 'lib/db.php';\nrun_query($conn, \"SELECT \" . $_GET['cols'] . \" FROM t\");\n"
                .to_string(),
        ),
    ];
    let report = tool.analyze_sources(&files);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.candidate.class, VulnClass::Sqli);
    // the sink is inside lib/db.php, reached from index.php
    assert!(f
        .candidate
        .path
        .iter()
        .any(|s| s.what.contains("run_query")));
}

#[test]
fn report_totals_are_consistent() {
    let tool = WapTool::new(ToolConfig::wape_full());
    let files = vec![(
        "mix.php".to_string(),
        r#"<?php
echo $_GET['a'];
$b = $_GET['b'];
if (!ctype_digit($b) || !isset($_GET['b'])) { exit; }
mysql_query("SELECT * FROM t WHERE x = $b");
$c = htmlentities($_GET['c']);
echo $c;
"#
        .to_string(),
    )];
    let report = tool.analyze_sources(&files);
    assert_eq!(
        report.findings.len(),
        report.real_vulnerabilities().count() + report.predicted_false_positives().count()
    );
    assert_eq!(report.findings.len(), 2, "sanitized flow is silent");
    assert_eq!(report.parse_errors.len(), 0);
}
