//! Robustness of the persistent incremental cache: a corrupted, tampered,
//! or stale cache directory may cost re-analysis time, never correctness
//! — and never a panic.

use std::path::{Path, PathBuf};

use wap::cache::ENTRY_FORMAT_VERSION;
use wap::core::{AppReport, ToolConfig, WapTool};
use wap::php::Blake2s;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wap-cache-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sources() -> Vec<(String, String)> {
    vec![
        (
            "lib.php".to_string(),
            "<?php\nfunction fetch_param($k) { return $_GET[$k]; }\nfunction shield($v) { return htmlentities($v); }\n"
                .to_string(),
        ),
        (
            "page.php".to_string(),
            "<?php\n$q = fetch_param('q');\nmysql_query(\"SELECT * FROM t WHERE c = '$q'\");\necho shield($q);\necho $q;\n"
                .to_string(),
        ),
        (
            "guarded.php".to_string(),
            "<?php\n$id = $_GET['id'];\nif (!is_numeric($id)) { exit; }\nmysql_query(\"SELECT 1 WHERE x = $id\");\n"
                .to_string(),
        ),
        ("broken.php".to_string(), "<?php $x = ;\n".to_string()),
    ]
}

/// Everything the analysis decided, as comparable text.
fn fingerprint(report: &AppReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}:{}:[{}]:real={}:votes={}:[{}]:{:?}\n",
            f.candidate.file.as_deref().unwrap_or("<input>"),
            f.candidate.line,
            f.candidate.class,
            f.candidate.sink,
            f.candidate.sources.join(","),
            f.is_real(),
            f.prediction.votes,
            f.prediction.justification.join(","),
            f.symptoms.features,
        ));
    }
    out.push_str(&format!(
        "files={} loc={} parse_errors={}\n",
        report.files_analyzed,
        report.loc,
        report.parse_errors.len()
    ));
    out
}

fn entry_files(dir: &Path) -> Vec<PathBuf> {
    fn walk(p: &Path, out: &mut Vec<PathBuf>) {
        if p.is_dir() {
            for e in std::fs::read_dir(p).unwrap() {
                walk(&e.unwrap().path(), out);
            }
        } else {
            out.push(p.to_path_buf());
        }
    }
    let mut out = Vec::new();
    walk(dir, &mut out);
    out.sort();
    out
}

#[test]
fn corrupted_entries_are_discarded_never_believed() {
    let dir = temp_dir("corrupt");
    let files = sources();
    let cold = fingerprint(&WapTool::new(ToolConfig::wape()).analyze_sources(&files));

    // populate the cache
    let tool = WapTool::new(ToolConfig::builder().no_weapons().cache_dir(&dir).build());
    assert_eq!(cold, fingerprint(&tool.analyze_sources(&files)));
    let entries = entry_files(&dir);
    assert!(!entries.is_empty(), "populated cache has entry files");

    // damage every entry, rotating through truncation / garbage / bit-flip
    for (k, path) in entries.iter().enumerate() {
        let raw = std::fs::read(path).unwrap();
        match k % 3 {
            0 => std::fs::write(path, &raw[..raw.len() / 2]).unwrap(),
            1 => std::fs::write(path, b"this is not a cache entry").unwrap(),
            _ => {
                let mut raw = raw;
                let last = raw.len() - 1;
                raw[last] ^= 0x40;
                std::fs::write(path, &raw).unwrap();
            }
        }
    }

    // a fresh tool sees only damaged entries: discard, recompute, rewrite
    let report = WapTool::new(ToolConfig::builder().no_weapons().cache_dir(&dir).build()).analyze_sources(&files);
    assert_eq!(cold, fingerprint(&report), "corruption changed findings");
    assert!(
        report.cache.corrupt_discarded > 0,
        "damaged entries must be counted: {:?}",
        report.cache
    );

    // the rewritten entries serve a clean warm run again
    let warm = WapTool::new(ToolConfig::builder().no_weapons().cache_dir(&dir).build()).analyze_sources(&files);
    assert_eq!(cold, fingerprint(&warm));
    assert_eq!(warm.cache.misses, 0, "cache must heal after corruption");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn elder_format_version_entries_are_invalidated() {
    let dir = temp_dir("elder");
    let files = sources();
    let cold = fingerprint(&WapTool::new(ToolConfig::wape()).analyze_sources(&files));
    WapTool::new(ToolConfig::builder().no_weapons().cache_dir(&dir).build()).analyze_sources(&files);

    // rewrite every frame's version field to an older generation
    assert_eq!(ENTRY_FORMAT_VERSION, 1, "update this test with the format");
    for path in entry_files(&dir) {
        let mut raw = std::fs::read(&path).unwrap();
        raw[4..8].copy_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &raw).unwrap();
    }

    let report = WapTool::new(ToolConfig::builder().no_weapons().cache_dir(&dir).build()).analyze_sources(&files);
    assert_eq!(cold, fingerprint(&report));
    assert!(report.cache.invalidations > 0, "{:?}", report.cache);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The nastiest case: a frame whose checksum verifies (so the store layer
/// accepts it) but whose payload is garbage at the artifact level. The
/// payload decoders must reject it and the pipeline must recompute.
#[test]
fn well_framed_garbage_payloads_are_rejected_at_decode() {
    let dir = temp_dir("framed-garbage");
    let files = sources();
    let cold = fingerprint(&WapTool::new(ToolConfig::wape()).analyze_sources(&files));
    WapTool::new(ToolConfig::builder().no_weapons().cache_dir(&dir).build()).analyze_sources(&files);

    for path in entry_files(&dir) {
        let payload = b"total nonsense that is not a serialized artifact";
        let mut framed = Vec::new();
        framed.extend_from_slice(b"WAPC");
        framed.extend_from_slice(&ENTRY_FORMAT_VERSION.to_le_bytes());
        framed.extend_from_slice(&Blake2s::hash(payload));
        framed.extend_from_slice(payload);
        std::fs::write(&path, &framed).unwrap();
    }

    let report = WapTool::new(ToolConfig::builder().no_weapons().cache_dir(&dir).build()).analyze_sources(&files);
    assert_eq!(
        cold,
        fingerprint(&report),
        "tampered payloads changed findings"
    );
    assert!(report.cache.corrupt_discarded > 0, "{:?}", report.cache);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Function-granular invalidation: editing one function's body re-keys
/// only that file and the files that transitively reference the function.
/// Files depending on *other* functions keep serving from cache.
#[test]
fn one_function_edit_invalidates_only_its_dependents() {
    let base: Vec<(String, String)> = vec![
        (
            "lib_a.php".to_string(),
            "<?php\nfunction fetch_a() { return $_GET['a']; }\n".to_string(),
        ),
        (
            "lib_b.php".to_string(),
            "<?php\nfunction fetch_b() { return $_GET['b']; }\n".to_string(),
        ),
        (
            "page_a.php".to_string(),
            "<?php\n$x = fetch_a();\nmysql_query(\"SELECT * FROM t WHERE a = '$x'\");\n"
                .to_string(),
        ),
        (
            "page_b.php".to_string(),
            "<?php\n$y = fetch_b();\nmysql_query(\"SELECT * FROM t WHERE b = '$y'\");\n"
                .to_string(),
        ),
    ];

    let mut tool = WapTool::new(ToolConfig::builder().no_weapons().build());
    tool.enable_memory_cache();
    let cold = tool.analyze_sources(&base);
    for page in ["page_a.php", "page_b.php"] {
        assert!(
            cold.findings
                .iter()
                .any(|f| f.candidate.file.as_deref() == Some(page)),
            "cross-file taint through the helper must flag {page}"
        );
    }
    let warm = tool.analyze_sources(&base);
    assert_eq!(fingerprint(&cold), fingerprint(&warm));
    assert_eq!(warm.cache.misses, 0, "{:?}", warm.cache);

    // edit exactly one function's body
    let mut edited = base.clone();
    edited[0].1 = "<?php\nfunction fetch_a() { return $_GET['a_changed']; }\n".to_string();

    let rescan = tool.analyze_sources(&edited);
    let cold_edited =
        WapTool::new(ToolConfig::builder().no_weapons().build()).analyze_sources(&edited);
    assert_eq!(
        fingerprint(&cold_edited),
        fingerprint(&rescan),
        "warm rescan after the edit diverged from a cold run"
    );

    // decl stage:     only lib_a.php's content changed       → 1 miss, 3 hits
    // pass stage:     lib_a.php + dependent page_a.php re-key → 2 misses, 2 hits
    // findings stage: only page_a.php's group re-keys         → 1 miss, 1 hit
    // page_b.php and lib_b.php never recompute anything: an app-wide
    // functions digest would have missed all four pass entries instead.
    assert_eq!(rescan.cache.misses, 4, "{:?}", rescan.cache);
    assert_eq!(rescan.cache.hits, 6, "{:?}", rescan.cache);
}

/// Lint findings as comparable text (the lint analog of [`fingerprint`]).
fn lint_fingerprint(report: &AppReport) -> String {
    let mut out = String::new();
    for l in &report.lint {
        out.push_str(&format!(
            "{}:{}:{}:{}:{}\n",
            l.file,
            l.line,
            l.rule_id,
            l.severity.as_str(),
            l.message
        ));
    }
    out
}

/// Installing (or upgrading) a rule pack re-keys exactly the `cfg` cache
/// entries: the analysis stages (decl/pass/findings) keep their keys and
/// stay warm, pack-less `cfg` keys stay valid for pack-less runs, and a
/// pack run mints one new `cfg` entry per lintable file.
#[test]
fn pack_install_rekeys_only_cfg_entries() {
    let dir = temp_dir("pack-rekey");
    let files = sources();
    let lintable = 3; // broken.php parse-fails, so it caches no cfg entry
    let run = |packs: Vec<wap::rules::RulePack>| {
        let tool = WapTool::new(
            ToolConfig::builder()
                .no_weapons()
                .cache_dir(&dir)
                .rule_packs(packs)
                .build(),
        );
        let mut report = tool.analyze_sources(&files);
        tool.apply_lint(&mut report, &files);
        report
    };

    let cold = run(Vec::new());
    let baseline = entry_files(&dir);
    let warm = run(Vec::new());
    assert_eq!(warm.cache.misses, 0, "{:?}", warm.cache);
    assert_eq!(baseline, entry_files(&dir), "warm run minted new entries");
    assert_eq!(fingerprint(&cold), fingerprint(&warm));
    assert_eq!(lint_fingerprint(&cold), lint_fingerprint(&warm));

    // a pack run re-keys the cfg entries and nothing else: the analysis
    // stages stay fully warm, and exactly one new entry appears per
    // lintable file
    let packed = run(vec![wap::rules::RulePack::wordpress()]);
    assert_eq!(
        packed.cache.misses, 0,
        "pack must not invalidate analysis entries: {:?}",
        packed.cache
    );
    let with_pack = entry_files(&dir);
    assert_eq!(with_pack.len(), baseline.len() + lintable);
    assert!(
        baseline.iter().all(|e| with_pack.contains(e)),
        "pack install must not evict pack-less entries"
    );

    // the pack-keyed entries serve a warm pack run; the pack-less keys
    // still serve a pack-less run — neither mints anything new
    let packed_warm = run(vec![wap::rules::RulePack::wordpress()]);
    assert_eq!(packed_warm.cache.misses, 0, "{:?}", packed_warm.cache);
    assert_eq!(lint_fingerprint(&packed), lint_fingerprint(&packed_warm));
    let plain = run(Vec::new());
    assert_eq!(plain.cache.misses, 0, "{:?}", plain.cache);
    assert_eq!(lint_fingerprint(&cold), lint_fingerprint(&plain));
    assert_eq!(with_pack, entry_files(&dir), "no further entries minted");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A default (no-pack) lint run must be byte-identical to the historical
/// single-path lint output at every job count, cold or warm — the rule
/// engine swap and the pack-aware cache key must be invisible without
/// packs.
#[test]
fn no_pack_lint_runs_are_byte_identical_across_jobs_and_cache() {
    let files = sources();
    let render = |jobs: usize, cache_dir: Option<&Path>, explicit_empty: bool| {
        let mut builder = ToolConfig::builder().no_weapons().jobs(jobs);
        if let Some(dir) = cache_dir {
            builder = builder.cache_dir(dir);
        }
        let tool = WapTool::new(builder.build());
        let mut report = tool.analyze_sources(&files);
        if explicit_empty {
            tool.apply_lint_with(&mut report, &files, &[]).unwrap();
        } else {
            tool.apply_lint(&mut report, &files);
        }
        (fingerprint(&report), lint_fingerprint(&report))
    };

    let reference = render(1, None, false);
    assert!(!reference.1.is_empty(), "fixture app must produce lint findings");
    for jobs in [2usize, 8] {
        assert_eq!(reference, render(jobs, None, false), "jobs={jobs} diverged");
    }
    // apply_lint_with an explicit empty pack list is the same single path
    assert_eq!(reference, render(1, None, true));
    let dir = temp_dir("nopack-bytes");
    for label in ["cold", "warm"] {
        assert_eq!(
            reference,
            render(4, Some(&dir), false),
            "{label} cached run diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Values-mode (`--values`) caching: a warm run replays the resolved
/// cross-include flow exactly, and editing the *included* file — whose
/// content only reaches the includer through the resolved dynamic edge —
/// must invalidate the includer's cached artifacts, not replay them.
#[test]
fn values_mode_cache_invalidates_when_an_included_file_changes() {
    let dir = temp_dir("values-include");
    let base: Vec<(String, String)> = vec![
        (
            "index.php".to_string(),
            "<?php\n$base = \"lib\";\n$id = $_GET['id'];\ninclude $base . \"/db.php\";\n"
                .to_string(),
        ),
        (
            "lib/db.php".to_string(),
            "<?php\nmysql_query(\"SELECT * FROM users WHERE id = \" . $id);\n".to_string(),
        ),
    ];
    let cacheless = |files: &[(String, String)]| {
        let tool = WapTool::new(ToolConfig::builder().no_weapons().values(true).build());
        fingerprint(&tool.analyze_sources(files))
    };
    let cached = |files: &[(String, String)]| {
        let tool = WapTool::new(
            ToolConfig::builder()
                .no_weapons()
                .cache_dir(&dir)
                .values(true)
                .build(),
        );
        tool.analyze_sources(files)
    };

    let cold = cacheless(&base);
    assert!(
        cold.contains("mysql_query"),
        "values mode must surface the cross-include flow: {cold}"
    );
    assert_eq!(cold, fingerprint(&cached(&base)), "populating run diverged");
    let warm = cached(&base);
    assert_eq!(cold, fingerprint(&warm), "warm values run diverged");
    assert_eq!(warm.cache.misses, 0, "fully warm values run must not miss");

    // rewrite the included file so the sink vanishes: the includer's
    // finding must vanish with it instead of replaying from the cache
    let mut edited = base.clone();
    edited[1].1 = "<?php\n$safe = 1;\n".to_string();
    let cold_edited = cacheless(&edited);
    assert_ne!(cold, cold_edited, "the edit must change the findings");
    assert_eq!(
        cold_edited,
        fingerprint(&cached(&edited)),
        "warm rescan after editing the included file diverged from cold"
    );

    // and restoring the original serves the original findings again
    assert_eq!(cold, fingerprint(&cached(&base)));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The second-order (stored XSS) pass caches its own pass entries; warm
/// runs must reproduce it exactly, including the store→fetch trigger.
#[test]
fn second_order_pass_warm_run_matches_cold() {
    let files = vec![
        (
            "store.php".to_string(),
            "<?php\n$c = $_POST['comment'];\nmysql_query(\"INSERT INTO comments VALUES ('$c')\");\n"
                .to_string(),
        ),
        (
            "show.php".to_string(),
            "<?php\n$r = mysql_query(\"SELECT * FROM comments\");\n$row = mysql_fetch_assoc($r);\necho $row['comment'];\n"
                .to_string(),
        ),
    ];
    let mut config = ToolConfig::wape();
    config.analysis.second_order = true;

    let cold_report = WapTool::new(config.clone()).analyze_sources(&files);
    let cold = fingerprint(&cold_report);
    assert!(
        cold_report
            .findings
            .iter()
            .any(|f| f.candidate.file.as_deref() == Some("show.php")),
        "second-order pass must flag the stored-data echo: {cold}"
    );

    let mut tool = WapTool::new(config);
    tool.enable_memory_cache();
    assert_eq!(cold, fingerprint(&tool.analyze_sources(&files)));
    let warm = tool.analyze_sources(&files);
    assert_eq!(cold, fingerprint(&warm), "warm second-order run diverged");
    assert_eq!(warm.cache.misses, 0);
}
