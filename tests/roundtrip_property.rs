//! Seeded round-trip property over the generated corpus.
//!
//! For every file the corpus generator emits across a spread of seeds:
//! parse → print → re-parse → print must converge — the second printing is
//! byte-identical to the first, and the printed form's content fingerprint
//! is stable. This is the contract the incremental cache and the CFG
//! lowering both lean on: `print_program` is a canonical form, and
//! `content_hash` of that form is a stable identity for it. The test is
//! self-comparing (no golden), so it runs unchanged in the air-gapped
//! harness and in CI.

use wap::corpus::specs::vulnerable_webapps;
use wap::corpus::generate_webapp;
use wap::php::{content_hash, parse, print_program};

#[test]
fn parse_print_roundtrip_converges_across_seeds() {
    let specs = vulnerable_webapps();
    let mut files = 0usize;
    for seed in [1u64, 42, 777, 9001] {
        for (i, spec) in specs.iter().enumerate() {
            let app = generate_webapp(spec, 0.05, seed.wrapping_mul(131).wrapping_add(i as u64));
            for file in &app.files {
                let program = parse(&file.source)
                    .unwrap_or_else(|e| panic!("seed {seed} {}: parse failed: {e}", file.name));
                let printed = print_program(&program);
                let reparsed = parse(&printed).unwrap_or_else(|e| {
                    panic!("seed {seed} {}: printed form does not re-parse: {e}", file.name)
                });
                let reprinted = print_program(&reparsed);
                assert_eq!(
                    printed, reprinted,
                    "seed {seed} {}: printing is not a fixed point",
                    file.name
                );
                assert_eq!(
                    content_hash(&printed),
                    content_hash(&reprinted),
                    "seed {seed} {}: canonical fingerprint unstable",
                    file.name
                );
                files += 1;
            }
        }
    }
    assert!(files >= 40, "corpus too small to be meaningful: {files} files");
}

/// Splitmix64 — a tiny self-contained generator so this property needs no
/// corpus or rand crate: it exercises the interner + arena front end alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// An identifier with seed-dependent case per letter, so symbols whose
    /// lowercase forms collide (`Render`, `RENDER`, `render`) all appear.
    fn ident(&mut self, stem: &str) -> String {
        stem.chars()
            .map(|c| {
                if self.next() % 2 == 0 {
                    c.to_ascii_uppercase()
                } else {
                    c.to_ascii_lowercase()
                }
            })
            .collect()
    }
}

/// Interning + arena round-trip: identifiers flow source → lexer → interner
/// → arena AST → printer, and the printed bytes must be a fixed point under
/// re-parsing. Mixed-case identifiers additionally pin down that the
/// printer emits the symbol's original spelling, never the precomputed
/// lowercase twin the engine uses for case-insensitive lookups.
#[test]
fn interned_identifiers_roundtrip_byte_for_byte_across_seeds() {
    for seed in [3u64, 17, 101, 65537, 0xDEAD_BEEF] {
        let mut rng = Rng(seed);
        let n_funcs = 2 + (rng.next() % 4) as usize;
        let mut names = Vec::new();
        let mut src = String::from("<?php\n");
        for i in 0..n_funcs {
            let name = format!("{}_{i}", rng.ident("helper_fn"));
            let var = rng.ident("localvar");
            src.push_str(&format!(
                "function {name}($a, $b) {{ ${var} = $a . $b; return ${var}; }}\n"
            ));
            names.push(name);
        }
        for (i, name) in names.iter().enumerate() {
            src.push_str(&format!("$v{i} = {name}($_GET['k{i}'], 'lit');\n"));
            src.push_str(&format!(
                "mysql_query(\"SELECT * FROM t WHERE c = '$v{i}'\");\n"
            ));
            src.push_str(&format!("echo htmlentities($v{i});\n"));
        }

        let program = parse(&src).unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}"));
        let printed = print_program(&program);
        for name in &names {
            assert!(
                printed.contains(name.as_str()),
                "seed {seed}: printed form lost the original spelling of {name}"
            );
        }
        let reparsed =
            parse(&printed).unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}"));
        let reprinted = print_program(&reparsed);
        assert_eq!(printed, reprinted, "seed {seed}: printing is not a fixed point");
        assert_eq!(content_hash(&printed), content_hash(&reprinted));
    }
}

#[test]
fn roundtrip_holds_for_the_lint_fixture_and_cfg_shapes() {
    // hand-written shapes the corpus generator does not emit: guard
    // ladders, loops with break/continue, try/catch, assignment-in-condition
    let snippets = [
        "<?php if (is_numeric($id)) { mysql_query($id); } else { exit; }",
        "<?php while ($r = next_row()) { if ($r < 0) { continue; } echo $r; break; }",
        "<?php try { risky(); } catch (Exception $e) { log_err($e); } echo done();",
        "<?php function f($x) { $y = (int)$x; for ($i = 0; $i < $y; $i++) { echo $i; } return $y; }",
        "<?php $name = $_GET['name'];\necho htmlentities($name);\nif ($mode = 1) {\n    echo \"admin view\";\n}\nexit;\necho \"never reached\";",
    ];
    for (i, src) in snippets.iter().enumerate() {
        let printed = print_program(&parse(src).unwrap_or_else(|e| panic!("snippet {i}: {e}")));
        let reprinted =
            print_program(&parse(&printed).unwrap_or_else(|e| panic!("snippet {i} reparse: {e}")));
        assert_eq!(printed, reprinted, "snippet {i}: not a fixed point");
    }
}
