//! Seeded round-trip property over the generated corpus.
//!
//! For every file the corpus generator emits across a spread of seeds:
//! parse → print → re-parse → print must converge — the second printing is
//! byte-identical to the first, and the printed form's content fingerprint
//! is stable. This is the contract the incremental cache and the CFG
//! lowering both lean on: `print_program` is a canonical form, and
//! `content_hash` of that form is a stable identity for it. The test is
//! self-comparing (no golden), so it runs unchanged in the air-gapped
//! harness and in CI.

use wap::corpus::specs::vulnerable_webapps;
use wap::corpus::generate_webapp;
use wap::php::{content_hash, parse, print_program};

#[test]
fn parse_print_roundtrip_converges_across_seeds() {
    let specs = vulnerable_webapps();
    let mut files = 0usize;
    for seed in [1u64, 42, 777, 9001] {
        for (i, spec) in specs.iter().enumerate() {
            let app = generate_webapp(spec, 0.05, seed.wrapping_mul(131).wrapping_add(i as u64));
            for file in &app.files {
                let program = parse(&file.source)
                    .unwrap_or_else(|e| panic!("seed {seed} {}: parse failed: {e}", file.name));
                let printed = print_program(&program);
                let reparsed = parse(&printed).unwrap_or_else(|e| {
                    panic!("seed {seed} {}: printed form does not re-parse: {e}", file.name)
                });
                let reprinted = print_program(&reparsed);
                assert_eq!(
                    printed, reprinted,
                    "seed {seed} {}: printing is not a fixed point",
                    file.name
                );
                assert_eq!(
                    content_hash(&printed),
                    content_hash(&reprinted),
                    "seed {seed} {}: canonical fingerprint unstable",
                    file.name
                );
                files += 1;
            }
        }
    }
    assert!(files >= 40, "corpus too small to be meaningful: {files} files");
}

#[test]
fn roundtrip_holds_for_the_lint_fixture_and_cfg_shapes() {
    // hand-written shapes the corpus generator does not emit: guard
    // ladders, loops with break/continue, try/catch, assignment-in-condition
    let snippets = [
        "<?php if (is_numeric($id)) { mysql_query($id); } else { exit; }",
        "<?php while ($r = next_row()) { if ($r < 0) { continue; } echo $r; break; }",
        "<?php try { risky(); } catch (Exception $e) { log_err($e); } echo done();",
        "<?php function f($x) { $y = (int)$x; for ($i = 0; $i < $y; $i++) { echo $i; } return $y; }",
        "<?php $name = $_GET['name'];\necho htmlentities($name);\nif ($mode = 1) {\n    echo \"admin view\";\n}\nexit;\necho \"never reached\";",
    ];
    for (i, src) in snippets.iter().enumerate() {
        let printed = print_program(&parse(src).unwrap_or_else(|e| panic!("snippet {i}: {e}")));
        let reprinted =
            print_program(&parse(&printed).unwrap_or_else(|e| panic!("snippet {i} reparse: {e}")));
        assert_eq!(printed, reprinted, "snippet {i}: not a fixed point");
    }
}
