//! The runtime's central guarantee: analysis output is bit-identical for
//! every worker count. A ~100-file corpus is analyzed at jobs = 1, 2, 8
//! and the full reports (findings *and* their order) must match the
//! serial walk byte for byte.

use wap::core::cli::render_json;
use wap::core::{AppReport, ToolConfig, WapTool};
use wap::corpus::generate_webapp;
use wap::corpus::specs::vulnerable_webapps;

/// Builds one combined corpus out of several generated applications; the
/// per-app name prefix keeps file names unique.
fn corpus_sources() -> Vec<(String, String)> {
    let mut sources = Vec::new();
    for (i, spec) in vulnerable_webapps().into_iter().take(6).enumerate() {
        let app = generate_webapp(&spec, 0.1, 4242u64.wrapping_add(i as u64));
        for f in &app.files {
            sources.push((format!("app{i}/{}", f.name), f.source.clone()));
        }
    }
    sources
}

/// A canonical plain-text rendering of everything the analysis decided
/// (deliberately not JSON, so the comparison does not depend on a
/// serializer): per-finding identity, order, verdict, and justification,
/// plus the aggregate counters.
fn fingerprint(report: &AppReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}:{}:[{}]:real={}:[{}]\n",
            f.candidate.file.as_deref().unwrap_or("<input>"),
            f.candidate.line,
            f.candidate.class,
            f.candidate.sink,
            f.candidate.sources.join(","),
            f.is_real(),
            f.prediction.justification.join(","),
        ));
    }
    out.push_str(&format!(
        "files={} loc={} parse_errors={}\n",
        report.files_analyzed,
        report.loc,
        report.parse_errors.len()
    ));
    out
}

#[test]
fn findings_are_bit_identical_for_every_job_count() {
    let sources = corpus_sources();
    assert!(
        sources.len() >= 100,
        "corpus too small: {} files",
        sources.len()
    );

    let serial = WapTool::new(ToolConfig::builder().jobs(1).build());
    let baseline_report = serial.analyze_sources(&sources);
    assert!(
        !baseline_report.findings.is_empty(),
        "corpus must produce findings"
    );
    let baseline = fingerprint(&baseline_report);
    let baseline_json = render_json(&baseline_report);

    for jobs in [2usize, 8] {
        let tool = WapTool::new(ToolConfig::builder().jobs(jobs).build());
        let report = tool.analyze_sources(&sources);
        assert_eq!(
            baseline,
            fingerprint(&report),
            "jobs={jobs} diverged from the serial walk"
        );
        assert_eq!(
            baseline_json,
            render_json(&report),
            "jobs={jobs} JSON diverged"
        );
    }
}

/// The incremental cache must never change output: a cold run, a fully
/// warm run, and a partially invalidated run (files edited, added,
/// removed) must be bit-identical — at every job count.
#[test]
fn cached_runs_are_bit_identical_to_cold_at_every_job_count() {
    let mut sources = corpus_sources();
    let dir = std::env::temp_dir().join(format!(
        "wap-determinism-cache-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = |sources: &[(String, String)]| {
        fingerprint(&WapTool::new(ToolConfig::builder().jobs(1).build()).analyze_sources(sources))
    };
    let sweep = |sources: &[(String, String)], baseline: &str, label: &str| {
        for jobs in [1usize, 2, 8] {
            let tool = WapTool::new(ToolConfig::builder().jobs(jobs).cache_dir(&dir).build());
            let report = tool.analyze_sources(sources);
            assert_eq!(
                baseline,
                fingerprint(&report),
                "{label} cached run at jobs={jobs} diverged from cold"
            );
        }
    };

    let baseline = cold(&sources);
    sweep(&sources, &baseline, "populating");

    // fully warm: same sources, fresh tool per job count, zero re-analysis
    let warm_tool = WapTool::new(ToolConfig::builder().jobs(4).cache_dir(&dir).build());
    let warm = warm_tool.analyze_sources(&sources);
    assert_eq!(baseline, fingerprint(&warm), "fully warm run diverged");
    assert_eq!(warm.cache.misses, 0, "fully warm run must not miss");
    assert!(warm.cache.hits > 0);

    // partial invalidation #1: edit one file's top level (no declaration
    // change — every other file's taint artifacts stay valid)
    sources[0].1.push_str("\necho $_GET['cache_probe'];\n");
    let baseline = cold(&sources);
    sweep(&sources, &baseline, "edited-file");

    // partial invalidation #2: remove a file and add one declaring a new
    // function (the app-wide functions digest changes)
    sources.remove(1);
    sources.push((
        "appx/new_helper.php".to_string(),
        "<?php\nfunction cache_probe_helper($v) { return $v; }\necho cache_probe_helper($_GET['h']);\n"
            .to_string(),
    ));
    let baseline = cold(&sources);
    sweep(&sources, &baseline, "add-remove");

    let partial = WapTool::new(ToolConfig::builder().jobs(2).cache_dir(&dir).build())
        .analyze_sources(&sources);
    assert_eq!(baseline, fingerprint(&partial));
    assert_eq!(partial.cache.misses, 0, "repeat of same input must be warm");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Canonical rendering of a report's lint findings (rule, location, span,
/// severity, message) — everything `wap --lint` decides.
fn lint_fingerprint(report: &AppReport) -> String {
    let mut out = String::new();
    for l in &report.lint {
        out.push_str(&format!(
            "{}:{}:{}..{}:{}:{}:{}\n",
            l.file,
            l.line,
            l.span.start(),
            l.span.end(),
            l.rule_id,
            l.severity.as_str(),
            l.message,
        ));
    }
    out.push_str(&format!(
        "rules=[{}]\n",
        report
            .lint_rules
            .iter()
            .map(|r| r.id.as_str())
            .collect::<Vec<_>>()
            .join(",")
    ));
    out
}

/// Lint findings must be bit-identical at every job count, with tracing
/// on or off, and with a cold vs. warm cache.
#[test]
fn lint_findings_are_bit_identical_across_jobs_trace_and_cache() {
    let sources = corpus_sources();
    let dir = std::env::temp_dir().join(format!(
        "wap-determinism-lint-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let run = |tool: &WapTool| {
        let mut report = tool.analyze_sources(&sources);
        tool.apply_lint(&mut report, &sources);
        (fingerprint(&report) + &lint_fingerprint(&report), report)
    };

    let serial = WapTool::new(ToolConfig::builder().jobs(1).build());
    let (baseline, baseline_report) = run(&serial);
    assert!(
        !baseline_report.lint.is_empty(),
        "corpus must produce lint findings"
    );
    assert!(baseline_report.lint_ran);

    for jobs in [1usize, 2, 8] {
        for trace in [false, true] {
            let tool =
                WapTool::new(ToolConfig::builder().jobs(jobs).trace(trace).build());
            let (got, _) = run(&tool);
            assert_eq!(
                baseline, got,
                "lint diverged at jobs={jobs} trace={trace}"
            );
        }
    }

    // cold populate, then fully warm — both must match the cacheless run
    for label in ["cold", "warm"] {
        let tool = WapTool::new(ToolConfig::builder().jobs(4).cache_dir(&dir).build());
        let (got, report) = run(&tool);
        assert_eq!(baseline, got, "{label} cached lint run diverged");
        if label == "warm" {
            assert!(report.cache.hits > 0, "warm run must hit the cfg cache");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A warm cfg cache entry is keyed on the catalog fingerprint: linking a
/// weapon (which changes the fingerprint and contributes a lint rule)
/// must re-lint rather than replay stale cached findings.
#[test]
fn cfg_cache_invalidates_on_catalog_fingerprint_change() {
    let sources = vec![(
        "wp.php".to_string(),
        "<?php\n$q = $_POST['q'];\n$wpdb->query(\"SELECT * FROM posts WHERE title = '$q'\");\n"
            .to_string(),
    )];
    let dir = std::env::temp_dir().join(format!(
        "wap-determinism-cfg-inval-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let lint_with = |weapons: bool| {
        let builder = ToolConfig::builder().jobs(2).cache_dir(&dir);
        let builder = if weapons { builder } else { builder.no_weapons() };
        let tool = WapTool::new(builder.build());
        let mut report = tool.analyze_sources(&sources);
        tool.apply_lint(&mut report, &sources);
        report
    };

    // populate the cache without weapons, then twice with the full weapon
    // set: the second configuration must not see the first's entries
    let plain = lint_with(false);
    let with_weapons = lint_with(true);
    assert_ne!(
        lint_fingerprint(&plain),
        lint_fingerprint(&with_weapons),
        "weapon lint rules must change the findings"
    );
    assert!(
        with_weapons
            .lint_rules
            .iter()
            .any(|r| r.id == "WAP-WP-UNPREPARED-QUERY"),
        "weapon-declared rule missing from the rule table"
    );
    // a repeat of the weapon configuration is warm and identical
    let again = lint_with(true);
    assert_eq!(
        lint_fingerprint(&with_weapons),
        lint_fingerprint(&again),
        "same configuration must replay identically from the cache"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Guard-attribute refinement (`--guards`) must be deterministic across
/// job counts and cache states too — and must stay off by default.
#[test]
fn guard_attributes_are_deterministic_and_off_by_default() {
    let sources = corpus_sources();
    let dir = std::env::temp_dir().join(format!(
        "wap-determinism-guards-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let serial = WapTool::new(
        ToolConfig::builder()
            .jobs(1)
            .guard_attributes(true)
            .build(),
    );
    let baseline = fingerprint(&serial.analyze_sources(&sources));

    for jobs in [2usize, 8] {
        for trace in [false, true] {
            let tool = WapTool::new(
                ToolConfig::builder()
                    .jobs(jobs)
                    .trace(trace)
                    .guard_attributes(true)
                    .build(),
            );
            assert_eq!(
                baseline,
                fingerprint(&tool.analyze_sources(&sources)),
                "guarded analysis diverged at jobs={jobs} trace={trace}"
            );
        }
    }
    // cold + warm cached runs under the flag
    for label in ["cold", "warm"] {
        let tool = WapTool::new(
            ToolConfig::builder()
                .jobs(4)
                .cache_dir(&dir)
                .guard_attributes(true)
                .build(),
        );
        assert_eq!(
            baseline,
            fingerprint(&tool.analyze_sources(&sources)),
            "{label} cached guarded run diverged"
        );
    }
    // the flag changes the config fingerprint, so the plain configuration
    // hitting the same cache directory must not reuse guarded entries
    let plain = WapTool::new(ToolConfig::builder().jobs(2).cache_dir(&dir).build());
    let default_fp = fingerprint(&plain.analyze_sources(&sources));
    let cacheless = WapTool::new(ToolConfig::builder().jobs(1).build());
    assert_eq!(
        default_fp,
        fingerprint(&cacheless.analyze_sources(&sources)),
        "default run next to a guarded cache diverged from cacheless"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_order_pass_is_deterministic_too() {
    let sources = corpus_sources();
    let build = |jobs: usize| ToolConfig::builder().second_order(true).jobs(jobs).build();

    let serial = WapTool::new(build(1));
    let baseline = fingerprint(&serial.analyze_sources(&sources));
    for jobs in [2usize, 8] {
        let tool = WapTool::new(build(jobs));
        assert_eq!(
            baseline,
            fingerprint(&tool.analyze_sources(&sources)),
            "second-order jobs={jobs} diverged"
        );
    }
}
