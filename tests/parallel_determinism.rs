//! The runtime's central guarantee: analysis output is bit-identical for
//! every worker count. A ~100-file corpus is analyzed at jobs = 1, 2, 8
//! and the full reports (findings *and* their order) must match the
//! serial walk byte for byte.

use wap::core::cli::render_json;
use wap::core::{AppReport, ToolConfig, WapTool};
use wap::corpus::generate_webapp;
use wap::corpus::specs::vulnerable_webapps;

/// Builds one combined corpus out of several generated applications; the
/// per-app name prefix keeps file names unique.
fn corpus_sources() -> Vec<(String, String)> {
    let mut sources = Vec::new();
    for (i, spec) in vulnerable_webapps().into_iter().take(6).enumerate() {
        let app = generate_webapp(&spec, 0.1, 4242u64.wrapping_add(i as u64));
        for f in &app.files {
            sources.push((format!("app{i}/{}", f.name), f.source.clone()));
        }
    }
    sources
}

/// A canonical plain-text rendering of everything the analysis decided
/// (deliberately not JSON, so the comparison does not depend on a
/// serializer): per-finding identity, order, verdict, and justification,
/// plus the aggregate counters.
fn fingerprint(report: &AppReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}:{}:[{}]:real={}:[{}]\n",
            f.candidate.file.as_deref().unwrap_or("<input>"),
            f.candidate.line,
            f.candidate.class,
            f.candidate.sink,
            f.candidate.sources.join(","),
            f.is_real(),
            f.prediction.justification.join(","),
        ));
    }
    out.push_str(&format!(
        "files={} loc={} parse_errors={}\n",
        report.files_analyzed,
        report.loc,
        report.parse_errors.len()
    ));
    out
}

#[test]
fn findings_are_bit_identical_for_every_job_count() {
    let sources = corpus_sources();
    assert!(
        sources.len() >= 100,
        "corpus too small: {} files",
        sources.len()
    );

    let serial = WapTool::new(ToolConfig::builder().jobs(1).build());
    let baseline_report = serial.analyze_sources(&sources);
    assert!(
        !baseline_report.findings.is_empty(),
        "corpus must produce findings"
    );
    let baseline = fingerprint(&baseline_report);
    let baseline_json = render_json(&baseline_report);

    for jobs in [2usize, 8] {
        let tool = WapTool::new(ToolConfig::builder().jobs(jobs).build());
        let report = tool.analyze_sources(&sources);
        assert_eq!(
            baseline,
            fingerprint(&report),
            "jobs={jobs} diverged from the serial walk"
        );
        assert_eq!(
            baseline_json,
            render_json(&report),
            "jobs={jobs} JSON diverged"
        );
    }
}

/// The incremental cache must never change output: a cold run, a fully
/// warm run, and a partially invalidated run (files edited, added,
/// removed) must be bit-identical — at every job count.
#[test]
fn cached_runs_are_bit_identical_to_cold_at_every_job_count() {
    let mut sources = corpus_sources();
    let dir = std::env::temp_dir().join(format!(
        "wap-determinism-cache-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = |sources: &[(String, String)]| {
        fingerprint(&WapTool::new(ToolConfig::builder().jobs(1).build()).analyze_sources(sources))
    };
    let sweep = |sources: &[(String, String)], baseline: &str, label: &str| {
        for jobs in [1usize, 2, 8] {
            let tool = WapTool::new(ToolConfig::builder().jobs(jobs).cache_dir(&dir).build());
            let report = tool.analyze_sources(sources);
            assert_eq!(
                baseline,
                fingerprint(&report),
                "{label} cached run at jobs={jobs} diverged from cold"
            );
        }
    };

    let baseline = cold(&sources);
    sweep(&sources, &baseline, "populating");

    // fully warm: same sources, fresh tool per job count, zero re-analysis
    let warm_tool = WapTool::new(ToolConfig::builder().jobs(4).cache_dir(&dir).build());
    let warm = warm_tool.analyze_sources(&sources);
    assert_eq!(baseline, fingerprint(&warm), "fully warm run diverged");
    assert_eq!(warm.cache.misses, 0, "fully warm run must not miss");
    assert!(warm.cache.hits > 0);

    // partial invalidation #1: edit one file's top level (no declaration
    // change — every other file's taint artifacts stay valid)
    sources[0].1.push_str("\necho $_GET['cache_probe'];\n");
    let baseline = cold(&sources);
    sweep(&sources, &baseline, "edited-file");

    // partial invalidation #2: remove a file and add one declaring a new
    // function (the app-wide functions digest changes)
    sources.remove(1);
    sources.push((
        "appx/new_helper.php".to_string(),
        "<?php\nfunction cache_probe_helper($v) { return $v; }\necho cache_probe_helper($_GET['h']);\n"
            .to_string(),
    ));
    let baseline = cold(&sources);
    sweep(&sources, &baseline, "add-remove");

    let partial = WapTool::new(ToolConfig::builder().jobs(2).cache_dir(&dir).build())
        .analyze_sources(&sources);
    assert_eq!(baseline, fingerprint(&partial));
    assert_eq!(partial.cache.misses, 0, "repeat of same input must be warm");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Canonical rendering of a report's lint findings (rule, location, span,
/// severity, message) — everything `wap --lint` decides.
fn lint_fingerprint(report: &AppReport) -> String {
    let mut out = String::new();
    for l in &report.lint {
        out.push_str(&format!(
            "{}:{}:{}..{}:{}:{}:{}\n",
            l.file,
            l.line,
            l.span.start(),
            l.span.end(),
            l.rule_id,
            l.severity.as_str(),
            l.message,
        ));
    }
    out.push_str(&format!(
        "rules=[{}]\n",
        report
            .lint_rules
            .iter()
            .map(|r| r.id.as_str())
            .collect::<Vec<_>>()
            .join(",")
    ));
    out
}

/// Lint findings must be bit-identical at every job count, with tracing
/// on or off, and with a cold vs. warm cache.
#[test]
fn lint_findings_are_bit_identical_across_jobs_trace_and_cache() {
    let sources = corpus_sources();
    let dir = std::env::temp_dir().join(format!(
        "wap-determinism-lint-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let run = |tool: &WapTool| {
        let mut report = tool.analyze_sources(&sources);
        tool.apply_lint(&mut report, &sources);
        (fingerprint(&report) + &lint_fingerprint(&report), report)
    };

    let serial = WapTool::new(ToolConfig::builder().jobs(1).build());
    let (baseline, baseline_report) = run(&serial);
    assert!(
        !baseline_report.lint.is_empty(),
        "corpus must produce lint findings"
    );
    assert!(baseline_report.lint_ran);

    for jobs in [1usize, 2, 8] {
        for trace in [false, true] {
            let tool =
                WapTool::new(ToolConfig::builder().jobs(jobs).trace(trace).build());
            let (got, _) = run(&tool);
            assert_eq!(
                baseline, got,
                "lint diverged at jobs={jobs} trace={trace}"
            );
        }
    }

    // cold populate, then fully warm — both must match the cacheless run
    for label in ["cold", "warm"] {
        let tool = WapTool::new(ToolConfig::builder().jobs(4).cache_dir(&dir).build());
        let (got, report) = run(&tool);
        assert_eq!(baseline, got, "{label} cached lint run diverged");
        if label == "warm" {
            assert!(report.cache.hits > 0, "warm run must hit the cfg cache");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A warm cfg cache entry is keyed on the catalog fingerprint: linking a
/// weapon (which changes the fingerprint and contributes a lint rule)
/// must re-lint rather than replay stale cached findings.
#[test]
fn cfg_cache_invalidates_on_catalog_fingerprint_change() {
    let sources = vec![(
        "wp.php".to_string(),
        "<?php\n$q = $_POST['q'];\n$wpdb->query(\"SELECT * FROM posts WHERE title = '$q'\");\n"
            .to_string(),
    )];
    let dir = std::env::temp_dir().join(format!(
        "wap-determinism-cfg-inval-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let lint_with = |weapons: bool| {
        let builder = ToolConfig::builder().jobs(2).cache_dir(&dir);
        let builder = if weapons { builder } else { builder.no_weapons() };
        let tool = WapTool::new(builder.build());
        let mut report = tool.analyze_sources(&sources);
        tool.apply_lint(&mut report, &sources);
        report
    };

    // populate the cache without weapons, then twice with the full weapon
    // set: the second configuration must not see the first's entries
    let plain = lint_with(false);
    let with_weapons = lint_with(true);
    assert_ne!(
        lint_fingerprint(&plain),
        lint_fingerprint(&with_weapons),
        "weapon lint rules must change the findings"
    );
    assert!(
        with_weapons
            .lint_rules
            .iter()
            .any(|r| r.id == "WAP-WP-UNPREPARED-QUERY"),
        "weapon-declared rule missing from the rule table"
    );
    // a repeat of the weapon configuration is warm and identical
    let again = lint_with(true);
    assert_eq!(
        lint_fingerprint(&with_weapons),
        lint_fingerprint(&again),
        "same configuration must replay identically from the cache"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Guard-attribute refinement (`--guards`) must be deterministic across
/// job counts and cache states too — and must stay off by default.
#[test]
fn guard_attributes_are_deterministic_and_off_by_default() {
    let sources = corpus_sources();
    let dir = std::env::temp_dir().join(format!(
        "wap-determinism-guards-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let serial = WapTool::new(
        ToolConfig::builder()
            .jobs(1)
            .guard_attributes(true)
            .build(),
    );
    let baseline = fingerprint(&serial.analyze_sources(&sources));

    for jobs in [2usize, 8] {
        for trace in [false, true] {
            let tool = WapTool::new(
                ToolConfig::builder()
                    .jobs(jobs)
                    .trace(trace)
                    .guard_attributes(true)
                    .build(),
            );
            assert_eq!(
                baseline,
                fingerprint(&tool.analyze_sources(&sources)),
                "guarded analysis diverged at jobs={jobs} trace={trace}"
            );
        }
    }
    // cold + warm cached runs under the flag
    for label in ["cold", "warm"] {
        let tool = WapTool::new(
            ToolConfig::builder()
                .jobs(4)
                .cache_dir(&dir)
                .guard_attributes(true)
                .build(),
        );
        assert_eq!(
            baseline,
            fingerprint(&tool.analyze_sources(&sources)),
            "{label} cached guarded run diverged"
        );
    }
    // the flag changes the config fingerprint, so the plain configuration
    // hitting the same cache directory must not reuse guarded entries
    let plain = WapTool::new(ToolConfig::builder().jobs(2).cache_dir(&dir).build());
    let default_fp = fingerprint(&plain.analyze_sources(&sources));
    let cacheless = WapTool::new(ToolConfig::builder().jobs(1).build());
    assert_eq!(
        default_fp,
        fingerprint(&cacheless.analyze_sources(&sources)),
        "default run next to a guarded cache diverged from cacheless"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The interprocedural value analysis (`--values`) must be deterministic
/// across job counts, tracing, and cache states — and off by default: a
/// default-configuration run next to a values-populated cache must stay
/// byte-identical to a cacheless default run.
#[test]
fn value_analysis_is_deterministic_and_off_by_default() {
    let sources = corpus_sources();
    let dir = std::env::temp_dir().join(format!(
        "wap-determinism-values-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let run = |tool: &WapTool| {
        let mut report = tool.analyze_sources(&sources);
        tool.apply_lint(&mut report, &sources);
        (fingerprint(&report) + &lint_fingerprint(&report), report)
    };

    let serial = WapTool::new(ToolConfig::builder().jobs(1).values(true).build());
    let (baseline, baseline_report) = run(&serial);
    assert!(baseline_report.values_ran, "--values must mark the report");

    for jobs in [2usize, 8] {
        for trace in [false, true] {
            let tool = WapTool::new(
                ToolConfig::builder()
                    .jobs(jobs)
                    .trace(trace)
                    .values(true)
                    .build(),
            );
            let (got, report) = run(&tool);
            assert_eq!(
                baseline, got,
                "values analysis diverged at jobs={jobs} trace={trace}"
            );
            assert_eq!(
                (
                    baseline_report.dynamic_edges_resolved,
                    baseline_report.dynamic_edges_unresolved
                ),
                (report.dynamic_edges_resolved, report.dynamic_edges_unresolved),
                "edge counters diverged at jobs={jobs} trace={trace}"
            );
        }
    }
    // cold + warm cached runs under the flag
    for label in ["cold", "warm"] {
        let tool = WapTool::new(
            ToolConfig::builder()
                .jobs(4)
                .cache_dir(&dir)
                .values(true)
                .build(),
        );
        let (got, _) = run(&tool);
        assert_eq!(baseline, got, "{label} cached values run diverged");
    }
    // the flag changes the config fingerprint, so a default configuration
    // hitting the same cache directory must not reuse values-mode entries
    let plain = WapTool::new(ToolConfig::builder().jobs(2).cache_dir(&dir).build());
    let (default_fp, default_report) = run(&plain);
    assert!(!default_report.values_ran, "--values must stay off by default");
    let cacheless = WapTool::new(ToolConfig::builder().jobs(1).build());
    assert_eq!(
        default_fp,
        run(&cacheless).0,
        "default run next to a values cache diverged from cacheless"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole acceptance scenario: a dynamic `include $base . "/db.php"`
/// whose target holds the tainted sink. Without `--values` the include
/// path is opaque and the flow is missed; with it the constant-propagated
/// path resolves, the included file is inlined into the taint walk, and
/// the cross-file flow is reported.
#[test]
fn value_analysis_resolves_dynamic_includes_into_taint_findings() {
    let sources = vec![
        (
            "index.php".to_string(),
            "<?php\n$base = \"lib\";\n$id = $_GET['id'];\ninclude $base . \"/db.php\";\n"
                .to_string(),
        ),
        (
            "lib/db.php".to_string(),
            "<?php\nmysql_query(\"SELECT * FROM users WHERE id = \" . $id);\n".to_string(),
        ),
    ];

    let plain = WapTool::new(ToolConfig::builder().jobs(1).build());
    let without = plain.analyze_sources(&sources);
    assert!(
        without.findings.is_empty(),
        "without --values the dynamic include must stay opaque, got {:?}",
        without.findings.iter().map(|f| &f.candidate.sink).collect::<Vec<_>>()
    );

    let tool = WapTool::new(ToolConfig::builder().jobs(1).values(true).build());
    let with = tool.analyze_sources(&sources);
    assert!(
        !with.findings.is_empty(),
        "--values must surface the cross-include taint flow"
    );
    assert!(
        with.findings
            .iter()
            .any(|f| f.candidate.sink == "mysql_query"),
        "expected a mysql_query sink finding"
    );
    assert!(with.values_ran);
    assert!(
        with.dynamic_edges_resolved >= 1,
        "the resolved include must be counted as a resolved dynamic edge"
    );

    // the resolution itself is deterministic across job counts
    let baseline = fingerprint(&with);
    for jobs in [2usize, 8] {
        let tool = WapTool::new(ToolConfig::builder().jobs(jobs).values(true).build());
        assert_eq!(
            baseline,
            fingerprint(&tool.analyze_sources(&sources)),
            "include resolution diverged at jobs={jobs}"
        );
    }
}

/// `WAP-LINT-UNRESOLVED-INCLUDE` marks analysis coverage gaps: with
/// `--values` off every dynamic include is one; with it on, exactly the
/// sites the value analysis resolves are suppressed and truly opaque
/// paths keep the note.
#[test]
fn unresolved_include_lint_is_suppressed_when_values_resolves_the_path() {
    let sources = vec![
        (
            "index.php".to_string(),
            "<?php\n$base = \"lib\";\ninclude $base . \"/db.php\";\ninclude $_GET['page'] . \".php\";\n"
                .to_string(),
        ),
        ("lib/db.php".to_string(), "<?php\n$x = 1;\n".to_string()),
    ];
    let notes = |values: bool| {
        let builder = ToolConfig::builder().jobs(1);
        let builder = if values { builder.values(true) } else { builder };
        let tool = WapTool::new(builder.build());
        let mut report = tool.analyze_sources(&sources);
        tool.apply_lint(&mut report, &sources);
        report
            .lint
            .iter()
            .filter(|l| l.rule_id == "WAP-LINT-UNRESOLVED-INCLUDE")
            .map(|l| l.line)
            .collect::<Vec<_>>()
    };
    // without the value analysis both dynamic includes are coverage gaps
    assert_eq!(notes(false), vec![3, 4]);
    // with it, the constant-propagated path is resolved (and analyzed),
    // so only the attacker-controlled include keeps the note
    assert_eq!(notes(true), vec![4]);
}

#[test]
fn second_order_pass_is_deterministic_too() {
    let sources = corpus_sources();
    let build = |jobs: usize| ToolConfig::builder().second_order(true).jobs(jobs).build();

    let serial = WapTool::new(build(1));
    let baseline = fingerprint(&serial.analyze_sources(&sources));
    for jobs in [2usize, 8] {
        let tool = WapTool::new(build(jobs));
        assert_eq!(
            baseline,
            fingerprint(&tool.analyze_sources(&sources)),
            "second-order jobs={jobs} diverged"
        );
    }
}
