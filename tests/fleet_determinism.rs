//! Fleet-level determinism: the tentpole guarantee of the distributed
//! cache is that network topology can change **performance only, never
//! findings**. Every test here compares bytes: CLI vs replica A (local
//! disk cache) vs replica B (cold local cache reading through A), warm
//! and cold, one worker thread or eight; a peer that is unreachable,
//! serves corrupt frames, or truncates payloads mid-body; and batch
//! scans against the equivalent sequence of single scans.
//!
//! Like `serve_http.rs`, everything is self-comparing (tool vs tool), so
//! the tests are independent of the shimmed random stream and run in the
//! offline harness unchanged.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use wap::core::cli::{self, CliOptions};
use wap::corpus::generate_webapp;
use wap::corpus::specs::vulnerable_webapps;
use wap::report::Format;
use wap::serve::{ServeConfig, Server, ServerHandle};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wap-fleet-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_corpus_app(name: &str, seed: u64, dir: &PathBuf) {
    let spec = vulnerable_webapps()
        .into_iter()
        .find(|a| a.name == name)
        .unwrap();
    let app = generate_webapp(&spec, 0.5, seed);
    app.write_to(dir).unwrap();
}

fn boot(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&config).expect("bind ephemeral port");
    let handle = server.handle().expect("handle");
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("send");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("recv");
    let split = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body delimiter");
    let head = String::from_utf8_lossy(&buf[..split]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, head, buf[split + 4..].to_vec())
}

fn scan_request(dir: &PathBuf, format: &str) -> Vec<u8> {
    format!(
        "POST /v1/scan?path={}&format={format} HTTP/1.1\r\nHost: fleet\r\nContent-Length: 0\r\n\r\n",
        url_escape(&dir.display().to_string())
    )
    .into_bytes()
}

fn url_escape(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'/' | b'.' | b'-' | b'_' => out.push(b as char),
            b if b.is_ascii_alphanumeric() => out.push(b as char),
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn cli_output(dir: &PathBuf, format: Format) -> String {
    let opts = CliOptions {
        paths: vec![dir.clone()],
        format: Some(format),
        ..Default::default()
    };
    let (_, output) = cli::run(&opts).unwrap();
    output
}

fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
}

fn fetch_metrics(addr: SocketAddr) -> String {
    let (status, _, body) = exchange(addr, b"GET /metrics HTTP/1.1\r\nHost: fleet\r\n\r\n");
    assert_eq!(status, 200);
    String::from_utf8(body).unwrap()
}

/// CLI, a dir-cached replica, and a replica warmed entirely through the
/// peer protocol all render byte-identical reports — cold, warm, at one
/// worker thread and at eight.
#[test]
fn peer_warmed_replica_matches_cli_bytes() {
    let dir = temp_dir("identity");
    write_corpus_app("RCR AEsir", 91, &dir);
    let cache_a = temp_dir("identity-cache-a");

    let want = cli_output(&dir, Format::Json).into_bytes();
    let want_sarif = cli_output(&dir, Format::Sarif).into_bytes();

    let (handle_a, join_a) = boot(ServeConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(1),
        cache_dir: Some(cache_a.clone()),
        workers: 1,
        ..ServeConfig::default()
    });
    // replica A: cold then warm
    for round in ["cold", "warm"] {
        let (status, _, body) = exchange(handle_a.addr(), &scan_request(&dir, "json"));
        assert_eq!(status, 200);
        assert_eq!(body, want, "replica A {round} scan differs from CLI");
    }

    // replica B: nothing local, everything through A, eight jobs
    let (handle_b, join_b) = boot(ServeConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(8),
        cache_peer: Some(format!("http://{}", handle_a.addr())),
        workers: 2,
        ..ServeConfig::default()
    });
    let (status, _, body) = exchange(handle_b.addr(), &scan_request(&dir, "json"));
    assert_eq!(status, 200);
    assert_eq!(body, want, "peer-warmed scan differs from CLI");
    let metrics = fetch_metrics(handle_b.addr());
    assert!(
        metric_value(&metrics, "wap_serve_remote_cache_hits_total") > 0,
        "replica B never used its peer:\n{metrics}"
    );
    // warm rerun on B (now memory-cached locally) and a second format
    let (status, _, body) = exchange(handle_b.addr(), &scan_request(&dir, "json"));
    assert_eq!(status, 200);
    assert_eq!(body, want, "replica B warm scan differs");
    let (status, _, body) = exchange(handle_b.addr(), &scan_request(&dir, "sarif"));
    assert_eq!(status, 200);
    assert_eq!(body, want_sarif, "replica B sarif scan differs");

    handle_a.shutdown();
    handle_b.shutdown();
    join_a.join().unwrap().unwrap();
    join_b.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&cache_a).ok();
}

/// A hostile or half-dead peer can slow a replica down but can never
/// change its findings: corrupt frames, truncated bodies, and refused
/// connections all degrade to the cold path with identical bytes.
#[test]
fn bad_peers_degrade_to_cold_with_identical_bytes() {
    let dir = temp_dir("degrade");
    write_corpus_app("divine", 92, &dir);
    let want = cli_output(&dir, Format::Json).into_bytes();

    // peer 1: answers every GET with a well-formed response whose body is
    // garbage (fails the checksum), and swallows PUTs
    let corrupt = spawn_fake_peer(|_req| {
        b"HTTP/1.1 200 OK\r\nContent-Length: 24\r\nConnection: close\r\n\r\nthis-is-not-a-wapc-frame".to_vec()
    });
    // peer 2: promises 4096 bytes and hangs up after 10 (transport error)
    let truncated = spawn_fake_peer(|_req| {
        b"HTTP/1.1 200 OK\r\nContent-Length: 4096\r\nConnection: close\r\n\r\nshort-body".to_vec()
    });
    // peer 3: a bound-then-dropped port — connection refused
    let unreachable = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        format!("http://{addr}")
    };

    for (kind, peer) in [
        ("corrupt", corrupt),
        ("truncated", truncated),
        ("unreachable", unreachable),
    ] {
        let (handle, join) = boot(ServeConfig {
            addr: "127.0.0.1:0".into(),
            jobs: Some(2),
            cache_peer: Some(peer),
            workers: 1,
            ..ServeConfig::default()
        });
        let (status, _, body) = exchange(handle.addr(), &scan_request(&dir, "json"));
        assert_eq!(status, 200, "{kind} peer broke the scan");
        assert_eq!(body, want, "{kind} peer changed the findings bytes");
        if kind != "unreachable" {
            // the degraded lookups are visible, not silent
            let metrics = fetch_metrics(handle.addr());
            assert!(
                metric_value(&metrics, "wap_serve_remote_cache_errors_total") > 0,
                "{kind} peer produced no error samples:\n{metrics}"
            );
        }
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// One `POST /v1/batch` answers exactly what N sequential `POST
/// /v1/scan` uploads of the same apps answer, app by app, byte by byte.
#[test]
fn batch_scan_equals_sequential_scans() {
    let dir_a = temp_dir("batch-a");
    let dir_b = temp_dir("batch-b");
    write_corpus_app("RCR AEsir", 93, &dir_a);
    write_corpus_app("divine", 94, &dir_b);

    // one archive holding both apps under distinct top-level dirs
    let mut members: Vec<(String, String)> = Vec::new();
    let mut per_app: Vec<(String, Vec<(String, String)>)> = Vec::new();
    for (app, dir) in [("appa", &dir_a), ("appb", &dir_b)] {
        let files = cli::collect_php_files(&[(*dir).clone()]).unwrap();
        let mut app_members = Vec::new();
        for f in files {
            let rel = f.strip_prefix(dir).unwrap().display().to_string();
            let contents = std::fs::read_to_string(&f).unwrap();
            app_members.push((format!("{app}/{rel}"), contents));
        }
        members.extend(app_members.iter().cloned());
        per_app.push((app.to_string(), app_members));
    }
    let archive = wap::serve::tar::build(&members);

    let (handle, join) = boot(ServeConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(2),
        workers: 2,
        ..ServeConfig::default()
    });

    // sequential reference: one tar upload per app
    let mut want_lines = Vec::new();
    for (app, app_members) in &per_app {
        let app_archive = wap::serve::tar::build(app_members);
        let mut raw = format!(
            "POST /v1/scan?format=json HTTP/1.1\r\nHost: fleet\r\nContent-Length: {}\r\n\r\n",
            app_archive.len()
        )
        .into_bytes();
        raw.extend_from_slice(&app_archive);
        let (status, _, body) = exchange(handle.addr(), &raw);
        assert_eq!(status, 200);
        want_lines.push((app.clone(), String::from_utf8(body).unwrap()));
    }

    let mut raw = format!(
        "POST /v1/batch?format=json HTTP/1.1\r\nHost: fleet\r\nContent-Length: {}\r\n\r\n",
        archive.len()
    )
    .into_bytes();
    raw.extend_from_slice(&archive);
    let (status, head, body) = exchange(handle.addr(), &raw);
    assert_eq!(status, 200, "{head}");
    let text = String::from_utf8(body).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), per_app.len(), "{text}");
    for (line, (app, want_report)) in lines.iter().zip(&want_lines) {
        assert!(
            line.starts_with(&format!("{{\"app\":\"{app}\",\"status\":\"done\"")),
            "{line}"
        );
        let got_report = extract_json_report(line);
        assert_eq!(
            &got_report, want_report,
            "batch report for {app} differs from its sequential scan"
        );
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Boots a thread that answers every HTTP request on an ephemeral port
/// with `response(request_bytes)` until the process exits. Returns the
/// peer's base URL.
fn spawn_fake_peer(response: impl Fn(&[u8]) -> Vec<u8> + Send + 'static) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let mut buf = [0u8; 4096];
            let mut req = Vec::new();
            // read until the blank line; requests with bodies (PUTs) get
            // their body ignored — the fake peer never stores anything
            while !req.windows(4).any(|w| w == b"\r\n\r\n") {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => req.extend_from_slice(&buf[..n]),
                }
            }
            let _ = stream.write_all(&response(&req));
        }
    });
    format!("http://{addr}")
}

/// Pulls the decoded `"report"` string field out of one NDJSON batch
/// line (the line format is fixed: report is the final field).
fn extract_json_report(line: &str) -> String {
    let at = line.find("\"report\":\"").expect("report field") + "\"report\":\"".len();
    let raw = &line[at..line.len() - 2]; // strip trailing `"}`
    let mut out = String::new();
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next().expect("escape") {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = (&mut chars).take(4).collect();
                let v = u32::from_str_radix(&hex, 16).expect("unicode escape");
                out.push(char::from_u32(v).expect("scalar"));
            }
            other => panic!("unexpected escape \\{other}"),
        }
    }
    out
}
