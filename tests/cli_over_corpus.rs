//! Drive the CLI front end over a corpus application written to disk —
//! the complete user workflow: generate → write → `wap --fix` → verify.

use wap::core::cli::{self, CliOptions};
use wap::corpus::generate_webapp;
use wap::corpus::specs::vulnerable_webapps;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wap-corpus-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn cli_analyzes_a_written_corpus_app() {
    let spec = vulnerable_webapps()
        .into_iter()
        .find(|a| a.name == "RCR AEsir")
        .unwrap();
    let app = generate_webapp(&spec, 0.5, 77);
    let dir = temp_dir("analyze");
    app.write_to(&dir).unwrap();

    let opts = CliOptions {
        paths: vec![dir.clone()],
        json: true,
        ..Default::default()
    };
    let (code, output) = cli::run(&opts).unwrap();
    assert_eq!(code, 1, "vulnerable app must exit 1");
    let v: serde_json::Value = serde_json::from_str(&output).unwrap();
    // RCR AEsir: 13 real (9 SQLI + 3 XSS + 1 HI) + 1 predicted FP
    assert_eq!(v["real_vulnerabilities"], 13, "{output}");
    assert_eq!(v["predicted_false_positives"], 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_fix_loop_reaches_clean() {
    let spec = vulnerable_webapps()
        .into_iter()
        .find(|a| a.name == "divine")
        .unwrap();
    let app = generate_webapp(&spec, 1.0, 78);
    let dir = temp_dir("fixloop");
    app.write_to(&dir).unwrap();

    // 1. fix everything
    let opts = CliOptions {
        paths: vec![dir.clone()],
        fix: true,
        ..Default::default()
    };
    let (code, output) = cli::run(&opts).unwrap();
    assert_eq!(code, 1);
    assert!(output.contains("fixes)"), "{output}");

    // 2. replace originals with the fixed versions
    for f in &app.files {
        let fixed = dir.join(format!("{}.fixed.php", f.name));
        if fixed.exists() {
            std::fs::rename(&fixed, dir.join(&f.name)).unwrap();
        }
    }

    // 3. re-analysis with the fix sanitizers registered is clean
    let opts = CliOptions {
        paths: vec![dir.clone()],
        user_sanitizers: vec![
            (
                "san_read".into(),
                vec!["RFI".into(), "LFI".into(), "DT".into(), "SCD".into()],
            ),
            ("san_ldapi".into(), vec!["LDAPI".into()]),
        ],
        ..Default::default()
    };
    let (code, output) = cli::run(&opts).unwrap();
    assert_eq!(code, 0, "fixed app should be clean:\n{output}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_class_flag_on_corpus() {
    let spec = vulnerable_webapps()
        .into_iter()
        .find(|a| a.name == "Admin Control Panel Lite 2")
        .unwrap();
    let app = generate_webapp(&spec, 1.0, 79);
    let dir = temp_dir("flags");
    app.write_to(&dir).unwrap();

    let opts = CliOptions {
        paths: vec![dir.clone()],
        class_flags: vec!["-sqli".to_string()],
        json: true,
        ..Default::default()
    };
    let (_, output) = cli::run(&opts).unwrap();
    let v: serde_json::Value = serde_json::from_str(&output).unwrap();
    let findings = v["findings"].as_array().unwrap();
    assert!(findings.iter().all(|f| f["class"] == "SQLI"), "{output}");
    // ACP Lite 2 has 9 SQLI; FP flows with SQLI sinks also appear
    assert!(v["real_vulnerabilities"].as_u64().unwrap() >= 9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_jobs_flag_gives_identical_output() {
    let spec = vulnerable_webapps()
        .into_iter()
        .find(|a| a.name == "RCR AEsir")
        .unwrap();
    let app = generate_webapp(&spec, 0.5, 80);
    let dir = temp_dir("jobs");
    app.write_to(&dir).unwrap();

    let run_with = |jobs: Option<usize>| {
        let opts = CliOptions {
            paths: vec![dir.clone()],
            json: true,
            jobs,
            ..Default::default()
        };
        cli::run(&opts).unwrap()
    };
    let (code1, out1) = run_with(Some(1));
    assert_eq!(code1, 1, "vulnerable app must exit 1");
    for jobs in [2usize, 8] {
        let (code, out) = run_with(Some(jobs));
        assert_eq!(code, code1);
        assert_eq!(out, out1, "--jobs {jobs} changed the report");
    }
    std::fs::remove_dir_all(&dir).ok();
}
