//! The live front-ends' central guarantee: a watch or LSP session that
//! ends at source state *S* reports exactly what a cold CLI scan of *S*
//! reports — byte for byte — and the session's own output stream is a
//! pure function of the edit sequence, identical at every worker count
//! and cache state.
//!
//! Scripted edit sequences (create, modify, delete, revert) are driven
//! through `Watcher::poll_once` and through canned JSON-RPC transcripts
//! at jobs = 1, 2, 8 with the cache off and warm, then compared against
//! each other and against `wap_core::cli::run` over the final tree.

use std::io::Cursor;
use std::path::PathBuf;
use wap::core::cli::{run, CliOptions};
use wap::core::Format;
use wap::live::json::Value;
use wap::live::lsp::read_message;
use wap::live::{diagnostics_json, LspConfig, LspServer, WatchConfig, Watcher};

/// One fixed directory per test so file paths — which appear in the
/// output bytes — are identical across configurations.
fn fixture_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wap-live-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("inc")).unwrap();
    dir
}

const VULN: &str = "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n";
const SAFE: &str = "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = \" . mysql_real_escape_string($id));\n";
const XSS: &str = "<?php echo $_POST['msg'];\n";

/// Text output with the wall-clock line removed (the only timing in any
/// rendering).
fn strip_ms(s: &str) -> String {
    s.lines()
        .filter(|l| !l.contains(" ms)"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The sweep grid: every worker count, cache off and cache shared/warm.
fn configs(cache_root: &std::path::Path) -> Vec<(usize, Option<PathBuf>)> {
    let mut grid = Vec::new();
    for jobs in [1usize, 2, 8] {
        grid.push((jobs, None));
        grid.push((jobs, Some(cache_root.join("shared"))));
    }
    grid
}

#[test]
fn watch_sessions_converge_byte_identically_to_cold_scans() {
    let dir = fixture_dir("watch");
    let cache_root =
        std::env::temp_dir().join(format!("wap-live-det-watch-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_root);

    let mut streams: Vec<String> = Vec::new();
    let mut final_texts: Vec<String> = Vec::new();
    let mut final_jsons: Vec<String> = Vec::new();

    for (jobs, cache_dir) in configs(&cache_root) {
        // reset the tree to the same initial state under the same path
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("inc")).unwrap();
        std::fs::write(dir.join("v.php"), VULN).unwrap();
        std::fs::write(dir.join("inc/ok.php"), "<?php echo 'fine';\n").unwrap();

        let mut config = WatchConfig::new(&dir);
        config.jobs = Some(jobs);
        config.cache_dir = cache_dir;
        let mut w = Watcher::new(config).unwrap();
        let mut stream = String::new();

        // revision 1: initial scan
        stream.push_str(&w.poll_once().unwrap().expect("initial scan"));
        // modify: sanitize the query (finding removed)
        std::fs::write(dir.join("v.php"), SAFE).unwrap();
        stream.push_str(&w.poll_once().unwrap().expect("modify"));
        // create: a new vulnerable file (finding added)
        std::fs::write(dir.join("inc/x.php"), XSS).unwrap();
        stream.push_str(&w.poll_once().unwrap().expect("create"));
        // delete it again (finding removed)
        std::fs::remove_file(dir.join("inc/x.php")).unwrap();
        stream.push_str(&w.poll_once().unwrap().expect("delete"));
        // revert the first file (finding re-added)
        std::fs::write(dir.join("v.php"), VULN).unwrap();
        stream.push_str(&w.poll_once().unwrap().expect("revert"));

        assert_eq!(w.revision(), 5, "jobs={jobs}");
        streams.push(stream);
        final_texts.push(strip_ms(&w.render_current(Format::Text)));
        final_jsons.push(w.render_current(Format::Json));
    }

    // every configuration saw the identical delta stream and final report
    for (i, s) in streams.iter().enumerate().skip(1) {
        assert_eq!(&streams[0], s, "delta stream diverged in config #{i}");
        assert_eq!(&final_texts[0], &final_texts[i], "text diverged in #{i}");
        assert_eq!(&final_jsons[0], &final_jsons[i], "json diverged in #{i}");
    }
    // the stream recorded the whole edit history
    assert_eq!(streams[0].matches("\"kind\":\"revision\"").count(), 5);
    assert!(streams[0].contains("\"kind\":\"added\""));
    assert!(streams[0].contains("\"kind\":\"removed\""));

    // convergence: the session's final state reads exactly like a cold
    // CLI scan of the tree it ended on
    let (_, cold_text) = run(&CliOptions {
        paths: vec![dir.clone()],
        ..CliOptions::default()
    })
    .unwrap();
    assert_eq!(final_texts[0], strip_ms(&cold_text));
    let (_, cold_json) = run(&CliOptions {
        paths: vec![dir.clone()],
        format: Some(Format::Json),
        ..CliOptions::default()
    })
    .unwrap();
    assert_eq!(final_jsons[0], cold_json);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache_root);
}

/// Frames a canned message sequence into one LSP input stream.
fn transcript(bodies: &[String]) -> Vec<u8> {
    bodies
        .iter()
        .map(|b| format!("Content-Length: {}\r\n\r\n{b}", b.len()))
        .collect::<String>()
        .into_bytes()
}

/// Runs one LSP session over a canned transcript; returns (exit code,
/// raw output bytes, parsed message bodies).
fn lsp_session(config: LspConfig, bodies: &[String]) -> (i32, Vec<u8>, Vec<String>) {
    let mut reader = Cursor::new(transcript(bodies));
    let mut output = Vec::new();
    let code = LspServer::new(config).run(&mut reader, &mut output);
    let mut cursor = Cursor::new(output.clone());
    let mut messages = Vec::new();
    while let Ok(Some(body)) = read_message(&mut cursor) {
        messages.push(body);
    }
    (code, output, messages)
}

#[test]
fn lsp_sessions_converge_byte_identically_to_cold_scans() {
    let dir = fixture_dir("lsp");
    std::fs::write(dir.join("v.php"), VULN).unwrap();
    std::fs::write(dir.join("inc/ok.php"), "<?php echo 'fine';\n").unwrap();
    let cache_root =
        std::env::temp_dir().join(format!("wap-live-det-lsp-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_root);

    let uri = format!("file://{}/v.php", dir.display());
    let vuln_json = VULN.replace('\n', "\\n").replace('"', "\\\"");
    let safe_json = SAFE.replace('\n', "\\n").replace('"', "\\\"");
    let bodies = vec![
        format!(
            r#"{{"jsonrpc":"2.0","id":1,"method":"initialize","params":{{"rootUri":"file://{}"}}}}"#,
            dir.display()
        ),
        r#"{"jsonrpc":"2.0","method":"initialized","params":{}}"#.to_string(),
        // open the vulnerable buffer (matches disk)
        format!(
            r#"{{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{{"textDocument":{{"uri":"{uri}","languageId":"php","version":1,"text":"{vuln_json}"}}}}}}"#
        ),
        // edit to the sanitized version (unsaved: overlay shadows disk)
        format!(
            r#"{{"jsonrpc":"2.0","method":"textDocument/didChange","params":{{"textDocument":{{"uri":"{uri}","version":2}},"contentChanges":[{{"text":"{safe_json}"}}]}}}}"#
        ),
        // revert the buffer to what disk holds
        format!(
            r#"{{"jsonrpc":"2.0","method":"textDocument/didChange","params":{{"textDocument":{{"uri":"{uri}","version":3}},"contentChanges":[{{"text":"{vuln_json}"}}]}}}}"#
        ),
        // save without text: disk becomes the truth for this document
        format!(
            r#"{{"jsonrpc":"2.0","method":"textDocument/didSave","params":{{"textDocument":{{"uri":"{uri}"}}}}}}"#
        ),
        r#"{"jsonrpc":"2.0","id":2,"method":"shutdown"}"#.to_string(),
        r#"{"jsonrpc":"2.0","method":"exit"}"#.to_string(),
    ];

    let mut outputs: Vec<Vec<u8>> = Vec::new();
    let mut last_messages: Vec<String> = Vec::new();
    for (jobs, cache_dir) in configs(&cache_root) {
        let config = LspConfig {
            jobs: Some(jobs),
            cache_dir,
            ..LspConfig::default()
        };
        let (code, output, messages) = lsp_session(config, &bodies);
        assert_eq!(code, 0, "jobs={jobs}");
        outputs.push(output);
        last_messages = messages;
    }
    for (i, o) in outputs.iter().enumerate().skip(1) {
        assert_eq!(
            &outputs[0], o,
            "whole-session LSP output diverged in config #{i}"
        );
    }

    // the final publishDiagnostics must equal what a cold scan of the
    // final source state computes
    let publishes: Vec<&String> = last_messages
        .iter()
        .filter(|m| m.contains("publishDiagnostics"))
        .collect();
    assert_eq!(publishes.len(), 4, "{last_messages:#?}");
    let last = Value::parse(publishes.last().unwrap()).unwrap();
    let got = last
        .get("params")
        .and_then(|p| p.get("diagnostics"))
        .expect("diagnostics")
        .render();

    let opts = CliOptions {
        paths: vec![dir.clone()],
        ..CliOptions::default()
    };
    let tool = wap::core::cli::build_tool(&opts).unwrap();
    let sources = vec![
        (
            dir.join("inc/ok.php").display().to_string(),
            "<?php echo 'fine';\n".to_string(),
        ),
        (dir.join("v.php").display().to_string(), VULN.to_string()),
    ];
    let report = tool.analyze_sources(&sources);
    let expected = diagnostics_json(&report, &dir.join("v.php").display().to_string(), VULN);
    assert_eq!(got, Value::parse(&expected).unwrap().render());
    // mid-session, the sanitized buffer cleared the diagnostics even
    // though disk still held the vulnerable version
    let mid = Value::parse(publishes[1]).unwrap();
    assert_eq!(
        mid.get("params")
            .and_then(|p| p.get("diagnostics"))
            .and_then(Value::as_arr)
            .map(<[Value]>::len),
        Some(0),
        "{:?}",
        publishes[1]
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache_root);
}

#[test]
fn lsp_protocol_conformance_over_canned_transcript() {
    let dir = fixture_dir("conf");
    let uri = format!("file://{}/new.php", dir.display());
    let bodies = vec![
        r#"{"jsonrpc":"2.0","id":"init-1","method":"initialize","params":{}}"#.to_string(),
        r#"{"jsonrpc":"2.0","method":"initialized","params":{}}"#.to_string(),
        // a buffer that exists only in the editor (no file on disk)
        format!(
            r#"{{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{{"textDocument":{{"uri":"{uri}","languageId":"php","version":1,"text":"<?php echo $_GET['q'];\n"}}}}}}"#
        ),
        r#"{"jsonrpc":"2.0","id":7,"method":"workspace/symbol","params":{}}"#.to_string(),
        format!(
            r#"{{"jsonrpc":"2.0","method":"textDocument/didClose","params":{{"textDocument":{{"uri":"{uri}"}}}}}}"#
        ),
        r#"{"jsonrpc":"2.0","id":"bye","method":"shutdown"}"#.to_string(),
        r#"{"jsonrpc":"2.0","method":"exit"}"#.to_string(),
    ];
    let (code, _, messages) = lsp_session(LspConfig::default(), &bodies);
    assert_eq!(code, 0);
    assert_eq!(messages.len(), 5, "{messages:#?}");

    // 1. initialize: id echoed (string form), full-sync capability announced
    let init = Value::parse(&messages[0]).unwrap();
    assert_eq!(init.get("id").and_then(Value::as_str), Some("init-1"));
    assert_eq!(init.get("jsonrpc").and_then(Value::as_str), Some("2.0"));
    let sync = init
        .get("result")
        .and_then(|r| r.get("capabilities"))
        .and_then(|c| c.get("textDocumentSync"))
        .expect("textDocumentSync");
    assert_eq!(sync.get("openClose").and_then(Value::as_bool), Some(true));
    assert_eq!(sync.get("change").and_then(Value::as_i64), Some(1));

    // 2. didOpen of an unsaved buffer publishes its diagnostics
    let open = Value::parse(&messages[1]).unwrap();
    assert_eq!(
        open.get("method").and_then(Value::as_str),
        Some("textDocument/publishDiagnostics")
    );
    let params = open.get("params").unwrap();
    assert_eq!(
        params.get("uri").and_then(Value::as_str),
        Some(uri.as_str())
    );
    let diags = params.get("diagnostics").and_then(Value::as_arr).unwrap();
    assert_eq!(diags.len(), 1, "{:?}", messages[1]);
    assert_eq!(diags[0].get("code").and_then(Value::as_str), Some("XSS"));
    assert_eq!(diags[0].get("severity").and_then(Value::as_i64), Some(1));
    for key in ["range", "message", "source"] {
        assert!(diags[0].get(key).is_some(), "diagnostic missing {key}");
    }

    // 3. unknown request: MethodNotFound with the id echoed
    let err = Value::parse(&messages[2]).unwrap();
    assert_eq!(err.get("id").and_then(Value::as_i64), Some(7));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_i64),
        Some(-32601)
    );

    // 4. didClose clears the document's diagnostics
    let clear = Value::parse(&messages[3]).unwrap();
    assert_eq!(
        clear
            .get("params")
            .and_then(|p| p.get("diagnostics"))
            .and_then(Value::as_arr)
            .map(<[Value]>::len),
        Some(0)
    );

    // 5. shutdown: null result, id echoed
    let bye = Value::parse(&messages[4]).unwrap();
    assert_eq!(bye.get("id").and_then(Value::as_str), Some("bye"));
    assert_eq!(bye.get("result"), Some(&Value::Null));

    let _ = std::fs::remove_dir_all(&dir);
}
