<?php
// Exercises the generic-php starter pack's predicate constraints.
$id = $_GET['id'];
$q = "SELECT * FROM users WHERE id = " . $id;
mysql_query($q);
mysql_query($_GET['raw']);
mysql_query("SELECT 1 FROM health");
$code = 'echo 1;';
eval($code);
