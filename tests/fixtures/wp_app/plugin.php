<?php
// A tiny WordPress-flavored plugin: every defect here is visible to the
// `wordpress` rule pack but produces no taint candidates, so the SARIF
// rendering is independent of the trained committee.
function lookup_post($wpdb) {
    $id = get_option('active_post');
    $wpdb->query("SELECT * FROM wp_posts WHERE ID = $id");
    $rows = $wpdb->get_results("SELECT meta_value FROM wp_postmeta WHERE post_id = $id");
    return $rows;
}
function prepared_ok($wpdb) {
    $wpdb->query("SELECT * FROM wp_posts WHERE post_status = 'publish'");
}
extract($_GET);
