<?php
function lookup_title($key) {
    $q = build_query($key);
    mysql_query($q);
    return true;
}
