<?php
$name = $_GET['name'];
echo htmlentities($name);
if ($mode = 1) {
    echo "admin view";
}
exit;
echo "never reached";
