//! Ground-truth recall on the synthetic corpus: the pipeline must find
//! every seeded flow and stay silent on clean code, at corpus scale.

use wap::corpus::specs::{vulnerable_plugins, vulnerable_webapps};
use wap::corpus::{generate_clean_webapp, generate_plugin, generate_webapp, FlowKind};
use wap::{ToolConfig, WapTool};

const SCALE: f64 = 0.02;

fn sources(app: &wap::corpus::GeneratedApp) -> Vec<(String, String)> {
    app.files
        .iter()
        .map(|f| (f.name.clone(), f.source.clone()))
        .collect()
}

#[test]
fn taint_analyzer_flags_every_seeded_flow() {
    let tool = WapTool::new(ToolConfig::wape_full());
    for (i, spec) in vulnerable_webapps().iter().enumerate() {
        let app = generate_webapp(spec, SCALE, 100 + i as u64);
        let report = tool.analyze_sources(&sources(&app));
        assert_eq!(
            report.findings.len(),
            app.seeded.len(),
            "{}: seeded {} flows, tool flagged {}",
            spec.name,
            app.seeded.len(),
            report.findings.len()
        );
    }
}

#[test]
fn predictor_matches_ground_truth_labels_closely() {
    let tool = WapTool::new(ToolConfig::wape_full());
    let mut agree = 0usize;
    let mut total = 0usize;
    for (i, spec) in vulnerable_webapps().iter().enumerate() {
        let app = generate_webapp(spec, SCALE, 200 + i as u64);
        let report = tool.analyze_sources(&sources(&app));
        // ground truth: how many seeded flows are FPs the tool should
        // predict (FpBoth + FpWapeOnly)
        let should_be_fp = app
            .seeded
            .iter()
            .filter(|s| matches!(s.kind, FlowKind::FpBoth | FlowKind::FpWapeOnly))
            .count();
        let predicted_fp = report.predicted_false_positives().count();
        agree += should_be_fp.min(predicted_fp);
        total += should_be_fp;
    }
    assert!(total > 0);
    let recall = agree as f64 / total as f64;
    assert!(
        recall > 0.9,
        "FP prediction recall too low: {agree}/{total} = {recall:.2}"
    );
}

#[test]
fn clean_apps_produce_zero_findings() {
    let tool = WapTool::new(ToolConfig::wape_full());
    for i in 0..5 {
        let app = generate_clean_webapp(&format!("Clean{i}"), 20, 1500, 1.0, 300 + i);
        let report = tool.analyze_sources(&sources(&app));
        assert!(
            report.findings.is_empty(),
            "clean app {i} produced findings: {:?}",
            report
                .findings
                .iter()
                .map(|f| f.candidate.headline())
                .collect::<Vec<_>>()
        );
        assert!(report.parse_errors.is_empty());
    }
}

#[test]
fn plugin_corpus_matches_table_vii_spec() {
    let tool = WapTool::new(ToolConfig::wape_full());
    for (i, spec) in vulnerable_plugins().iter().enumerate().take(8) {
        let app = generate_plugin(spec, 1.0, 400 + i as u64);
        let report = tool.analyze_sources(&sources(&app));
        let expected = spec.total() + spec.fpp + spec.fp;
        assert_eq!(
            report.findings.len(),
            expected,
            "{}: expected {} candidates, got {}",
            spec.name,
            expected,
            report.findings.len()
        );
    }
}

#[test]
fn full_corpus_totals_reproduce_the_paper() {
    let tool = WapTool::new(ToolConfig::wape_full());
    let mut real = 0usize;
    let mut fpp = 0usize;
    for (i, spec) in vulnerable_webapps().iter().enumerate() {
        let app = generate_webapp(spec, SCALE, 500 + i as u64);
        let report = tool.analyze_sources(&sources(&app));
        real += report.real_vulnerabilities().count();
        fpp += report.predicted_false_positives().count();
    }
    // paper: 413 real + 18 unpredicted FPs are reported as real; 104 FPP
    assert_eq!(real + fpp, 413 + 104 + 18, "total candidates");
    assert!(
        (fpp as i64 - 104).abs() <= 8,
        "WAPe FPP should be close to the paper's 104, got {fpp}"
    );
    assert!(
        (real as i64 - 431).abs() <= 8,
        "WAPe-reported real should be close to 431 (413 + 18 FP), got {real}"
    );
}
