# Validates a `wap --trace` NDJSON file against the wap-trace-v1 schema.
#
# Usage:
#     jq -s -e -f scripts/trace_assert.jq trace.ndjson
#
# Slurped (-s) so the whole trace is one array. Exits non-zero (via
# error/-e) on any violation, otherwise prints a one-line summary:
#   - the first record is the meta line carrying the schema version and
#     the span/event counts
#   - every other record is a span (phase, job, start_ns, dur_ns) or an
#     event (name, job, at_ns), with non-negative integer timestamps
#   - span phases come from the known set (parse/taint/…/cfg/lint/live)
#   - the meta counts match the records that follow

def fail(msg): error("trace_assert: " + msg);

if length == 0 then fail("empty trace") else . end
| .[0] as $meta
| if $meta.kind != "meta" then fail("first record is not kind=meta") else . end
| if $meta.schema != "wap-trace-v1" then fail("unknown schema \($meta.schema)") else . end
| .[1:] as $records
| ($records | map(select(.kind == "span"))) as $spans
| ($records | map(select(.kind == "event"))) as $events
| if ($records | length) != (($spans | length) + ($events | length))
  then fail("record with kind other than span/event") else . end
| if ($spans | length) != $meta.spans
  then fail("meta.spans=\($meta.spans) but trace has \($spans | length) spans") else . end
| if ($events | length) != $meta.events
  then fail("meta.events=\($meta.events) but trace has \($events | length) events") else . end
| if $spans | all(
      (.phase | type == "string")
      and (.phase | IN("parse", "taint", "summary_merge", "toplevel_exec",
                       "vote", "predict", "fix", "cache", "cfg", "lint", "live",
                       "rules", "values"))
      and (.job | type == "number")
      and (.start_ns | type == "number") and .start_ns >= 0
      and (.dur_ns | type == "number") and .dur_ns >= 0
      and ((.file | type == "string") or .file == null))
  then . else fail("malformed span record") end
| if $events | all(
      (.name | type == "string")
      and (.job | type == "number")
      and (.at_ns | type == "number") and .at_ns >= 0
      and ((.file | type == "string") or .file == null))
  then . else fail("malformed event record") end
| "trace ok: \($spans | length) spans, \($events | length) events"
