#!/usr/bin/env bash
# End-to-end smoke test for `wap serve`, run by CI after a release build:
#
#   1. boot the server on a fixed local port with a persistent cache dir
#   2. poll /healthz until it answers
#   3. POST a scan of a small vulnerable app, validate the SARIF shape
#      with the checked-in jq assertion (scripts/sarif_assert.jq)
#   4. compare the server's SARIF byte-for-byte against the CLI's
#   5. rescan (warm cache) and require identical bytes + a cache hit
#   6. SIGTERM the server and require a graceful exit with status 0
#
# Requires: curl, jq, and target/release/wap (built by the caller).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="$ROOT/target/release/wap"
ADDR="127.0.0.1:18473"
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -KILL "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$WORK/server.log" >&2 || true
    exit 1
}

[[ -x "$BIN" ]] || { echo "serve-smoke: build target/release/wap first" >&2; exit 1; }

# A tiny app with a tainted SQL sink and a reflected echo: enough to make
# the SARIF results, codeFlows, and rule table all non-empty.
mkdir -p "$WORK/app"
cat > "$WORK/app/index.php" <<'PHP'
<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM users WHERE id = $id");
echo "<p>Hello " . $_GET['name'] . "</p>";
PHP

# Polls /healthz with a bounded retry budget (~10s), failing fast — with
# the server log attached — if the server exits early or never answers.
wait_healthz() {
    local url="$1" pid="$2"
    for _ in $(seq 1 100); do
        if curl -fsS "$url/healthz" > /dev/null 2>&1; then
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || fail "server exited before /healthz came up"
        sleep 0.1
    done
    fail "/healthz never became ready within the retry budget"
}

echo "serve-smoke: starting server on $ADDR"
"$BIN" serve --addr "$ADDR" --cache-dir "$WORK/cache" --workers 2 \
    > "$WORK/server.log" 2>&1 &
SERVER_PID=$!
wait_healthz "http://$ADDR" "$SERVER_PID"
echo "serve-smoke: /healthz OK"

# --- cold scan: SARIF shape + byte-identity with the CLI ------------------
curl -fsS -X POST "http://$ADDR/v1/scan?path=$WORK/app&format=sarif" \
    -o "$WORK/server.sarif" || fail "cold scan request failed"
jq -e -f "$ROOT/scripts/sarif_assert.jq" "$WORK/server.sarif" > /dev/null \
    || fail "server SARIF failed shape assertions"
echo "serve-smoke: SARIF shape OK"

"$BIN" --format sarif --fail-on none "$WORK/app" > "$WORK/cli.sarif" \
    || fail "CLI scan failed"
cmp "$WORK/server.sarif" "$WORK/cli.sarif" \
    || fail "server SARIF differs from CLI SARIF"
echo "serve-smoke: server output byte-identical to CLI"

# --- warm rescan: identical bytes, served from the shared cache -----------
curl -fsS -X POST "http://$ADDR/v1/scan?path=$WORK/app&format=sarif" \
    -o "$WORK/warm.sarif" || fail "warm scan request failed"
cmp "$WORK/server.sarif" "$WORK/warm.sarif" \
    || fail "warm rescan changed the report bytes"

curl -fsS "http://$ADDR/metrics" > "$WORK/metrics.txt" || fail "/metrics failed"
grep -q '^wap_serve_jobs_completed_total 2$' "$WORK/metrics.txt" \
    || fail "expected 2 completed jobs in /metrics: $(cat "$WORK/metrics.txt")"
awk '$1 == "wap_serve_cache_hits_total" && $2 > 0 { found = 1 } END { exit !found }' \
    "$WORK/metrics.txt" || fail "warm rescan did not hit the cache"
echo "serve-smoke: warm rescan identical, cache hit recorded"

# --- latency histograms ---------------------------------------------------
# Every completed scan contributes one observation to the scan, queue-wait,
# and per-phase histograms, so their _count series must equal
# jobs_completed (2 at this point).
grep -q '^wap_serve_scan_duration_seconds_count 2$' "$WORK/metrics.txt" \
    || fail "scan duration histogram count != completed jobs"
grep -q '^wap_serve_queue_wait_seconds_count 2$' "$WORK/metrics.txt" \
    || fail "queue wait histogram count != completed jobs"
grep -q '^wap_serve_scan_duration_seconds_bucket{le="+Inf"} 2$' "$WORK/metrics.txt" \
    || fail "scan duration +Inf bucket != completed jobs"
for phase in parse taint predict cache; do
    grep -q "^wap_serve_phase_duration_seconds_count{phase=\"$phase\"} 2\$" \
        "$WORK/metrics.txt" || fail "phase histogram missing for $phase"
done
grep -q '^# TYPE wap_serve_scan_duration_seconds histogram$' "$WORK/metrics.txt" \
    || fail "scan duration family not typed as histogram"
echo "serve-smoke: latency histograms OK"

# --- CLI trace: NDJSON schema validated by the checked-in jq assertion ----
"$BIN" --format text --stats --trace "$WORK/trace.ndjson" --fail-on none \
    "$WORK/app" > "$WORK/cli-stats.txt" || fail "CLI --trace run failed"
grep -q "phase totals:" "$WORK/cli-stats.txt" \
    || fail "--stats output missing the phase totals section"
grep -q "slowest files" "$WORK/cli-stats.txt" \
    || fail "--stats output missing the slowest-files section"
jq -s -e -f "$ROOT/scripts/trace_assert.jq" "$WORK/trace.ndjson" > /dev/null \
    || fail "trace NDJSON failed schema assertions"
echo "serve-smoke: --trace/--stats OK"

# --- graceful shutdown ----------------------------------------------------
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
[[ "$STATUS" -eq 0 ]] || fail "server exited $STATUS on SIGTERM (want 0)"
grep -q "drained" "$WORK/server.log" || fail "server log missing drain message"
SERVER_PID=""
echo "serve-smoke: graceful shutdown OK"

echo "serve-smoke: PASS"
