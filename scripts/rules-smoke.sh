#!/usr/bin/env bash
# End-to-end smoke test for rule packs (`wap rules` + `--rules`), run by
# CI after a release build:
#
#   1. author a custom pack manifest, wrap it in a ustar tarball, and
#      install it with `wap rules install <tarball>`
#   2. install the builtin `wordpress` starter pack by name;
#      `wap rules list` must show both with fingerprints
#   3. scan a tiny WordPress-flavored app without packs (baseline SARIF)
#   4. re-scan with `--rules acme --rules wordpress`: jq must find both
#      packs' rule ids firing and the pack name in rule properties
#   5. remove the packs: `--rules acme` must now fail naming the pack,
#      and a plain re-scan must be byte-identical to the baseline
#
# Requires: tar, jq, and target/release/wap (built by the caller).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="$ROOT/target/release/wap"
WORK="$(mktemp -d)"

cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

fail() {
    echo "rules-smoke: FAIL: $*" >&2
    exit 1
}

[[ -x "$BIN" ]] || { echo "rules-smoke: build target/release/wap first" >&2; exit 1; }

RULES_DIR="$WORK/rules"

# A tiny WordPress-flavored app with one taint candidate ($_GET reaching
# $wpdb->query) plus defects only pack rules see (interpolated queries,
# extract over request data); the analysis is deterministic, so the
# baseline SARIF bytes are reproducible for the uninstall comparison.
mkdir -p "$WORK/app"
cat > "$WORK/app/plugin.php" <<'PHP'
<?php
function lookup_post($wpdb) {
    $id = $_GET['id'];
    $wpdb->query("SELECT * FROM wp_posts WHERE ID = $id");
    return $wpdb->get_results("SELECT meta_value FROM wp_postmeta WHERE post_id = $id");
}
extract($_GET);
PHP

# --- author + install a custom pack from a tarball -------------------------
mkdir -p "$WORK/pack"
cat > "$WORK/pack/pack.json" <<'JSON'
{
  "schema": 1,
  "name": "acme",
  "version": "1.0.0",
  "rules": [
    {
      "id": "acme-interpolated-query",
      "kind": "call_with_arg",
      "function": "query",
      "argument": "\"[^\"]*\\$\\w",
      "severity": "error",
      "message": "query built from an interpolated string"
    }
  ]
}
JSON
tar --format=ustar -C "$WORK/pack" -cf "$WORK/acme-pack.tar" pack.json

"$BIN" rules install "$WORK/acme-pack.tar" --rules-dir "$RULES_DIR" \
    | grep -q "installed acme@1.0.0 (1 rules" || fail "tarball install failed"
"$BIN" rules install wordpress --rules-dir "$RULES_DIR" \
    | grep -q "installed wordpress@1.0.0 (3 rules" || fail "starter install failed"

LISTED="$("$BIN" rules list --rules-dir "$RULES_DIR")"
grep -q "acme@1.0.0 rules=1 fingerprint=" <<< "$LISTED" \
    || fail "list missing acme: $LISTED"
grep -q "wordpress@1.0.0 rules=3 fingerprint=" <<< "$LISTED" \
    || fail "list missing wordpress: $LISTED"
echo "rules-smoke: install + list OK"

# --- baseline scan: no packs ----------------------------------------------
"$BIN" --format sarif --fail-on none "$WORK/app" > "$WORK/baseline.sarif" \
    || fail "baseline scan failed"
jq -e '[.runs[0].tool.driver.rules[].id] | index("WAP-ACME-INTERPOLATED-QUERY") == null' \
    "$WORK/baseline.sarif" > /dev/null || fail "baseline must not know pack rules"

# --- pack scan: both packs' rules fire, tagged with their pack -------------
"$BIN" --rules acme --rules wordpress --rules-dir "$RULES_DIR" \
    --format sarif --fail-on none "$WORK/app" > "$WORK/packs.sarif" \
    || fail "pack scan failed"
jq -e -f "$ROOT/scripts/sarif_assert.jq" "$WORK/packs.sarif" > /dev/null \
    || fail "pack SARIF failed shape assertions"
for rule in WAP-ACME-INTERPOLATED-QUERY WAP-WP-WPDB-INTERPOLATED-GET-RESULTS \
            WAP-WP-UNVALIDATED-EXTRACT; do
    jq -e --arg r "$rule" '[.runs[0].results[].ruleId] | index($r) != null' \
        "$WORK/packs.sarif" > /dev/null || fail "pack rule $rule did not fire"
done
jq -e '.runs[0].tool.driver.rules[]
       | select(.id == "WAP-ACME-INTERPOLATED-QUERY")
       | .properties.pack == "acme"' "$WORK/packs.sarif" > /dev/null \
    || fail "acme rule not tagged with its pack"
jq -e '.runs[0].tool.driver.rules[]
       | select(.id == "WAP-WP-UNVALIDATED-EXTRACT")
       | .properties.pack == "wordpress"' "$WORK/packs.sarif" > /dev/null \
    || fail "wordpress rule not tagged with its pack"
echo "rules-smoke: pack scan fired and tagged all pack rules"

# --- uninstall: unknown pack refused, baseline restored byte-for-byte ------
"$BIN" rules remove acme --rules-dir "$RULES_DIR" > /dev/null \
    || fail "remove acme failed"
"$BIN" rules remove wordpress --rules-dir "$RULES_DIR" > /dev/null \
    || fail "remove wordpress failed"
if "$BIN" --rules acme --rules-dir "$RULES_DIR" --format sarif --fail-on none \
    "$WORK/app" > /dev/null 2> "$WORK/err.txt"; then
    fail "--rules with an uninstalled pack must fail"
fi
grep -q "acme" "$WORK/err.txt" || fail "error must name the pack: $(cat "$WORK/err.txt")"

"$BIN" --format sarif --fail-on none "$WORK/app" > "$WORK/after.sarif" \
    || fail "post-remove scan failed"
cmp "$WORK/baseline.sarif" "$WORK/after.sarif" \
    || fail "uninstall did not restore the baseline bytes"
echo "rules-smoke: uninstall restored byte-identical baseline"

echo "rules-smoke: PASS"
