#!/usr/bin/env bash
# Multi-replica smoke test for the distributed cache, run by CI after a
# release build:
#
#   1. boot replica A with a persistent cache dir, poll /healthz
#   2. boot replica B with --cache-peer pointed at A, poll /healthz
#   3. scan the same app on A (cold) and on B (peer-warmed); require the
#      SARIF and JSON bytes identical to each other and to the CLI
#   4. require B's /metrics to report remote cache hits > 0 (it really
#      was served by A, not by a local recomputation that happened to
#      agree)
#   5. batch-scan two apps on A and check one NDJSON line per app
#   6. SIGTERM both replicas and require graceful exits with status 0
#
# Requires: curl, jq, and target/release/wap (built by the caller).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="$ROOT/target/release/wap"
ADDR_A="127.0.0.1:18474"
ADDR_B="127.0.0.1:18475"
WORK="$(mktemp -d)"
PID_A=""
PID_B=""

cleanup() {
    for pid in "$PID_A" "$PID_B"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "fleet-smoke: FAIL: $*" >&2
    for name in a b; do
        echo "--- replica $name log ---" >&2
        cat "$WORK/server-$name.log" >&2 || true
    done
    exit 1
}

# Polls $url/healthz with a bounded retry budget (~10s), failing fast —
# with both server logs — if the replica exits early or never answers.
wait_healthz() {
    local url="$1" pid="$2" name="$3"
    for _ in $(seq 1 100); do
        if curl -fsS "$url/healthz" > /dev/null 2>&1; then
            echo "fleet-smoke: $name /healthz OK"
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || fail "$name exited before /healthz came up"
        sleep 0.1
    done
    fail "$name /healthz never became ready within the retry budget"
}

[[ -x "$BIN" ]] || { echo "fleet-smoke: build target/release/wap first" >&2; exit 1; }

mkdir -p "$WORK/app1" "$WORK/app2"
cat > "$WORK/app1/index.php" <<'PHP'
<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM users WHERE id = $id");
echo "<p>Hello " . $_GET['name'] . "</p>";
PHP
cat > "$WORK/app2/upload.php" <<'PHP'
<?php
$f = $_GET['file'];
include($f . ".php");
PHP

echo "fleet-smoke: starting replica A on $ADDR_A (cache dir)"
"$BIN" serve --addr "$ADDR_A" --cache-dir "$WORK/cache-a" --workers 2 \
    > "$WORK/server-a.log" 2>&1 &
PID_A=$!
wait_healthz "http://$ADDR_A" "$PID_A" "replica A"

echo "fleet-smoke: starting replica B on $ADDR_B (peered to A)"
"$BIN" serve --addr "$ADDR_B" --cache-peer "http://$ADDR_A" --workers 2 \
    > "$WORK/server-b.log" 2>&1 &
PID_B=$!
wait_healthz "http://$ADDR_B" "$PID_B" "replica B"

# --- the same scan on both replicas must be byte-identical ----------------
for fmt in sarif json; do
    curl -fsS -X POST "http://$ADDR_A/v1/scan?path=$WORK/app1&format=$fmt" \
        -o "$WORK/a.$fmt" || fail "replica A $fmt scan failed"
    curl -fsS -X POST "http://$ADDR_B/v1/scan?path=$WORK/app1&format=$fmt" \
        -o "$WORK/b.$fmt" || fail "replica B $fmt scan failed"
    cmp "$WORK/a.$fmt" "$WORK/b.$fmt" \
        || fail "replica A and B $fmt reports differ"
done
jq -e -f "$ROOT/scripts/sarif_assert.jq" "$WORK/a.sarif" > /dev/null \
    || fail "replica SARIF failed shape assertions"
"$BIN" --format sarif --fail-on none "$WORK/app1" > "$WORK/cli.sarif" \
    || fail "CLI scan failed"
cmp "$WORK/a.sarif" "$WORK/cli.sarif" \
    || fail "fleet SARIF differs from CLI SARIF"
echo "fleet-smoke: A, B, and CLI reports byte-identical"

# --- B must have been warmed by A, observably -----------------------------
curl -fsS "http://$ADDR_B/metrics" > "$WORK/metrics-b.txt" || fail "B /metrics failed"
awk '$1 == "wap_serve_remote_cache_hits_total" && $2 > 0 { found = 1 } END { exit !found }' \
    "$WORK/metrics-b.txt" \
    || fail "replica B reports no remote cache hits: $(grep remote_cache "$WORK/metrics-b.txt")"
echo "fleet-smoke: replica B served from A's cache"

# --- batch endpoint: one NDJSON line per app ------------------------------
printf '%s\n%s\n' "$WORK/app1" "$WORK/app2" > "$WORK/manifest.txt"
curl -fsS -X POST --data-binary "@$WORK/manifest.txt" \
    "http://$ADDR_A/v1/batch?format=json" -o "$WORK/batch.ndjson" \
    || fail "batch scan failed"
LINES=$(wc -l < "$WORK/batch.ndjson")
[[ "$LINES" -eq 2 ]] || fail "batch returned $LINES lines (want 2)"
jq -e -s 'all(.[]; .status == "done" and (.report | length > 0))' \
    "$WORK/batch.ndjson" > /dev/null || fail "batch lines malformed"
echo "fleet-smoke: batch scan OK"

# --- graceful shutdown of the whole fleet ---------------------------------
stop_replica() {
    local name="$1" pid="$2" log="$3"
    kill -TERM "$pid"
    local status=0
    wait "$pid" || status=$?
    [[ "$status" -eq 0 ]] || fail "replica $name exited $status on SIGTERM (want 0)"
    grep -q "drained" "$log" || fail "replica $name log missing drain message"
}
stop_replica B "$PID_B" "$WORK/server-b.log"; PID_B=""
stop_replica A "$PID_A" "$WORK/server-a.log"; PID_A=""
echo "fleet-smoke: graceful fleet shutdown OK"

echo "fleet-smoke: PASS"
