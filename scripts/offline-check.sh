#!/usr/bin/env bash
# Offline verification harness.
#
# The real workspace depends on crates.io packages (serde, rand, criterion,
# proptest) that cannot be fetched on an air-gapped box with no vendored
# registry. This script assembles a scratch workspace under
# target/offline-check/ that symlinks every crate's src/ and swaps the
# external dependencies for tiny std-only API shims, so the whole codebase
# still type-checks — and the dependency-free crates run their real test
# suites.
#
# What this does and does not prove:
#   - build: every crate's lib/bin code compiles against the real APIs it
#     uses (the shims mirror the exact call surface: serde derives,
#     serde_json::to_string/from_str, StdRng/Rng/SliceRandom).
#   - test: wap-php, wap-runtime, and wap-taint have no external deps, so
#     their tests are the real thing. Crates whose test EXPECTATIONS depend
#     on real rand output (mining, corpus, core, bench) are built but not
#     tested here — run `cargo test` on a networked machine for those.
#
# Usage: scripts/offline-check.sh [build|test]   (default: both)

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SCRATCH="$ROOT/target/offline-check"
MODE="${1:-all}"

mkdir -p "$SCRATCH"

# ---- workspace manifest ----
cat > "$SCRATCH/Cargo.toml" <<'EOF'
[workspace]
members = [
    "shims/serde",
    "shims/serde_derive",
    "shims/serde_json",
    "shims/rand",
    "shims/criterion",
    "php",
    "cache",
    "catalog",
    "cfg",
    "rules",
    "obs",
    "runtime",
    "taint",
    "mining",
    "fixer",
    "interp",
    "corpus",
    "core",
    "report",
    "serve",
    "live",
    "bench",
    "facade",
]
resolver = "2"
EOF

# ---- shims ----
mkdir -p "$SCRATCH"/shims/{serde,serde_derive,serde_json,rand,criterion}/src

cat > "$SCRATCH/shims/serde_derive/Cargo.toml" <<'EOF'
[package]
name = "serde_derive"
version = "1.0.0"
edition = "2021"

[lib]
proc-macro = true
EOF
cat > "$SCRATCH/shims/serde_derive/src/lib.rs" <<'EOF'
//! Shim derives: expand to nothing; the serde shim's blanket impls cover
//! every type. `attributes(serde)` keeps `#[serde(...)]` field attrs legal.
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
EOF

cat > "$SCRATCH/shims/serde/Cargo.toml" <<'EOF'
[package]
name = "serde"
version = "1.0.0"
edition = "2021"

[dependencies]
serde_derive = { path = "../serde_derive" }

[features]
derive = []
default = ["derive"]
EOF
cat > "$SCRATCH/shims/serde/src/lib.rs" <<'EOF'
//! API-surface shim for serde: traits exist and every type satisfies them.
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub trait DeserializeOwned: Sized {}
impl<T> DeserializeOwned for T {}
EOF

cat > "$SCRATCH/shims/serde_json/Cargo.toml" <<'EOF'
[package]
name = "serde_json"
version = "1.0.0"
edition = "2021"

[dependencies]
serde = { path = "../serde" }
EOF
cat > "$SCRATCH/shims/serde_json/src/lib.rs" <<'EOF'
//! API-surface shim for serde_json: serialization returns an empty string,
//! deserialization always errors. Good enough to type-check callers.
use std::fmt;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error("deserialization unavailable offline".into()))
}

#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, _k: &str) -> &Value {
        self
    }
}
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, _i: usize) -> &Value {
        self
    }
}

// comparisons used by assertions in tests that are compiled (not run)
// under this shim
impl PartialEq<i32> for Value {
    fn eq(&self, _: &i32) -> bool {
        false
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, _: &&str) -> bool {
        false
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, _: &bool) -> bool {
        false
    }
}
EOF

cat > "$SCRATCH/shims/rand/Cargo.toml" <<'EOF'
[package]
name = "rand"
version = "0.8.0"
edition = "2021"
EOF
cat > "$SCRATCH/shims/rand/src/lib.rs" <<'EOF'
//! API-surface shim for rand 0.8 (the subset this workspace uses):
//! StdRng + SeedableRng + Rng::{gen, gen_bool, gen_range} + shuffle.
//! Deterministic splitmix64 — NOT the real StdRng stream, so test
//! expectations tied to real rand output do not hold under this shim.

pub mod rngs {
    /// Deterministic splitmix64 stand-in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng { state: state.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(range, self.next_u64())
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub trait FromRandom {
    fn from_u64(v: u64) -> Self;
}
impl FromRandom for u64 {
    fn from_u64(v: u64) -> Self {
        v
    }
}
impl FromRandom for u32 {
    fn from_u64(v: u64) -> Self {
        v as u32
    }
}
impl FromRandom for usize {
    fn from_u64(v: u64) -> Self {
        v as usize
    }
}
impl FromRandom for f64 {
    fn from_u64(v: u64) -> Self {
        v as f64 / u64::MAX as f64
    }
}
impl FromRandom for bool {
    fn from_u64(v: u64) -> Self {
        v & 1 == 1
    }
}

pub trait UniformSample: Sized {
    fn sample(range: std::ops::Range<Self>, v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(range: std::ops::Range<Self>, v: u64) -> Self {
                let width = (range.end - range.start) as u64;
                if width == 0 {
                    return range.start;
                }
                range.start + (v % width) as Self
            }
        }
    )*};
}
uniform_int!(usize, u64, u32, i64, i32);

impl UniformSample for f64 {
    fn sample(range: std::ops::Range<Self>, v: u64) -> Self {
        range.start + (range.end - range.start) * (v as f64 / u64::MAX as f64)
    }
}

pub mod seq {
    use crate::Rng;

    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
EOF

cat > "$SCRATCH/shims/criterion/Cargo.toml" <<'EOF'
[package]
name = "criterion"
version = "0.5.0"
edition = "2021"
EOF
cat > "$SCRATCH/shims/criterion/src/lib.rs" <<'EOF'
//! API-surface shim for criterion (the subset the benches use): enough to
//! type-check bench targets offline; running them measures nothing.

pub struct Criterion;

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(_name: S, _param: P) -> Self {
        BenchmarkId
    }
    pub fn from_parameter<P: std::fmt::Display>(_param: P) -> Self {
        BenchmarkId
    }
}

pub struct BenchmarkGroup;

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher, input);
        self
    }
    pub fn finish(self) {}
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, _name: S) -> BenchmarkGroup {
        BenchmarkGroup
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _name: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
EOF

# ---- workspace crates: symlinked src, shim-wired manifests ----
link() { ln -sfn "$1" "$2"; }

crate_dir() {
    local name="$1"
    mkdir -p "$SCRATCH/$name"
    link "$ROOT/crates/$name/src" "$SCRATCH/$name/src"
}

for c in php cache catalog cfg rules obs runtime taint mining fixer interp corpus core report serve live bench; do
    crate_dir "$c"
done

link "$ROOT/crates/bench/benches" "$SCRATCH/bench/benches"

# the root facade crate (src/ + tests/ live at the repo root)
mkdir -p "$SCRATCH/facade"
link "$ROOT/src" "$SCRATCH/facade/src"
link "$ROOT/tests" "$SCRATCH/facade/tests"

common_pkg() {
    local name="$1"
    cat <<EOF
[package]
name = "wap-$name"
version = "0.1.0"
edition = "2021"
EOF
}

{ common_pkg php; } > "$SCRATCH/php/Cargo.toml"

{ common_pkg obs; } > "$SCRATCH/obs/Cargo.toml"

{ common_pkg runtime; } > "$SCRATCH/runtime/Cargo.toml"

{ common_pkg cache; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
EOF
} > "$SCRATCH/cache/Cargo.toml"

{ common_pkg catalog; cat <<'EOF'
[dependencies]
serde = { path = "../shims/serde", features = ["derive"] }
serde_json = { path = "../shims/serde_json" }
EOF
} > "$SCRATCH/catalog/Cargo.toml"

{ common_pkg cfg; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
EOF
} > "$SCRATCH/cfg/Cargo.toml"

{ common_pkg rules; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
wap-cfg = { path = "../cfg" }
EOF
} > "$SCRATCH/rules/Cargo.toml"

{ common_pkg taint; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
wap-cache = { path = "../cache" }
wap-catalog = { path = "../catalog" }
wap-obs = { path = "../obs" }
wap-runtime = { path = "../runtime" }
EOF
} > "$SCRATCH/taint/Cargo.toml"

{ common_pkg mining; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
wap-catalog = { path = "../catalog" }
wap-taint = { path = "../taint" }
rand = { path = "../shims/rand" }
serde = { path = "../shims/serde", features = ["derive"] }
EOF
} > "$SCRATCH/mining/Cargo.toml"

{ common_pkg fixer; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
wap-catalog = { path = "../catalog" }
wap-taint = { path = "../taint" }
EOF
} > "$SCRATCH/fixer/Cargo.toml"

{ common_pkg interp; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
wap-catalog = { path = "../catalog" }
wap-taint = { path = "../taint" }
EOF
} > "$SCRATCH/interp/Cargo.toml"

{ common_pkg corpus; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
wap-catalog = { path = "../catalog" }
rand = { path = "../shims/rand" }
[dev-dependencies]
wap-taint = { path = "../taint" }
EOF
} > "$SCRATCH/corpus/Cargo.toml"

{ common_pkg core; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
wap-cache = { path = "../cache" }
wap-cfg = { path = "../cfg" }
wap-rules = { path = "../rules" }
wap-taint = { path = "../taint" }
wap-catalog = { path = "../catalog" }
wap-mining = { path = "../mining" }
wap-fixer = { path = "../fixer" }
wap-interp = { path = "../interp" }
wap-obs = { path = "../obs" }
wap-runtime = { path = "../runtime" }
wap-report = { path = "../report" }
serde = { path = "../shims/serde", features = ["derive"] }
serde_json = { path = "../shims/serde_json" }
EOF
} > "$SCRATCH/core/Cargo.toml"

{ common_pkg report; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
wap-cache = { path = "../cache" }
wap-cfg = { path = "../cfg" }
wap-taint = { path = "../taint" }
wap-catalog = { path = "../catalog" }
wap-mining = { path = "../mining" }
wap-obs = { path = "../obs" }
serde = { path = "../shims/serde", features = ["derive"] }
serde_json = { path = "../shims/serde_json" }
EOF
} > "$SCRATCH/report/Cargo.toml"

{ common_pkg serve; cat <<'EOF'
[dependencies]
wap-core = { path = "../core" }
wap-rules = { path = "../rules" }
wap-obs = { path = "../obs" }
wap-report = { path = "../report" }
wap-runtime = { path = "../runtime" }
wap-catalog = { path = "../catalog" }
wap-cache = { path = "../cache" }
wap-php = { path = "../php" }

[dev-dependencies]
wap-corpus = { path = "../corpus" }
EOF
} > "$SCRATCH/serve/Cargo.toml"

{ common_pkg live; cat <<'EOF'
[dependencies]
wap-core = { path = "../core" }
wap-report = { path = "../report" }
wap-runtime = { path = "../runtime" }
wap-catalog = { path = "../catalog" }
wap-obs = { path = "../obs" }
EOF
} > "$SCRATCH/live/Cargo.toml"

{ common_pkg bench; cat <<'EOF'
[dependencies]
wap-php = { path = "../php" }
wap-taint = { path = "../taint" }
wap-catalog = { path = "../catalog" }
wap-mining = { path = "../mining" }
wap-fixer = { path = "../fixer" }
wap-corpus = { path = "../corpus" }
wap-core = { path = "../core" }
wap-interp = { path = "../interp" }
wap-runtime = { path = "../runtime" }
wap-cache = { path = "../cache" }
wap-serve = { path = "../serve" }
wap-live = { path = "../live" }
rand = { path = "../shims/rand" }

[dev-dependencies]
criterion = { path = "../shims/criterion" }

[[bin]]
name = "experiments"
path = "src/bin/experiments.rs"

[[bin]]
name = "ci_bench"
path = "src/bin/ci_bench.rs"

[[bench]]
name = "parsing"
path = "benches/parsing.rs"
harness = false

[[bench]]
name = "analysis"
path = "benches/analysis.rs"
harness = false

[[bench]]
name = "classifiers"
path = "benches/classifiers.rs"
harness = false

[[bench]]
name = "weapons"
path = "benches/weapons.rs"
harness = false

[[bench]]
name = "cache"
path = "benches/cache.rs"
harness = false
EOF
} > "$SCRATCH/bench/Cargo.toml"

cat > "$SCRATCH/facade/Cargo.toml" <<'EOF'
[package]
name = "wap"
version = "0.1.0"
edition = "2021"
autotests = false

[dependencies]
wap-php = { path = "../php" }
wap-cache = { path = "../cache" }
wap-cfg = { path = "../cfg" }
wap-rules = { path = "../rules" }
wap-taint = { path = "../taint" }
wap-catalog = { path = "../catalog" }
wap-mining = { path = "../mining" }
wap-fixer = { path = "../fixer" }
wap-corpus = { path = "../corpus" }
wap-core = { path = "../core" }
wap-interp = { path = "../interp" }
wap-obs = { path = "../obs" }
wap-report = { path = "../report" }
wap-serve = { path = "../serve" }
wap-live = { path = "../live" }

[[bin]]
name = "wap"
path = "src/bin/wap.rs"

# only the self-comparing tests: they check the tool against itself
# (job counts, cached vs cold, server vs CLI), so the shimmed rand stream
# is immaterial (the other root tests pin exact counts that need the real
# rand crate)
[[test]]
name = "parallel_determinism"
path = "tests/parallel_determinism.rs"

[[test]]
name = "cache_incremental"
path = "tests/cache_incremental.rs"

# the golden byte-comparison self-skips when the shimmed serializer
# renders empty documents; the cross-configuration identity still runs
[[test]]
name = "golden_sarif"
path = "tests/golden_sarif.rs"

[[test]]
name = "serve_http"
path = "tests/serve_http.rs"

[[test]]
name = "fleet_determinism"
path = "tests/fleet_determinism.rs"

[[test]]
name = "trace_determinism"
path = "tests/trace_determinism.rs"

[[test]]
name = "roundtrip_property"
path = "tests/roundtrip_property.rs"

[[test]]
name = "live_determinism"
path = "tests/live_determinism.rs"
EOF

cd "$SCRATCH"

if [ "$MODE" = "build" ] || [ "$MODE" = "all" ]; then
    echo "== offline-check: cargo build (all crates, shimmed deps) =="
    cargo build --offline
    cargo build --offline --benches -p wap-bench
fi

if [ "$MODE" = "test" ] || [ "$MODE" = "all" ]; then
    echo "== offline-check: cargo test (dependency-free crates only) =="
    cargo test --offline -q -p wap-php -p wap-cache -p wap-cfg -p wap-rules -p wap-obs -p wap-runtime -p wap-taint
    echo "== offline-check: report + serve + live tests (std-only service stack) =="
    cargo test --offline -q -p wap-report -p wap-serve -p wap-live
    echo "== offline-check: core cache tests (shim-rand-agnostic: they =="
    echo "== compare cached runs against in-process cold runs)         =="
    cargo test --offline -q -p wap-core cache
    echo "== offline-check: determinism + cache + serve tests (shim-rand-agnostic) =="
    cargo test --offline -q -p wap --test parallel_determinism --test cache_incremental --test golden_sarif --test serve_http --test fleet_determinism --test trace_determinism --test roundtrip_property --test live_determinism
fi

echo "offline-check: OK"
