#!/usr/bin/env bash
# End-to-end smoke test for the live front-ends, run by CI after a
# release build:
#
#   1. boot `wap watch` on a small vulnerable app, streaming NDJSON deltas
#   2. require the initial revision, then edit a file and require the
#      incremental delta (one added finding) within a 2-second budget
#   3. SIGTERM the watcher and require a graceful exit with status 0 and
#      the re-analysis histogram on stderr
#   4. pipe a canned JSON-RPC session through `wap lsp` and assert the
#      initialize response and publishDiagnostics notifications (jq when
#      available, grep otherwise), plus a clean exit
#
# Requires: target/release/wap (built by the caller, or override with
# WAP_BIN); uses jq if present.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="${WAP_BIN:-$ROOT/target/release/wap}"
WORK="$(mktemp -d)"
WATCH_PID=""

cleanup() {
    if [[ -n "$WATCH_PID" ]] && kill -0 "$WATCH_PID" 2>/dev/null; then
        kill -KILL "$WATCH_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "live-smoke: FAIL: $*" >&2
    echo "--- watch stream ---" >&2
    cat "$WORK/watch.ndjson" >&2 || true
    echo "--- watch stderr ---" >&2
    cat "$WORK/watch.err" >&2 || true
    exit 1
}

[[ -x "$BIN" ]] || { echo "live-smoke: build target/release/wap first" >&2; exit 1; }

mkdir -p "$WORK/app"
cat > "$WORK/app/index.php" <<'PHP'
<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM users WHERE id = $id");
PHP

# Waits (bounded) until the delta stream holds at least N revision lines.
wait_revisions() {
    local want="$1" budget="$2"
    for _ in $(seq 1 "$budget"); do
        if [[ "$(grep -c '"kind":"revision"' "$WORK/watch.ndjson" 2>/dev/null || true)" -ge "$want" ]]; then
            return 0
        fi
        kill -0 "$WATCH_PID" 2>/dev/null || fail "watcher exited early"
        sleep 0.1
    done
    fail "delta stream never reached $want revisions"
}

# --- watch mode ------------------------------------------------------------
echo "live-smoke: starting watcher on $WORK/app"
"$BIN" watch "$WORK/app" --poll-ms 50 --debounce-ms 20 \
    > "$WORK/watch.ndjson" 2> "$WORK/watch.err" &
WATCH_PID=$!
wait_revisions 1 100
grep -q '"schema":"wap-watch-v1"' "$WORK/watch.ndjson" \
    || fail "initial revision missing the wap-watch-v1 schema tag"
grep -q '"revision":1' "$WORK/watch.ndjson" || fail "no initial revision line"
echo "live-smoke: initial scan streamed"

# an edit that introduces one more finding must surface within 2 seconds
cat >> "$WORK/app/index.php" <<'PHP'
echo "<p>Hello " . $_GET['name'] . "</p>";
PHP
wait_revisions 2 20
grep -q '"revision":2' "$WORK/watch.ndjson" || fail "no delta revision line"
grep -q '"kind":"added"' "$WORK/watch.ndjson" || fail "edit produced no added finding"
grep -q '"class":"XSS"' "$WORK/watch.ndjson" || fail "added finding is not the echoed XSS"
echo "live-smoke: incremental delta within budget"

kill -TERM "$WATCH_PID"
STATUS=0
wait "$WATCH_PID" || STATUS=$?
[[ "$STATUS" -eq 0 ]] || fail "watcher exited $STATUS on SIGTERM (want 0)"
grep -q '^wap_live_reanalysis_seconds_count{mode="watch"}' "$WORK/watch.err" \
    || fail "watcher stderr missing the re-analysis histogram"
WATCH_PID=""
echo "live-smoke: graceful shutdown, metrics on stderr"

# --- LSP mode ----------------------------------------------------------------
frame() {
    local body="$1"
    printf 'Content-Length: %d\r\n\r\n%s' "${#body}" "$body"
}

URI="file://$WORK/app/index.php"
OPEN_TEXT='<?php\necho $_GET[\"q\"];\n'
{
    frame '{"jsonrpc":"2.0","id":1,"method":"initialize","params":{"rootUri":"file://'"$WORK"'/app"}}'
    frame '{"jsonrpc":"2.0","method":"initialized","params":{}}'
    frame '{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{"textDocument":{"uri":"'"$URI"'","languageId":"php","version":1,"text":"'"$OPEN_TEXT"'"}}}'
    frame '{"jsonrpc":"2.0","id":2,"method":"shutdown"}'
    frame '{"jsonrpc":"2.0","method":"exit"}'
} > "$WORK/lsp-in.bin"

"$BIN" lsp < "$WORK/lsp-in.bin" > "$WORK/lsp-out.bin" 2> "$WORK/lsp.err" \
    || fail "lsp session exited non-zero: $(cat "$WORK/lsp.err")"

# bodies are single-line JSON but frames carry no trailing newline, so a
# body and the next header share a line; split on the header instead
tr -d '\r' < "$WORK/lsp-out.bin" | sed 's/Content-Length: [0-9]*/\n/g' \
    | grep -v '^$' > "$WORK/lsp-bodies.ndjson"

if command -v jq > /dev/null 2>&1; then
    jq -s -e '
        (map(select(.id == 1)) | length == 1) and
        (map(select(.id == 1)) | .[0].result.capabilities.textDocumentSync.openClose == true) and
        (map(select(.method == "textDocument/publishDiagnostics")) | length >= 1) and
        (map(select(.method == "textDocument/publishDiagnostics"))
            | .[0].params.diagnostics | length >= 1) and
        (map(select(.id == 2)) | .[0] | has("result"))
    ' "$WORK/lsp-bodies.ndjson" > /dev/null \
        || fail "lsp session failed jq assertions: $(cat "$WORK/lsp-bodies.ndjson")"
else
    grep -q '"textDocumentSync"' "$WORK/lsp-bodies.ndjson" || fail "no initialize response"
    grep -q '"method":"textDocument/publishDiagnostics"' "$WORK/lsp-bodies.ndjson" \
        || fail "no publishDiagnostics notification"
    grep -q '"code":"XSS"' "$WORK/lsp-bodies.ndjson" || fail "no XSS diagnostic published"
fi
echo "live-smoke: lsp session OK"

echo "live-smoke: PASS"
