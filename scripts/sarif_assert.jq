# Shape assertions for a wap SARIF document (used by serve-smoke.sh via
# `jq -e -f`): the filter must evaluate to true, and `jq -e` turns a
# false/null result into a nonzero exit.
. as $doc
| .version == "2.1.0"
and (."$schema" | type == "string" and contains("sarif-2.1.0"))
and (.runs | length == 1)
and (.runs[0].tool.driver.name == "wap-rs")
and (.runs[0].tool.driver.semanticVersion | test("^[0-9]+\\.[0-9]+\\.[0-9]+"))
and (.runs[0].tool.driver.rules | length > 0)
and ([.runs[0].tool.driver.rules[].id | startswith("WAP-")] | all)
and (.runs[0].results | length > 0)
and ([.runs[0].results[].ruleId | startswith("WAP-")] | all)
and ([.runs[0].results[].level | IN("error", "warning", "note")] | all)
and ([.runs[0].results[].locations | length > 0] | all)
and ([.runs[0].results[].locations[0].physicalLocation.region.startLine >= 1] | all)
# ruleIndex must point at the rule the result names
and ([.runs[0].results[] | .ruleId == $doc.runs[0].tool.driver.rules[.ruleIndex].id] | all)
# every recorded data-flow path is a non-empty thread flow
and ([.runs[0].results[] | select(.codeFlows) | .codeFlows[0].threadFlows[0].locations | length > 0] | all)
and (.runs[0].invocations | length == 1)
