#!/usr/bin/env bash
# Cold-path profiling harness: where does a from-scratch scan spend its
# time and memory? Runs the fixed-seed ci_bench corpus sweep and reports
#
#   1. per-phase wall time (parse / taint / predict) from ScanStats
#   2. cold-phase allocation count and peak RSS (CountingAlloc + VmHWM,
#      printed by ci_bench's "cold memory" line)
#   3. end-to-end wall/user/sys time for the whole sweep, via `perf stat`
#      when available, else /usr/bin/time, else bash's builtin `time`
#
# The numbers feed EXPERIMENTS.md's cold-vs-warm table; run this before
# and after a perf-sensitive change and compare. Repetition count is
# ci_bench's (best-of-3), so a quiet machine still matters.
#
# Requires: target/release/ci_bench (built by the caller; in the offline
# scratch workspace that is target/offline-check/target/release/ci_bench).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="${CI_BENCH:-}"
if [[ -z "$BIN" ]]; then
    for candidate in \
        "$ROOT/target/release/ci_bench" \
        "$ROOT/target/offline-check/target/release/ci_bench"; do
        [[ -x "$candidate" ]] && BIN="$candidate" && break
    done
fi
[[ -n "$BIN" && -x "$BIN" ]] || {
    echo "profile-cold: build ci_bench first (cargo build --release -p wap-bench)" >&2
    exit 1
}

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

echo "== profile-cold: phase + memory breakdown (ci_bench, best-of-3) =="
# --write-baseline to a scratch path: measures without gating, so a slow
# machine can still profile.
"$BIN" --write-baseline --baseline "$OUT/baseline.json" |
    grep -E "cold phases|cold memory|LoC," || true

echo
echo "== profile-cold: whole-sweep counters =="
if command -v perf >/dev/null 2>&1; then
    perf stat -e task-clock,cycles,instructions,cache-misses,page-faults \
        "$BIN" --write-baseline --baseline "$OUT/baseline2.json" >/dev/null
elif [[ -x /usr/bin/time ]]; then
    /usr/bin/time -v "$BIN" --write-baseline --baseline "$OUT/baseline2.json" >/dev/null
else
    time "$BIN" --write-baseline --baseline "$OUT/baseline2.json" >/dev/null
fi

echo
echo "profile-cold: OK (baseline artifacts discarded; commit BENCH_baseline.json only via ci_bench --write-baseline)"
